"""Hostile-stream scenario matrix: accuracy, throughput and detection gates.

Runs every named serving scenario (:mod:`repro.framework.scenarios`) through
the online serving subsystem at a fixed seed and writes
``benchmarks/results/BENCH_scenario_matrix.json`` — one row per scenario
(final labelling accuracy, wall-clock throughput, trust-ladder outcome,
detection precision/recall against the pool's ground-truth adversary set)
plus the three robustness gates ``check_gates.py`` re-enforces from the
artifact:

* **clean equivalence** — the all-honest scenario with the reputation
  tracker *on* must reproduce the reputation-blind run's accuracy to within
  ``1e-6``.  The tracker quarantines nobody on a clean stream, so its weights
  stay 1.0 and the two runs are bit-identical; any drift here means the trust
  layer is taxing honest traffic.
* **spam detection** — with 25% of the pool replaced by always-wrong and
  coin-flip spammers, the reputation ladder must quarantine at least 90% of
  the injected adversaries at 90%+ precision (equivalently: at most 10% of
  the quarantined set may be honest).
* **drift adaptation** — on the practice-curve drift stream (every honest
  worker starts as a near-coin novice and ramps to competence), serving with
  exponentially-decayed sufficient statistics must beat the identical stream
  served with frozen (``stat_decay=1.0``) statistics by a recorded accuracy
  margin: forgetting the misleading novice-phase evidence is the whole point
  of the decay machinery.

The matrix is deliberately small (five scenarios, ~1.5k answers each) so it
runs on every CI push next to the perf gates.
"""

from __future__ import annotations

import json
import time

from bench_common import RESULTS_DIR

from repro.framework.scenarios import SCENARIO_NAMES, build_scenario
from repro.serving.service import OnlineServingService

SEED = 42

MAX_CLEAN_EQUIVALENCE_DELTA = 1e-6
MIN_SPAM_DETECTION_RECALL = 0.9
MIN_SPAM_DETECTION_PRECISION = 0.9
MAX_SPAM_FALSE_POSITIVE_RATE = 0.1
MIN_DRIFT_DECAYED_MARGIN = 0.0


def _run_scenario(name: str, **overrides):
    scenario = build_scenario(name, seed=SEED, **overrides)
    service = OnlineServingService(
        platform=scenario.platform, config=scenario.config
    )
    started = time.perf_counter()
    report = service.run()
    wall = time.perf_counter() - started
    return scenario, report, wall


def _scenario_row(scenario, report, wall: float) -> dict:
    trust = report.trust
    row = {
        "description": scenario.description,
        "accuracy": report.final_accuracy,
        "answers": report.answers_ingested,
        "wall_seconds": wall,
        "answers_per_second": report.answers_ingested / wall if wall > 0 else 0.0,
        "assign_p95_ms": report.assign_p95_ms,
    }
    if trust is not None:
        pool_size = len(scenario.platform.worker_pool)
        honest = pool_size - trust.adversaries
        false_positives = trust.quarantined - trust.true_positives
        row.update(
            {
                "adversaries": trust.adversaries,
                "quarantined": trust.quarantined,
                "detection_recall": trust.detection_recall,
                "detection_precision": trust.detection_precision,
                "false_positive_rate": (
                    false_positives / honest if honest else 0.0
                ),
                "tier_transitions": trust.transitions,
                "blocked_requests": trust.blocked_requests,
                "rejected_events": trust.rejected_events,
            }
        )
    return row


def test_scenario_matrix_gates():
    rows: dict[str, dict] = {}
    for name in SCENARIO_NAMES:
        scenario, report, wall = _run_scenario(name)
        rows[name] = _scenario_row(scenario, report, wall)

    # Control arms for the two differential gates.
    _, blind_report, _ = _run_scenario("clean", reputation=False)
    _, frozen_report, _ = _run_scenario("drift", stat_decay=1.0)

    clean_delta = abs(rows["clean"]["accuracy"] - blind_report.final_accuracy)
    drift_margin = rows["drift"]["accuracy"] - frozen_report.final_accuracy

    payload = {
        "seed": SEED,
        "scenarios": rows,
        "clean_reputation_blind_accuracy": blind_report.final_accuracy,
        "clean_equivalence_delta": clean_delta,
        "max_clean_equivalence_delta": MAX_CLEAN_EQUIVALENCE_DELTA,
        "spam_detection_recall": rows["spam"]["detection_recall"],
        "min_spam_detection_recall": MIN_SPAM_DETECTION_RECALL,
        "spam_detection_precision": rows["spam"]["detection_precision"],
        "min_spam_detection_precision": MIN_SPAM_DETECTION_PRECISION,
        "spam_false_positive_rate": rows["spam"]["false_positive_rate"],
        "max_spam_false_positive_rate": MAX_SPAM_FALSE_POSITIVE_RATE,
        "drift_decayed_accuracy": rows["drift"]["accuracy"],
        "drift_frozen_accuracy": frozen_report.final_accuracy,
        "drift_decayed_margin": drift_margin,
        "min_drift_decayed_margin": MIN_DRIFT_DECAYED_MARGIN,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / "BENCH_scenario_matrix.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== scenario_matrix ===\n{json.dumps(payload, indent=2)}\n")

    assert clean_delta <= MAX_CLEAN_EQUIVALENCE_DELTA, (
        "reputation tracking perturbed the clean stream: "
        f"accuracy delta {clean_delta} vs the reputation-blind arm"
    )
    assert rows["spam"]["detection_recall"] >= MIN_SPAM_DETECTION_RECALL, (
        f"spam recall {rows['spam']['detection_recall']:.2f} "
        f"below {MIN_SPAM_DETECTION_RECALL}"
    )
    assert rows["spam"]["detection_precision"] >= MIN_SPAM_DETECTION_PRECISION, (
        f"spam precision {rows['spam']['detection_precision']:.2f} "
        f"below {MIN_SPAM_DETECTION_PRECISION}"
    )
    assert (
        rows["spam"]["false_positive_rate"] <= MAX_SPAM_FALSE_POSITIVE_RATE
    ), (
        f"spam false-positive rate {rows['spam']['false_positive_rate']:.2f} "
        f"above {MAX_SPAM_FALSE_POSITIVE_RATE}"
    )
    assert drift_margin > MIN_DRIFT_DECAYED_MARGIN, (
        f"decayed statistics did not beat frozen on the drift stream "
        f"(margin {drift_margin:+.4f})"
    )
