"""Figure 12 — Elapsed Time of Inference on the Real Datasets.

The paper reports the average runtime of MV, EM and IM when fitting the
Deployment-1 corpus at budgets of 600–1000 assignments: MV is essentially free,
EM and IM take comparable (sub-second to ~1 s) time.  This bench reuses the
sweep computed by the shared ``inference_comparisons`` fixture (the same runs
that produced Figure 9), prints the runtime series and times a single MV fit as
the benchmark unit.
"""

from __future__ import annotations

from bench_common import write_result

from repro.analysis.reporting import format_series_table
from repro.baselines.majority_vote import MajorityVoteInference


def test_fig12_inference_time(benchmark, campaigns, inference_comparisons):
    campaign = campaigns["Beijing"]

    benchmark.pedantic(
        lambda: MajorityVoteInference(campaign.dataset.tasks).fit(campaign.answers),
        rounds=1,
        iterations=1,
    )

    for name, result in inference_comparisons.items():
        table = format_series_table(
            "assignments",
            result.budgets,
            {method: result.runtime_ms[method] for method in ("MV", "EM", "IM")},
            precision=1,
        )
        write_result(f"fig12_inference_time_ms_{name.lower()}", table)

        # Paper shape: MV is by far the cheapest method at every budget.
        for index in range(len(result.budgets)):
            assert result.runtime_ms["MV"][index] <= result.runtime_ms["IM"][index]
            assert result.runtime_ms["MV"][index] <= result.runtime_ms["EM"][index]
