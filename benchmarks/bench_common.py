"""Shared helpers for the benchmark harness (profiles, corpus builders, output).

Kept separate from ``conftest.py`` so benchmark modules can import these
helpers by name without depending on pytest's conftest loading rules.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from pathlib import Path

from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.data.generators import generate_scalability_dataset
from repro.data.models import AnswerSet
from repro.framework.experiment import (
    build_distance_model,
    build_platform,
    build_worker_pool,
)
from repro.spatial.bbox import BoundingBox
from repro.utils.rng import default_rng

RESULTS_DIR = Path(__file__).parent / "results"


@dataclass(frozen=True)
class BenchProfile:
    """Sizing knobs for the benchmark harness.

    ``jobs`` fans the figure sweeps (``compare_inference_models`` /
    ``compare_assigners``) out over a process pool; results are identical to
    the serial run.  Select it with the ``REPRO_BENCH_JOBS`` environment
    variable or the ``--jobs`` pytest flag (the flag wins).
    """

    name: str
    num_workers: int
    answers_per_task: int
    inference_budgets: tuple[int, ...]
    assignment_budget: int
    assignment_checkpoints: tuple[int, ...]
    workers_per_round: int
    scalability_assignments: tuple[int, ...]
    scalability_tasks: tuple[int, ...]
    scalability_workers: tuple[int, ...]
    seed: int = 2016
    jobs: int = 1


QUICK_PROFILE = BenchProfile(
    name="quick",
    num_workers=40,
    answers_per_task=5,
    inference_budgets=(600, 700, 800, 900, 1000),
    assignment_budget=240,
    assignment_checkpoints=(120, 180, 240),
    workers_per_round=5,
    scalability_assignments=(1000, 2000, 4000),
    scalability_tasks=(500, 1000, 2000),
    scalability_workers=(10, 20, 40),
)

PAPER_PROFILE = BenchProfile(
    name="paper",
    num_workers=60,
    answers_per_task=5,
    inference_budgets=(600, 700, 800, 900, 1000),
    assignment_budget=1000,
    assignment_checkpoints=(600, 700, 800, 900, 1000),
    workers_per_round=5,
    scalability_assignments=(10_000, 20_000, 30_000, 40_000, 50_000),
    scalability_tasks=(2000, 4000, 6000, 8000, 10_000),
    scalability_workers=(50, 100, 150, 200, 250),
)


def current_profile(jobs: int | None = None) -> BenchProfile:
    """Profile selected via the REPRO_BENCH_PROFILE environment variable.

    ``jobs`` (e.g. from the ``--jobs`` pytest flag) overrides the
    ``REPRO_BENCH_JOBS`` environment variable; both default to serial sweeps.
    """
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick").lower()
    profile = PAPER_PROFILE if name == "paper" else QUICK_PROFILE
    if jobs is None:
        jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0") or 0) or None
    if jobs is not None and jobs != profile.jobs:
        if jobs <= 0:
            raise ValueError(f"jobs must be positive, got {jobs}")
        profile = replace(profile, jobs=jobs)
    return profile


def write_result(name: str, content: str) -> Path:
    """Persist a rendered table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(content + "\n", encoding="utf-8")
    print(f"\n=== {name} ===\n{content}\n")
    return path


#: Stream size replayed by ``bench_serving_throughput.py`` (the serving gate).
SERVING_STREAM_ANSWERS = 20_000

#: Simulated event rate used to timestamp the replayed stream.
SERVING_EVENTS_PER_SECOND = 50.0


def build_answer_stream(
    num_answers: int,
    seed: int = 5,
    num_workers: int = 100,
    events_per_second: float = SERVING_EVENTS_PER_SECOND,
):
    """Timestamped answer-event stream over the shared inference corpus.

    Reuses :func:`build_inference_corpus` so the serving throughput bench
    replays exactly the corpus the inference-speed bench fits, just delivered
    as a stream.  Returns ``(dataset, pool, distance_model, events)`` where
    ``events`` is a list of :class:`repro.serving.ingest.AnswerEvent`.
    """
    from repro.serving.ingest import AnswerEvent

    dataset, pool, distance_model, answers = build_inference_corpus(
        num_answers, seed=seed, num_workers=num_workers
    )
    events = [
        AnswerEvent(answer, time=index / events_per_second)
        for index, answer in enumerate(answers)
    ]
    return dataset, pool, distance_model, events


def build_open_world_stream(
    num_answers: int,
    seed: int = 5,
    num_workers: int = 100,
    holdback_worker_fraction: float = 0.25,
    holdback_task_fraction: float = 0.10,
    events_per_second: float = SERVING_EVENTS_PER_SECOND,
):
    """Open-world variant of :func:`build_answer_stream`.

    A random slice of the corpus universe is withheld from the startup model:
    events touching a held-back worker/task carry the entity's metadata as a
    first-sight payload, exercising the serving path's dynamic-arrival
    registration.  Returns ``(startup_tasks, startup_workers, dataset, pool,
    distance_model, events, open_world_events)`` where ``open_world_events``
    counts the events involving at least one held-back entity.
    """
    from repro.serving.ingest import AnswerEvent

    dataset, pool, distance_model, answers = build_inference_corpus(
        num_answers, seed=seed, num_workers=num_workers
    )
    rng = default_rng(seed + 1)
    worker_ids = pool.worker_ids
    task_ids = [task.task_id for task in dataset.tasks]
    held_workers = set(
        worker_ids[i]
        for i in rng.choice(
            len(worker_ids),
            size=int(holdback_worker_fraction * len(worker_ids)),
            replace=False,
        )
    )
    held_tasks = set(
        task_ids[j]
        for j in rng.choice(
            len(task_ids),
            size=int(holdback_task_fraction * len(task_ids)),
            replace=False,
        )
    )
    startup_workers = [w for w in pool.workers if w.worker_id not in held_workers]
    startup_tasks = [t for t in dataset.tasks if t.task_id not in held_tasks]
    worker_by_id = {worker.worker_id: worker for worker in pool.workers}
    task_by_id = dataset.task_index

    events = []
    open_world_events = 0
    for index, answer in enumerate(answers):
        held = answer.worker_id in held_workers or answer.task_id in held_tasks
        if held:
            open_world_events += 1
        events.append(
            AnswerEvent(
                answer,
                time=index / events_per_second,
                worker=(
                    worker_by_id[answer.worker_id]
                    if answer.worker_id in held_workers
                    else None
                ),
                task=(
                    task_by_id[answer.task_id]
                    if answer.task_id in held_tasks
                    else None
                ),
            )
        )
    return (
        startup_tasks,
        startup_workers,
        dataset,
        pool,
        distance_model,
        events,
        open_world_events,
    )


def build_inference_corpus(num_assignments: int, seed: int = 5, num_workers: int = 100):
    """Synthetic corpus with ``num_assignments`` (worker, task) answers.

    Shared by the Figure 13 scalability bench and the inference-speed
    regression bench so both time EM on identical inputs.  Returns
    ``(dataset, pool, distance_model, answers)``.
    """
    num_tasks = max(200, num_assignments // 5)
    dataset = generate_scalability_dataset(num_tasks=num_tasks, seed=seed)
    distance_model = build_distance_model(dataset)
    bounds = BoundingBox.from_points(dataset.poi_locations)
    pool = WorkerPool.generate(
        bounds, spec=WorkerPoolSpec(num_workers=num_workers), seed=seed
    )
    simulator = AnswerSimulator(distance_model, noise=0.05)
    rng = default_rng(seed)
    answers = AnswerSet()
    worker_ids = pool.worker_ids
    tasks = dataset.tasks
    produced = 0
    task_cursor = 0
    while produced < num_assignments:
        task = tasks[task_cursor % len(tasks)]
        worker_id = worker_ids[int(rng.integers(len(worker_ids)))]
        if answers.get(worker_id, task.task_id) is None:
            profile = pool.profile(worker_id)
            answers.add(simulator.sample_answer(profile, task, seed=rng))
            produced += 1
        task_cursor += 1
    return dataset, pool, distance_model, answers


@dataclass
class Campaign:
    """A Deployment-1 style corpus: dataset + platform + collected answers."""

    dataset: object
    platform: object
    answers: object

    @property
    def worker_pool(self):
        return self.platform.worker_pool

    @property
    def distance_model(self):
        return self.platform.distance_model


def collect_campaign(dataset, prof: BenchProfile) -> Campaign:
    """Collect the Deployment-1 corpus (``answers_per_task`` answers per task)."""
    pool = build_worker_pool(
        dataset,
        spec=WorkerPoolSpec(num_workers=prof.num_workers),
        seed=prof.seed,
    )
    budget = prof.answers_per_task * len(dataset.tasks)
    platform = build_platform(
        dataset,
        budget=budget,
        worker_pool=pool,
        workers_per_round=prof.workers_per_round,
        seed=prof.seed,
    )
    answers = platform.collect_batch_answers(
        answers_per_task=prof.answers_per_task, seed=prof.seed
    )
    return Campaign(dataset=dataset, platform=platform, answers=answers)
