"""Figure 6 — Quality of Workers.

The paper restricts answers to worker-POI distances of at most 0.2 and plots
the percentage of workers falling into each 20-point accuracy range, showing
that even nearby tasks receive low-quality answers from a minority of workers
(inherent quality).  This bench reproduces that histogram for both datasets and
times the analysis pass.
"""

from __future__ import annotations

from bench_common import write_result

from repro.analysis.reporting import format_series_table
from repro.analysis.worker_analysis import worker_quality_histogram


def _histogram(campaign, max_distance=0.2):
    return worker_quality_histogram(
        campaign.answers,
        campaign.dataset,
        campaign.worker_pool.workers,
        campaign.distance_model,
        max_distance=max_distance,
    )


def test_fig06_worker_quality(benchmark, campaigns):
    histograms = {}
    for name, campaign in campaigns.items():
        histograms[name] = _histogram(campaign)

    benchmark.pedantic(lambda: _histogram(campaigns["Beijing"]), rounds=1, iterations=1)

    ranges = ["0-20%", "20-40%", "40-60%", "60-80%", "80-100%"]
    series = {
        f"{name} (% of workers)": list(histogram.percentages)
        for name, histogram in histograms.items()
    }
    table = format_series_table("accuracy range", ranges, series, precision=1)
    write_result("fig06_worker_quality", table)

    for name, histogram in histograms.items():
        percentages = histogram.percentages
        assert abs(percentages.sum() - 100.0) < 1e-6
        # The paper's observation: most nearby answers are high quality, but a
        # visible minority of workers stays below 60% accuracy.
        assert percentages[3] + percentages[4] > percentages[0] + percentages[1]
