"""Serving-path throughput gate: micro-batched ingestion vs refresh-per-answer.

Replays the shared 20k-answer corpus as a timestamped stream through the
online serving subsystem (:mod:`repro.serving`) and writes
``benchmarks/results/BENCH_serving_throughput.json``:

* **headline throughput** — answers/sec of the full 20k-answer micro-batched
  replay (ingestion wall-clock, including snapshot publishing);
* **the gate** — on an identical stream prefix, micro-batched incremental
  serving must sustain at least ``MIN_SPEEDUP``× the throughput of *naive*
  refresh-per-answer serving (micro-batch size 1: one incremental update and
  one snapshot publish per answer).  The prefix keeps the naive run tractable
  and biases the comparison in naive's favour — its updates run against a much
  smaller answer log than the micro-batched tail ever sees;
* **assignment latency** — p50/p95 of live AccOpt assignment requests served
  by the frontend against the final published snapshot;
* **the steady-state ratchet** — the full-stream micro-batched rate must hold
  ``MIN_FULL_STREAM_ANSWERS_PER_SEC`` (ratcheted to 2x the PR 4 gate when the
  log-free hot path landed, then again when the pipelined loop moved the
  periodic full re-fits onto a background thread and the sufficient-stat
  cache made micro-batch applies O(changed rows));
* **the stall gate** — the longest single ingest stall (one ``flush`` call,
  including any wait at a background-refresh integration point) and the
  longest gap between consecutive snapshot publishes are recorded, and the
  stall must stay under ``MAX_INGEST_STALL_MS`` — the pipelined loop's whole
  point is that no batch ever waits behind tens of EM iterations;
* **the log-free invariant** — the full-stream replay must perform **zero**
  ``AnswerSet`` → tensor flattens (``log_flattens`` stays 0: every full
  refresh runs straight off the live tensor) — recorded in the artifact and
  enforced by ``check_gates.py``;
* **peak memory** — tracemalloc peak over a prefix replay, log-free vs with
  the opt-in retained answer log, documenting the memory cap;
* **the open-world stream** — a replay where a gated fraction of events comes
  from workers/tasks unknown at startup (registered on first sight from the
  event payloads), verifying dynamic arrival at benchmark scale;
* **the journal-overhead gate** — an identical full-stream replay with the
  write-ahead answer journal enabled (crash-safe serving) must sustain at
  least ``JOURNAL_OVERHEAD_FLOOR`` of the throughput ratchet: durability may
  not cost more than 30% of the log-free hot path;
* **the phase breakdown** — the full-stream replay runs with the telemetry
  tracer attached (:mod:`repro.obs`): per-quarter shares of wall time spent
  in apply/refresh/publish land in the artifact (diagnosing throughput decay
  by stage, not just observing it), and the attributed-coverage gate requires
  spans to explain at least ``MIN_ATTRIBUTED_WALL_FRACTION`` of the replay's
  wall clock — if attribution drifts below that, the breakdown is lying by
  omission.  The registry snapshot and a Chrome ``trace_event`` ring are
  written next to the JSON artifact for CI upload.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
import tracemalloc
from pathlib import Path

from bench_common import (
    RESULTS_DIR,
    SERVING_STREAM_ANSWERS,
    build_answer_stream,
    build_open_world_stream,
)

from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.data.models import AnswerSet
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import PhaseTimeline, Tracer
from repro.serving.frontend import AssignmentFrontend
from repro.serving.ingest import AnswerIngestor, IngestConfig
from repro.serving.journal import AnswerJournal
from repro.serving.snapshots import SnapshotStore

#: Micro-batch policy of the gated configuration.
MICRO_BATCH_ANSWERS = 64
MICRO_BATCH_DELAY = 2.0
FULL_REFRESH_INTERVAL = 4000

#: Integration lag of the pipelined background refresh: answers applied
#: between launching a full fit and adopting its result.  Measured sweet spot
#: at this scale — the default (interval/4 = 1000) integrates too early and
#: waits out most of each fit, while 2000+ pushes the big late-stream
#: integration waits into the last quarter and fails the degradation gate.
PIPELINE_LAG_ANSWERS = 1500

#: Prefix replayed by BOTH configurations for the gate comparison.
GATE_PREFIX_ANSWERS = 1000

#: The regression gate: micro-batched throughput over refresh-per-answer.
MIN_SPEEDUP = 5.0

#: Live assignment requests measured against the final snapshot.
ASSIGNMENT_REQUESTS = 40

#: Iteration cap for the periodic full refreshes (warm-started, converges early).
FULL_REFRESH_MAX_ITERATIONS = 25

#: Degradation gate: the last quarter of the stream must sustain at least this
#: fraction of the second quarter's throughput (the first steady-state window —
#: by then the estimate covers every entity; the first quarter runs on small
#: pre-refresh parameter dicts and would flatter the comparison).  Before the
#: incremental updater gathered relevant answers through the AnswerSet indexes
#: and published copy-on-write estimates, per-batch cost tracked the *total*
#: log size and the tail collapsed to ~150 answers/s (~0.17x of early);
#: the log-free hot path bounded the neighbourhood cost (~0.4x measured,
#: gated at 0.3), and the pipelined loop took the late-stream full re-fits
#: off the ingest thread entirely (~0.8x measured), so the gate doubles.
MIN_LATE_OVER_STEADY = 0.6

#: Steady-state throughput ratchet: full-stream micro-batched ingestion of the
#: 20k-answer corpus.  PR 4 (incrementally maintained AnswerTensor +
#: array-first publishes) gated at 900 and measured ~1400 here; the log-free
#: hot path (live-tensor refreshes, sweep early-exit, dirty-row delta
#: publishes) measured ~2100-2200 and gated at 1800; the pipelined loop —
#: background full re-fits overlapped with ingest plus sufficient-stat
#: O(changed rows) applies — measures ~3700, so the gate ratchets to 3000.
MIN_FULL_STREAM_ANSWERS_PER_SEC = 3000.0

#: Stall ceiling: the longest single ingest stall — one ``submit``/``flush``
#: call, including any wait at a background-refresh integration point — over
#: the full-stream replay.  The pipelined loop's worst flush is one
#: micro-batch apply plus the residual integration wait (~1.5 s measured for
#: the final, largest fit, vs ~1.7 s for the same fit run inline by the
#: serial loop); the ceiling pins that with headroom for CI machines.
MAX_INGEST_STALL_MS = 2500.0

#: Log-free invariant: AnswerSet -> tensor flattens allowed on the full-stream
#: replay (every full refresh must reuse the live tensor).
MAX_FULL_STREAM_LOG_FLATTENS = 0

#: Durability-overhead gate: the same full-stream replay with the write-ahead
#: answer journal enabled must sustain at least this fraction of the
#: throughput ratchet — journaling every accepted event (checksummed append +
#: buffered flush per answer) may not cost more than 30% of the hot path.
JOURNAL_OVERHEAD_FLOOR = 0.7
MIN_JOURNALED_ANSWERS_PER_SEC = JOURNAL_OVERHEAD_FLOOR * MIN_FULL_STREAM_ANSWERS_PER_SEC

#: Records per journal segment in the journaled replay (a realistic rotation
#: cadence: ~20 segment files over the 20k stream).
JOURNAL_SEGMENT_RECORDS = 1024

#: Attribution-coverage gate: pipeline spans (apply/refresh/publish and the
#: per-batch guard/journal attributions) must explain at least this fraction
#: of the full-stream replay's wall clock.
MIN_ATTRIBUTED_WALL_FRACTION = 0.9

#: Prefix replayed under tracemalloc for the peak-memory report (kept off the
#: timed replays — allocation tracking itself costs wall-clock).
MEMORY_PREFIX_ANSWERS = 4000

#: Open-world stream: this fraction of events references workers/tasks absent
#: from the serving model at startup (registered on first sight from the event
#: payloads); the replay must complete and actually exercise the arrival path.
OPEN_WORLD_STREAM_ANSWERS = 6000
OPEN_WORLD_HOLDBACK_WORKERS = 0.25
OPEN_WORLD_HOLDBACK_TASKS = 0.10
MIN_OPEN_WORLD_FRACTION = 0.2


def _replay(
    dataset, pool, distance_model, events, ingest_config, journal=None, tracer=None
):
    """Stream ``events`` through a fresh ingestor.

    Returns ``(ingestor, snapshots, seconds, quarter_marks, phases,
    max_publish_gap)`` where ``quarter_marks`` are ``(events_submitted,
    elapsed_seconds)`` checkpoints at each quarter of the stream, for the
    degradation gate, ``phases`` is the phase-attributed
    :class:`PhaseBreakdown` when ``tracer`` is given (None otherwise), and
    ``max_publish_gap`` is the longest wall-clock gap (seconds) between
    consecutive snapshot publishes — the freshness counterpart of the stall
    gate.
    """
    inference = LocationAwareInference(
        dataset.tasks,
        pool.workers,
        distance_model,
        config=InferenceConfig(max_iterations=FULL_REFRESH_MAX_ITERATIONS),
    )
    snapshots = SnapshotStore()
    ingestor = AnswerIngestor(
        inference, snapshots, config=ingest_config, journal=journal, tracer=tracer
    )
    timeline = PhaseTimeline(tracer) if tracer is not None else None
    quarter = max(1, len(events) // 4)
    marks = []
    started = time.perf_counter()
    last_publish = started
    max_publish_gap = 0.0
    for index, event in enumerate(events, start=1):
        if ingestor.submit(event) is not None:
            now = time.perf_counter()
            max_publish_gap = max(max_publish_gap, now - last_publish)
            last_publish = now
        if index % quarter == 0:
            elapsed = time.perf_counter() - started
            marks.append((index, elapsed))
            if timeline is not None:
                timeline.mark(index, elapsed)
    if ingestor.flush() is not None:
        now = time.perf_counter()
        max_publish_gap = max(max_publish_gap, now - last_publish)
    elapsed = time.perf_counter() - started
    # Drain any still-running background fit *outside* the timed window so it
    # cannot bleed CPU into the next timed section of the benchmark.
    ingestor.close()
    phases = None
    if timeline is not None:
        timeline.mark(len(events), elapsed)
        phases = timeline.breakdown()
    return ingestor, snapshots, elapsed, marks, phases, max_publish_gap


def _micro_batched_config() -> IngestConfig:
    return IngestConfig(
        max_batch_answers=MICRO_BATCH_ANSWERS,
        max_batch_delay=MICRO_BATCH_DELAY,
        full_refresh_interval=FULL_REFRESH_INTERVAL,
        pipeline_lag_answers=PIPELINE_LAG_ANSWERS,
    )


def _naive_config() -> IngestConfig:
    """Refresh-per-answer: every single event closes a batch of one."""
    return IngestConfig(
        max_batch_answers=1,
        max_batch_delay=MICRO_BATCH_DELAY,
        full_refresh_interval=FULL_REFRESH_INTERVAL,
    )


def _peak_replay_mb(dataset, pool, distance_model, events, retain: bool) -> float:
    """tracemalloc peak (MiB) of one micro-batched replay of ``events``."""
    config = _micro_batched_config()
    config.retain_answer_log = retain
    tracemalloc.start()
    try:
        _replay(dataset, pool, distance_model, events, config)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024.0 * 1024.0)


def test_serving_throughput_gate(benchmark):
    dataset, pool, distance_model, events = build_answer_stream(SERVING_STREAM_ANSWERS)
    assert len(events) >= 20_000

    # Warm-up replay (discarded): the first replay of a process pays numpy
    # import, allocator and cache warm-up that later replays in this very
    # test never see — measuring it cold under-reports the plain rate
    # relative to every subsequent timed section.
    _replay(dataset, pool, distance_model, events[:GATE_PREFIX_ANSWERS],
            _micro_batched_config())

    # Full-stream micro-batched replay: the headline ingestion throughput.
    # The tracer rides along so the artifact carries the phase-attributed
    # breakdown — which stage eats the wall time as the stream ages.
    metrics = MetricsRegistry()
    tracer = Tracer(metrics, ring_capacity=4096)
    (
        full_ingestor,
        full_snapshots,
        full_seconds,
        quarter_marks,
        phases,
        max_publish_gap,
    ) = _replay(
        dataset, pool, distance_model, events, _micro_batched_config(), tracer=tracer
    )
    assert full_ingestor.stats.answers == len(events)
    assert phases is not None
    full_rate = len(events) / full_seconds

    # Steady-state-vs-late degradation: per-quarter rates, gating the last
    # quarter (which includes the closing flush, biasing against it) against
    # the second — the first steady-state window.
    bounds = [(0, 0.0)] + quarter_marks[:-1] + [(len(events), full_seconds)]
    quarter_rates = [
        (b_count - a_count) / (b_elapsed - a_elapsed)
        for (a_count, a_elapsed), (b_count, b_elapsed) in zip(bounds, bounds[1:])
    ]
    steady_rate = quarter_rates[1]
    late_rate = quarter_rates[-1]
    late_over_steady = late_rate / steady_rate

    # Journal-overhead gate: the identical full stream with every accepted
    # event made durable (checksummed write-ahead append) before it is
    # applied.  Run after the plain replay so both see warmed caches.
    journal_dir = Path(tempfile.mkdtemp(prefix="bench-journal-"))
    try:
        journal = AnswerJournal(
            journal_dir, max_segment_records=JOURNAL_SEGMENT_RECORDS
        )
        journaled_ingestor, _, journaled_seconds, _, _, _ = _replay(
            dataset,
            pool,
            distance_model,
            events,
            _micro_batched_config(),
            journal=journal,
        )
        journal_segments = len(journal.segment_paths())
        journal.close()
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)
    assert journaled_ingestor.stats.journal_appends == len(events)
    assert journaled_ingestor.stats.answers == len(events)
    journaled_rate = len(events) / journaled_seconds

    # Gate: identical prefix, micro-batched vs refresh-per-answer.
    prefix = events[:GATE_PREFIX_ANSWERS]
    _, _, micro_seconds, _, _, _ = _replay(
        dataset, pool, distance_model, prefix, _micro_batched_config()
    )
    naive_ingestor, _, naive_seconds, _, _, _ = _replay(
        dataset, pool, distance_model, prefix, _naive_config()
    )
    assert naive_ingestor.stats.batches == len(prefix)  # one update per answer
    micro_rate = len(prefix) / micro_seconds
    naive_rate = len(prefix) / naive_seconds
    speedup = micro_rate / naive_rate

    # Live assignment latency against the final published snapshot.  The
    # ingestor is log-free, so the replayed stream is re-collected into the
    # AnswerSet the assigner consults for already-answered pairs.
    frontend = AssignmentFrontend(
        dataset.tasks,
        pool.workers,
        distance_model,
        full_snapshots,
        strategy="accopt",
    )
    served_answers = AnswerSet(event.answer for event in events)
    for worker_id in pool.worker_ids[:ASSIGNMENT_REQUESTS]:
        frontend.assign(worker_id, 2, served_answers)
    stats = frontend.stats

    # Peak-memory report: identical prefix, log-free vs retained answer log.
    memory_prefix = events[:MEMORY_PREFIX_ANSWERS]
    log_free_peak_mb = _peak_replay_mb(
        dataset, pool, distance_model, memory_prefix, retain=False
    )
    retained_peak_mb = _peak_replay_mb(
        dataset, pool, distance_model, memory_prefix, retain=True
    )

    # Open-world stream: a quarter of the workers and a tenth of the tasks are
    # unknown to the serving model at startup and register on first sight.
    (
        ow_tasks,
        ow_workers,
        _ow_dataset,
        _ow_pool,
        ow_distance_model,
        ow_events,
        ow_open_events,
    ) = build_open_world_stream(
        OPEN_WORLD_STREAM_ANSWERS,
        holdback_worker_fraction=OPEN_WORLD_HOLDBACK_WORKERS,
        holdback_task_fraction=OPEN_WORLD_HOLDBACK_TASKS,
    )
    ow_inference = LocationAwareInference(
        ow_tasks,
        ow_workers,
        ow_distance_model,
        config=InferenceConfig(max_iterations=FULL_REFRESH_MAX_ITERATIONS),
    )
    ow_snapshots = SnapshotStore()
    ow_ingestor = AnswerIngestor(
        ow_inference, ow_snapshots, config=_micro_batched_config()
    )
    ow_started = time.perf_counter()
    for event in ow_events:
        ow_ingestor.submit(event)
    ow_ingestor.flush()
    ow_seconds = time.perf_counter() - ow_started
    ow_fraction = ow_open_events / len(ow_events)
    ow_latest = ow_snapshots.latest()
    assert ow_ingestor.stats.answers == len(ow_events)
    # The published universe caught up with every entity that arrived.
    assert ow_latest.store.num_workers == len(ow_workers) + ow_ingestor.stats.workers_registered
    assert ow_latest.store.num_tasks == len(ow_tasks) + ow_ingestor.stats.tasks_registered

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "stream_answers": len(events),
        "micro_batch_answers": MICRO_BATCH_ANSWERS,
        "full_refresh_interval": FULL_REFRESH_INTERVAL,
        "full_stream_seconds": round(full_seconds, 4),
        "full_stream_answers_per_sec": round(full_rate, 1),
        "min_full_stream_answers_per_sec": MIN_FULL_STREAM_ANSWERS_PER_SEC,
        "quarter_answers_per_sec": [round(rate, 1) for rate in quarter_rates],
        "late_over_steady": round(late_over_steady, 3),
        "min_late_over_steady": MIN_LATE_OVER_STEADY,
        "full_stream_batches": full_ingestor.stats.batches,
        "full_stream_incremental_updates": full_ingestor.stats.incremental_updates,
        "full_stream_full_refreshes": full_ingestor.stats.full_refreshes,
        "full_stream_log_flattens": full_ingestor.stats.log_flattens,
        "max_full_stream_log_flattens": MAX_FULL_STREAM_LOG_FLATTENS,
        "pipeline_lag_answers": PIPELINE_LAG_ANSWERS,
        "refreshes_overlapped": full_ingestor.stats.refreshes_overlapped,
        "answers_reconciled": full_ingestor.stats.answers_reconciled,
        "refresh_wait_ms": round(full_ingestor.stats.refresh_wait_seconds * 1e3, 1),
        "max_ingest_stall_ms": round(full_ingestor.stats.max_flush_stall_ms, 1),
        "max_allowed_ingest_stall_ms": MAX_INGEST_STALL_MS,
        "max_publish_gap_ms": round(max_publish_gap * 1e3, 1),
        "journaled_answers_per_sec": round(journaled_rate, 1),
        "min_journaled_answers_per_sec": MIN_JOURNALED_ANSWERS_PER_SEC,
        "journaled_over_plain": round(journaled_rate / full_rate, 3),
        "journal_appends": journaled_ingestor.stats.journal_appends,
        "journal_segments": journal_segments,
        "snapshots_published": full_ingestor.stats.snapshots_published,
        "delta_publishes": full_ingestor.stats.delta_publishes,
        "memory_prefix_answers": len(memory_prefix),
        "log_free_peak_mb": round(log_free_peak_mb, 2),
        "retained_log_peak_mb": round(retained_peak_mb, 2),
        "gate_prefix_answers": len(prefix),
        "gate_micro_answers_per_sec": round(micro_rate, 1),
        "gate_naive_answers_per_sec": round(naive_rate, 1),
        "gate_speedup": round(speedup, 2),
        "min_required_speedup": MIN_SPEEDUP,
        "assignment_requests": stats.requests,
        "assignment_p50_ms": round(stats.p50_latency_ms, 3),
        "assignment_p95_ms": round(stats.p95_latency_ms, 3),
        "open_world_stream_answers": len(ow_events),
        "open_world_fraction": round(ow_fraction, 3),
        "min_open_world_fraction": MIN_OPEN_WORLD_FRACTION,
        "open_world_answers_per_sec": round(len(ow_events) / ow_seconds, 1),
        "open_world_workers_registered": ow_ingestor.stats.workers_registered,
        "open_world_tasks_registered": ow_ingestor.stats.tasks_registered,
        "attributed_wall_fraction": round(phases.attributed_fraction, 3),
        "min_attributed_wall_fraction": MIN_ATTRIBUTED_WALL_FRACTION,
        "phase_stage_totals_seconds": {
            stage: round(seconds, 4)
            for stage, seconds in sorted(phases.stage_totals.items())
        },
        "phase_quarter_shares": [
            {stage: round(q.share(stage), 3) for stage in phases.stages}
            for q in phases.quarters
        ],
    }
    path = RESULTS_DIR / "BENCH_serving_throughput.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== serving_throughput ===\n{json.dumps(payload, indent=2)}\n")
    # Telemetry artifacts next to the JSON payload, for CI upload.
    metrics.export_jsonl(
        RESULTS_DIR / "serving_metrics.jsonl", answers=len(events)
    )
    trace_events = tracer.export_chrome(RESULTS_DIR / "serving_trace.json")
    print(
        f"phase breakdown ({trace_events} trace events retained):\n"
        f"{phases.render()}\n"
    )

    # The timed unit for pytest-benchmark: one micro-batched prefix replay.
    benchmark.pedantic(
        lambda: _replay(
            dataset, pool, distance_model, prefix, _micro_batched_config()
        ),
        rounds=1,
        iterations=1,
    )

    assert speedup >= MIN_SPEEDUP, (
        f"micro-batched serving is only {speedup:.1f}x faster than "
        f"refresh-per-answer (required: {MIN_SPEEDUP}x); see {path}"
    )
    assert late_over_steady >= MIN_LATE_OVER_STEADY, (
        f"ingestion throughput degrades over the stream: last quarter runs at "
        f"{late_over_steady:.2f}x the steady-state (second-quarter) rate "
        f"(required: {MIN_LATE_OVER_STEADY}x); see {path}"
    )
    assert full_rate >= MIN_FULL_STREAM_ANSWERS_PER_SEC, (
        f"full-stream micro-batched ingestion ran at {full_rate:.0f} answers/s "
        f"(ratchet: {MIN_FULL_STREAM_ANSWERS_PER_SEC:.0f}, raised when the "
        f"pipelined loop landed); see {path}"
    )
    assert full_ingestor.stats.max_flush_stall_ms <= MAX_INGEST_STALL_MS, (
        f"the longest single ingest stall was "
        f"{full_ingestor.stats.max_flush_stall_ms:.0f} ms (ceiling: "
        f"{MAX_INGEST_STALL_MS:.0f} ms) — a batch waited behind a full "
        f"re-fit; see {path}"
    )
    assert full_ingestor.stats.log_flattens <= MAX_FULL_STREAM_LOG_FLATTENS, (
        f"the serving replay flattened the answer log "
        f"{full_ingestor.stats.log_flattens} times — full refreshes must run "
        f"off the live tensor; see {path}"
    )
    assert journaled_rate >= MIN_JOURNALED_ANSWERS_PER_SEC, (
        f"journaled ingestion ran at {journaled_rate:.0f} answers/s "
        f"(floor: {MIN_JOURNALED_ANSWERS_PER_SEC:.0f} = "
        f"{JOURNAL_OVERHEAD_FLOOR:.0%} of the throughput ratchet) — the "
        f"write-ahead journal costs too much; see {path}"
    )
    assert ow_fraction >= MIN_OPEN_WORLD_FRACTION, (
        f"open-world stream only draws {ow_fraction:.0%} of its events from "
        f"held-back entities (required: {MIN_OPEN_WORLD_FRACTION:.0%}); "
        f"raise the holdback fractions"
    )
    assert phases.attributed_fraction >= MIN_ATTRIBUTED_WALL_FRACTION, (
        f"pipeline spans only attribute {phases.attributed_fraction:.0%} of "
        f"the full-stream wall clock (required: "
        f"{MIN_ATTRIBUTED_WALL_FRACTION:.0%}) — a stage is running untimed; "
        f"see {path}"
    )
