"""Fixtures for the benchmark harness.

Every figure and table of the paper's evaluation section has one benchmark
module in this directory.  Each module both *times* the relevant computation
(via pytest-benchmark) and *prints / writes* the series or table the paper
reports (under ``benchmarks/results/``), so the reproduction can be read side
by side with the paper.

Two profiles are supported, selected with the ``REPRO_BENCH_PROFILE``
environment variable:

* ``quick`` (default) — scaled-down budgets so the whole harness finishes in
  minutes; the *shape* of every result is preserved.
* ``paper`` — the paper's sizes (1000-assignment budgets, 10k–50k-assignment
  scalability runs, both datasets everywhere).

The figure sweeps accept ``--jobs N`` (or ``REPRO_BENCH_JOBS=N``) to fan the
independent sweep units out over a process pool — results are identical to
the serial run, only the bench wall-clock changes.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from bench_common import (  # noqa: E402  (path bootstrap above)
    BenchProfile,
    Campaign,
    collect_campaign,
    current_profile,
)

from repro.crowd.worker_pool import WorkerPoolSpec  # noqa: E402
from repro.data.generators import (  # noqa: E402
    generate_beijing_dataset,
    generate_china_dataset,
)
from repro.framework.experiment import build_worker_pool  # noqa: E402


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        help=(
            "fan the figure sweeps (compare_inference_models / "
            "compare_assigners) out over this many worker processes "
            "(default: REPRO_BENCH_JOBS, else serial)"
        ),
    )


@pytest.fixture(scope="session")
def profile(request) -> BenchProfile:
    return current_profile(jobs=request.config.getoption("--jobs"))


@pytest.fixture(scope="session")
def beijing_campaign(profile: BenchProfile) -> Campaign:
    """The Beijing dataset with five answers per task (Deployment 1)."""
    return collect_campaign(generate_beijing_dataset(seed=7), profile)


@pytest.fixture(scope="session")
def china_campaign(profile: BenchProfile) -> Campaign:
    """The China dataset with five answers per task (Deployment 1)."""
    return collect_campaign(generate_china_dataset(seed=11), profile)


@pytest.fixture(scope="session")
def campaigns(profile: BenchProfile, beijing_campaign: Campaign, china_campaign: Campaign):
    """Both Deployment-1 corpora, keyed by dataset name."""
    return {"Beijing": beijing_campaign, "China": china_campaign}


@pytest.fixture(scope="session")
def inference_comparisons(profile: BenchProfile, campaigns):
    """Figure 9 / 12 data: MV vs EM vs IM accuracy and runtime per budget.

    Computed once per session and shared by the accuracy bench (Figure 9) and
    the runtime bench (Figure 12).  In the quick profile only Beijing is run;
    the paper profile runs both datasets.
    """
    from repro.framework.experiment import (
        compare_inference_models,
        default_inference_factories,
    )

    names = ["Beijing", "China"] if profile.name == "paper" else ["Beijing"]
    results = {}
    for name in names:
        campaign = campaigns[name]
        budgets = [b for b in profile.inference_budgets if b <= len(campaign.answers)]
        factories = default_inference_factories(
            campaign.dataset, campaign.worker_pool, campaign.distance_model
        )
        results[name] = compare_inference_models(
            campaign.dataset,
            campaign.answers,
            budgets,
            factories,
            seed=profile.seed,
            jobs=profile.jobs,
        )
    return results


@pytest.fixture(scope="session")
def assignment_comparisons(profile: BenchProfile):
    """Figure 11 / Table II data: Random vs SF vs AccOpt campaigns.

    Runs the full online framework once per assignment strategy.  Quick profile
    uses a reduced budget on Beijing only; the paper profile reproduces the
    1000-assignment deployments on both datasets.
    """
    from repro.core.inference import InferenceConfig
    from repro.framework.config import FrameworkConfig
    from repro.framework.experiment import compare_assigners

    names = ["Beijing", "China"] if profile.name == "paper" else ["Beijing"]
    datasets = {
        "Beijing": generate_beijing_dataset(seed=7),
        "China": generate_china_dataset(seed=11),
    }
    config = FrameworkConfig(
        budget=profile.assignment_budget,
        tasks_per_worker=2,
        workers_per_round=profile.workers_per_round,
        evaluation_checkpoints=profile.assignment_checkpoints,
        full_refresh_interval=100,
        inference=InferenceConfig(max_iterations=40),
    )
    results = {}
    for name in names:
        dataset = datasets[name]
        pool = build_worker_pool(
            dataset,
            spec=WorkerPoolSpec(num_workers=profile.num_workers),
            seed=profile.seed,
        )
        results[name] = compare_assigners(
            dataset, config, worker_pool=pool, seed=profile.seed, jobs=profile.jobs
        )
    return results
