"""Figure 13 — Scalability of the Inference Model.

On a synthetic dataset the paper varies the number of assignments from 10k to
50k and reports (a) the EM runtime, which grows linearly, and (b) the number of
iterations to convergence, which grows slowly.  This bench reproduces both
series (at reduced sizes in the quick profile) and checks the near-linear
scaling of the per-iteration cost.
"""

from __future__ import annotations

import time

from bench_common import build_inference_corpus, current_profile, write_result

from repro.analysis.reporting import format_series_table
from repro.core.inference import InferenceConfig, LocationAwareInference


def test_fig13_inference_scalability(benchmark):
    profile = current_profile()
    sizes = list(profile.scalability_assignments)

    runtimes_s = []
    iterations = []
    for size in sizes:
        dataset, pool, distance_model, answers = build_inference_corpus(size)
        config = InferenceConfig(max_iterations=30, convergence_threshold=0.005)
        model = LocationAwareInference(
            dataset.tasks, pool.workers, distance_model, config=config
        )
        started = time.perf_counter()
        result = model.run_em(answers)
        runtimes_s.append(time.perf_counter() - started)
        iterations.append(result.iterations)

    # The timed unit: one EM run at the smallest size.
    dataset, pool, distance_model, answers = build_inference_corpus(sizes[0])
    model = LocationAwareInference(
        dataset.tasks,
        pool.workers,
        distance_model,
        config=InferenceConfig(max_iterations=30),
    )
    benchmark.pedantic(lambda: model.run_em(answers), rounds=1, iterations=1)

    table = format_series_table(
        "assignments",
        sizes,
        {"runtime (s)": runtimes_s, "iterations": iterations},
        precision=2,
    )
    write_result("fig13_inference_scalability", table)

    # Paper shape: runtime grows roughly linearly with the number of
    # assignments.  Compare per-assignment-per-iteration cost across the
    # extremes; it should stay within a small factor.
    unit_cost_small = runtimes_s[0] / (sizes[0] * max(1, iterations[0]))
    unit_cost_large = runtimes_s[-1] / (sizes[-1] * max(1, iterations[-1]))
    assert unit_cost_large <= unit_cost_small * 3.0
    # Iterations grow slowly (the paper sees 29 -> 38 over a 5x size increase).
    assert max(iterations) <= 3 * max(1, min(iterations))
