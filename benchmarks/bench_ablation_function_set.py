"""Ablation — the distance-function set F.

The paper argues that a *set* of fixed bell-shaped functions expresses
distance sensitivity better than a single function (Definition 4).  This
ablation compares the paper's set {0.1, 10, 100} against single-function sets
and a denser set, measuring labelling accuracy on the Beijing corpus.
"""

from __future__ import annotations

from bench_common import write_result

from repro.analysis.reporting import format_table
from repro.core.distance_functions import DistanceFunctionSet
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.framework.metrics import labelling_accuracy

FUNCTION_SETS = {
    "single f0.1": (0.1,),
    "single f10": (10.0,),
    "single f100": (100.0,),
    "paper {0.1,10,100}": (0.1, 10.0, 100.0),
    "dense {0.1,1,10,50,100}": (0.1, 1.0, 10.0, 50.0, 100.0),
}


def _accuracy_for_set(campaign, lambdas) -> float:
    config = InferenceConfig(
        function_set=DistanceFunctionSet(lambdas), max_iterations=40
    )
    model = LocationAwareInference(
        campaign.dataset.tasks,
        campaign.worker_pool.workers,
        campaign.distance_model,
        config=config,
    )
    model.fit(campaign.answers)
    return labelling_accuracy(model.predict_all(), campaign.dataset.tasks)


def test_ablation_function_set(benchmark, campaigns):
    campaign = campaigns["Beijing"]
    accuracies = {
        name: _accuracy_for_set(campaign, lambdas)
        for name, lambdas in FUNCTION_SETS.items()
    }

    benchmark.pedantic(
        lambda: _accuracy_for_set(campaign, (0.1, 10.0, 100.0)), rounds=1, iterations=1
    )

    table = format_table(
        ["function set", "accuracy"],
        [[name, value] for name, value in accuracies.items()],
    )
    write_result("ablation_function_set", table)

    paper_set = accuracies["paper {0.1,10,100}"]
    worst_single = min(
        accuracies["single f0.1"], accuracies["single f10"], accuracies["single f100"]
    )
    # The paper's set must not lose to the worst single-function choice; this is
    # the robustness argument for learning weights over a set.
    assert paper_set >= worst_single - 0.01
    assert all(0.5 <= value <= 1.0 for value in accuracies.values())
