"""Perf regression harness: vectorized vs reference AccOpt ΔAcc scoring.

The assignment-side twin of ``bench_inference_speed.py`` and
``bench_serving_throughput.py``: times one AccOpt batch (Algorithm 1) on a
Figure 14-scale corpus — 4k tasks, the paper-profile worker pool — under both
scoring engines and writes
``benchmarks/results/BENCH_assignment_speed.json``:

* **the gate** — the vectorized engine (batched
  :mod:`repro.core.accuracy_kernel` scoring) must be at least ``MIN_SPEEDUP``×
  faster than the scalar reference path on the identical batch, and the two
  engines must produce *identical* assignments (they are the same exact greedy
  algorithm);
* **serving latency** — p50/p95 of live per-worker assignment requests served
  by :class:`repro.serving.frontend.AssignmentFrontend` against a published
  snapshot of the fitted parameters, tracking the serving-side ratchet
  (target: p50 under ``P50_TARGET_MS`` at this scale).
"""

from __future__ import annotations

import json
import time

from bench_common import RESULTS_DIR, build_inference_corpus

from repro.assign.accopt import AccOptAssigner
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.serving.frontend import AssignmentFrontend
from repro.serving.snapshots import SnapshotStore

#: Fixed workload: Figure 14's quick-profile scale (4k tasks via the shared
#: 20k-answer corpus), one batch of available workers, paper HIT size h = 2.
CORPUS_ANSWERS = 20_000
AVAILABLE_WORKERS = 8
TASKS_PER_WORKER = 2

#: EM iterations used to produce realistic (fitted) parameters for scoring.
FIT_ITERATIONS = 5

#: The regression gate: minimum required speedup of vectorized over reference.
MIN_SPEEDUP = 10.0

#: Serving-latency requests measured against the published snapshot, and the
#: ratchet target recorded alongside them.
FRONTEND_REQUESTS = 30
P50_TARGET_MS = 50.0


def _time_assign(engine: str, corpus, parameters, available):
    dataset, pool, distance_model, answers = corpus
    assigner = AccOptAssigner(
        dataset.tasks,
        pool.workers,
        distance_model,
        parameters,
        engine=engine,
    )
    started = time.perf_counter()
    assignment = assigner.assign(available, TASKS_PER_WORKER, answers)
    return time.perf_counter() - started, assignment


def test_assignment_speed_regression(benchmark):
    corpus = build_inference_corpus(CORPUS_ANSWERS)
    dataset, pool, distance_model, answers = corpus

    model = LocationAwareInference(
        dataset.tasks,
        pool.workers,
        distance_model,
        config=InferenceConfig(max_iterations=FIT_ITERATIONS),
    )
    model.fit(answers)
    parameters = model.parameters
    available = list(pool.worker_ids[:AVAILABLE_WORKERS])

    # Time vectorized first so the reference run cannot warm the distance
    # cache for it (the vectorized engine computes its own distance matrix).
    vectorized_s, vectorized_assignment = _time_assign(
        "vectorized", corpus, parameters, available
    )
    reference_s, reference_assignment = _time_assign(
        "reference", corpus, parameters, available
    )
    assert vectorized_assignment == reference_assignment, (
        "vectorized and reference AccOpt diverged on the benchmark corpus"
    )
    speedup = reference_s / vectorized_s

    # Serving path: per-worker requests against a published snapshot, the
    # p50/p95 numbers the serving-latency ratchet tracks.
    task_ids = [task.task_id for task in dataset.tasks]
    num_labels = [task.num_labels for task in dataset.tasks]
    snapshots = SnapshotStore()
    snapshots.publish(
        parameters.to_array_store(pool.worker_ids, task_ids, num_labels),
        copy=False,
    )
    frontend = AssignmentFrontend(
        dataset.tasks,
        pool.workers,
        distance_model,
        snapshots,
        strategy="accopt",
    )
    for worker_id in pool.worker_ids[:FRONTEND_REQUESTS]:
        frontend.assign(worker_id, TASKS_PER_WORKER, answers)
    stats = frontend.stats

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "tasks": len(dataset.tasks),
        "corpus_answers": CORPUS_ANSWERS,
        "available_workers": AVAILABLE_WORKERS,
        "tasks_per_worker": TASKS_PER_WORKER,
        "reference_batch_s": round(reference_s, 4),
        "vectorized_batch_s": round(vectorized_s, 4),
        "speedup": round(speedup, 2),
        "min_required_speedup": MIN_SPEEDUP,
        "assignments_identical": vectorized_assignment == reference_assignment,
        "frontend_requests": stats.requests,
        "frontend_p50_ms": round(stats.p50_latency_ms, 3),
        "frontend_p95_ms": round(stats.p95_latency_ms, 3),
        "frontend_p50_target_ms": P50_TARGET_MS,
    }
    path = RESULTS_DIR / "BENCH_assignment_speed.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== assignment_speed ===\n{json.dumps(payload, indent=2)}\n")

    # The timed unit for pytest-benchmark: one vectorized AccOpt batch on a
    # fresh assigner (cold task-array and distance caches, like the gate run).
    benchmark.pedantic(
        lambda: _time_assign("vectorized", corpus, parameters, available),
        rounds=1,
        iterations=1,
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized AccOpt scoring is only {speedup:.1f}x faster than the "
        f"reference engine (required: {MIN_SPEEDUP}x); see {path}"
    )
