"""Figure 11 — Accuracy of the Task Assignment Algorithms (Random vs SF vs AccOpt).

The paper's Deployment 2 runs the full online framework with each assignment
strategy under the same budget and reports labelling accuracy at budget
checkpoints.  Expected shape: AccOpt on top, SF in the middle, Random last,
with accuracy growing as the budget is spent.

The shared ``assignment_comparisons`` fixture runs the three campaigns once per
session (it also feeds the Table II bench); this bench times one AccOpt batch
assignment and prints/validates the accuracy series.
"""

from __future__ import annotations

from bench_common import write_result

from repro.analysis.reporting import format_series_table
from repro.assign.accopt import AccOptAssigner
from repro.core.inference import LocationAwareInference
from repro.data.models import AnswerSet


def test_fig11_assignment_accuracy(benchmark, campaigns, assignment_comparisons):
    campaign = campaigns["Beijing"]

    # Time one representative AccOpt batch: fit the model on the collected
    # corpus, then assign h=2 tasks to a batch of five workers.
    inference = LocationAwareInference(
        campaign.dataset.tasks, campaign.worker_pool.workers, campaign.distance_model
    )
    inference.fit(campaign.answers)
    assigner = AccOptAssigner(
        campaign.dataset.tasks,
        campaign.worker_pool.workers,
        campaign.distance_model,
        inference.parameters,
    )
    batch = campaign.worker_pool.worker_ids[:5]

    benchmark.pedantic(
        lambda: assigner.assign(batch, 2, campaign.answers), rounds=1, iterations=1
    )

    for name, result in assignment_comparisons.items():
        table = format_series_table(
            "assignments",
            result.checkpoints,
            {method: result.accuracy[method] for method in ("Random", "SF", "AccOpt")},
            precision=3,
        )
        write_result(f"fig11_assignment_accuracy_{name.lower()}", table)

        final = {method: result.accuracy[method][-1] for method in result.accuracy}
        # Paper shape: the accuracy-optimal assigner does not trail Random, and
        # stays competitive with Spatial-First.
        assert final["AccOpt"] >= final["Random"] - 0.02
        assert final["AccOpt"] >= final["SF"] - 0.03
