"""Ablation — incremental EM versus full EM re-runs (Section III-D).

The paper refreshes the model with cheap incremental updates between full EM
runs.  This ablation simulates a stream of answer batches and compares (a) the
wall-clock cost and (b) the final accuracy of three refresh policies:
full EM after every batch, incremental-only updates after an initial fit, and
the paper's hybrid (incremental with periodic full refresh).
"""

from __future__ import annotations

import time

from bench_common import write_result

from repro.analysis.reporting import format_table
from repro.core.incremental import IncrementalUpdater
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.data.models import AnswerSet
from repro.framework.metrics import labelling_accuracy
from repro.utils.rng import default_rng


def _stream_batches(campaign, batch_size=50, seed=3):
    """Split the Deployment-1 corpus into an initial half plus streamed batches."""
    answers = list(campaign.answers)
    rng = default_rng(seed)
    order = rng.permutation(len(answers))
    answers = [answers[i] for i in order]
    half = len(answers) // 2
    initial = AnswerSet(answers[:half])
    batches = [
        answers[start:start + batch_size]
        for start in range(half, len(answers), batch_size)
    ]
    return initial, batches


def _run_policy(campaign, policy: str) -> tuple[float, float]:
    """Return (elapsed seconds, final accuracy) for a refresh policy."""
    config = InferenceConfig(max_iterations=40)
    model = LocationAwareInference(
        campaign.dataset.tasks,
        campaign.worker_pool.workers,
        campaign.distance_model,
        config=config,
    )
    initial, batches = _stream_batches(campaign)
    current = initial.copy()

    started = time.perf_counter()
    model.fit(current)
    updater = IncrementalUpdater(model, full_refresh_interval=100)
    for batch in batches:
        for answer in batch:
            current.add(answer)
        if policy == "full":
            model.fit(current)
        elif policy == "incremental":
            updater.apply(current, batch)
        else:  # hybrid: the paper's policy
            if updater.full_refresh_due:
                model.fit(current)
                updater.notify_full_refresh()
            else:
                updater.apply(current, batch)
    elapsed = time.perf_counter() - started
    accuracy = labelling_accuracy(model.predict_all(), campaign.dataset.tasks)
    return elapsed, accuracy


def test_ablation_incremental_updates(benchmark, campaigns):
    campaign = campaigns["Beijing"]

    results = {policy: _run_policy(campaign, policy) for policy in ("full", "incremental", "hybrid")}

    benchmark.pedantic(lambda: _run_policy(campaign, "hybrid"), rounds=1, iterations=1)

    table = format_table(
        ["policy", "elapsed (s)", "final accuracy"],
        [[policy, elapsed, accuracy] for policy, (elapsed, accuracy) in results.items()],
    )
    write_result("ablation_incremental", table)

    full_time, full_accuracy = results["full"]
    hybrid_time, hybrid_accuracy = results["hybrid"]
    incremental_time, incremental_accuracy = results["incremental"]
    # The cheap policies must actually be cheaper than re-running full EM...
    assert incremental_time <= full_time
    assert hybrid_time <= full_time * 1.2
    # ...without giving up much accuracy.
    assert hybrid_accuracy >= full_accuracy - 0.05
    assert incremental_accuracy >= full_accuracy - 0.08
