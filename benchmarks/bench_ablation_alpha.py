"""Ablation — the α weight between worker distance-quality and POI influence.

The paper fixes α = 0.5 in Equation 8.  This ablation sweeps α over
{0, 0.25, 0.5, 0.75, 1} on the Beijing Deployment-1 corpus: α = 1 ignores the
POI influence entirely, α = 0 ignores the worker's own distance profile.  The
middle settings are expected to be at least as accurate as either extreme,
which is the justification for combining both signals.
"""

from __future__ import annotations

from bench_common import write_result

from repro.analysis.reporting import format_series_table
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.framework.metrics import labelling_accuracy

ALPHAS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _accuracy_for_alpha(campaign, alpha: float) -> float:
    config = InferenceConfig(alpha=alpha, max_iterations=40)
    model = LocationAwareInference(
        campaign.dataset.tasks,
        campaign.worker_pool.workers,
        campaign.distance_model,
        config=config,
    )
    model.fit(campaign.answers)
    return labelling_accuracy(model.predict_all(), campaign.dataset.tasks)


def test_ablation_alpha(benchmark, campaigns):
    campaign = campaigns["Beijing"]
    accuracies = [_accuracy_for_alpha(campaign, alpha) for alpha in ALPHAS]

    benchmark.pedantic(
        lambda: _accuracy_for_alpha(campaign, 0.5), rounds=1, iterations=1
    )

    table = format_series_table("alpha", list(ALPHAS), {"accuracy": accuracies})
    write_result("ablation_alpha", table)

    # The combined setting must not be materially worse than either extreme.
    combined = accuracies[ALPHAS.index(0.5)]
    assert combined >= min(accuracies[0], accuracies[-1]) - 0.02
    assert all(0.5 <= value <= 1.0 for value in accuracies)
