"""Perf regression harness: vectorized vs reference EM on a fixed corpus.

Times both engines on the same 20k-answer corpus (the `bench_fig13` quick
profile scale referenced by the paper's Figures 12-13), with a fixed iteration
budget so the comparison is per-iteration cost, and writes
``benchmarks/results/BENCH_inference_speed.json`` — speedup plus per-iteration
milliseconds — so future PRs can track the trajectory.  The run fails if the
vectorized engine falls below a 5x speedup over the per-record reference.
"""

from __future__ import annotations

import json
import time

from bench_common import RESULTS_DIR, build_inference_corpus

from repro.core.inference import InferenceConfig, LocationAwareInference

#: Fixed workload: answers in the corpus and EM iterations per run.
CORPUS_ANSWERS = 20_000
EM_ITERATIONS = 3

#: The regression gate: minimum required speedup of vectorized over reference.
#: Raised from the initial 5x once the kernel reliably measured ~18x (PR 2).
MIN_SPEEDUP = 10.0


def _time_engine(engine: str, corpus) -> tuple[float, int]:
    dataset, pool, distance_model, answers = corpus
    config = InferenceConfig(
        engine=engine, max_iterations=EM_ITERATIONS, convergence_threshold=0.0
    )
    model = LocationAwareInference(
        dataset.tasks, pool.workers, distance_model, config=config
    )
    started = time.perf_counter()
    result = model.run_em(answers)
    return time.perf_counter() - started, result.iterations


def test_inference_speed_regression(benchmark):
    corpus = build_inference_corpus(CORPUS_ANSWERS)
    # Order matters for the reference engine only through the distance cache,
    # which the vectorized run does not populate; time vectorized first so the
    # reference run cannot warm anything up for it.
    vectorized_s, vectorized_iters = _time_engine("vectorized", corpus)
    reference_s, reference_iters = _time_engine("reference", corpus)
    assert vectorized_iters == reference_iters == EM_ITERATIONS

    reference_ms = 1000.0 * reference_s / reference_iters
    vectorized_ms = 1000.0 * vectorized_s / vectorized_iters
    speedup = reference_ms / vectorized_ms

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "answers": CORPUS_ANSWERS,
        "iterations": EM_ITERATIONS,
        "reference_total_s": round(reference_s, 4),
        "vectorized_total_s": round(vectorized_s, 4),
        "reference_per_iteration_ms": round(reference_ms, 3),
        "vectorized_per_iteration_ms": round(vectorized_ms, 3),
        "speedup": round(speedup, 2),
        "min_required_speedup": MIN_SPEEDUP,
    }
    path = RESULTS_DIR / "BENCH_inference_speed.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== inference_speed ===\n{json.dumps(payload, indent=2)}\n")

    # The timed unit for pytest-benchmark: one vectorized EM run.
    dataset, pool, distance_model, answers = corpus
    model = LocationAwareInference(
        dataset.tasks,
        pool.workers,
        distance_model,
        config=InferenceConfig(
            max_iterations=EM_ITERATIONS, convergence_threshold=0.0
        ),
    )
    benchmark.pedantic(lambda: model.run_em(answers), rounds=1, iterations=1)

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized EM is only {speedup:.1f}x faster than the reference "
        f"engine (required: {MIN_SPEEDUP}x); see {path}"
    )
