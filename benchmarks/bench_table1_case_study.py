"""Table I — Case study of one contested POI.

The paper zooms into "Beijing Olympic Forest Park": it lists the inferred
probability of every candidate label plus, per answering worker, the distance,
the answer, the real accuracy, the accuracy modelled by the location-aware
inference and the global average accuracy.  The point is that the modelled
accuracy tracks the real accuracy better than the global average, which is why
IM out-infers MV and the location-unaware EM on such tasks.

This bench fits the inference model on the Deployment-1 corpus, picks the most
contested task and reproduces both halves of the table.
"""

from __future__ import annotations

import numpy as np
from bench_common import write_result

from repro.analysis.case_study import build_case_study, most_disagreed_task
from repro.analysis.reporting import format_table
from repro.core.inference import LocationAwareInference


def _fit_inference(campaign):
    model = LocationAwareInference(
        campaign.dataset.tasks,
        campaign.worker_pool.workers,
        campaign.distance_model,
    )
    return model.fit(campaign.answers)


def test_table1_case_study(benchmark, campaigns):
    campaign = campaigns["Beijing"]
    inference = benchmark.pedantic(
        lambda: _fit_inference(campaign), rounds=1, iterations=1
    )

    task_id = most_disagreed_task(campaign.answers, campaign.dataset)
    study = build_case_study(
        task_id,
        campaign.dataset,
        campaign.worker_pool.workers,
        campaign.answers,
        inference,
        campaign.distance_model,
    )

    label_rows = [
        [label, int(truth), float(prob), int(pred)]
        for label, truth, prob, pred in zip(
            study.labels, study.truth, study.inferred_probabilities, study.inferred_labels
        )
    ]
    label_table = format_table(
        ["label", "truth", "P(z=1)", "inferred"], label_rows, precision=2
    )

    worker_rows = [
        [
            row.worker_id,
            float(row.distance),
            "".join(str(v) for v in row.answer),
            float(row.real_accuracy),
            float(row.modelled_accuracy),
            float(row.average_accuracy),
        ]
        for row in study.rows
    ]
    worker_table = format_table(
        ["worker", "distance", "answer", "real acc", "modelled acc", "avg acc"],
        worker_rows,
        precision=2,
    )
    write_result(
        "table1_case_study",
        f"POI: {study.poi_name} (task {study.task_id})\n\n"
        f"{label_table}\n\n{worker_table}",
    )

    assert study.rows, "the case-study task must have answers"
    # The paper's claim: the location-aware modelled accuracy tracks the real
    # per-task accuracy at least as well as the global average accuracy does.
    real = np.array([row.real_accuracy for row in study.rows])
    modelled = np.array([row.modelled_accuracy for row in study.rows])
    average = np.array([row.average_accuracy for row in study.rows])
    modelled_error = float(np.mean(np.abs(real - modelled)))
    average_error = float(np.mean(np.abs(real - average)))
    assert modelled_error <= average_error + 0.1
