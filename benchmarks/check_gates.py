"""Enforce the recorded perf-gate thresholds from the BENCH_*.json results.

Each benchmark writes its measurements *and* the thresholds it was gated on
into ``benchmarks/results/BENCH_*.json``.  This checker re-reads those files
and fails (exit code 1) if any recorded metric regressed below its recorded
threshold — a belt-and-braces guard for CI: even if a benchmark's in-process
assertions are edited or skipped, the published artifact cannot claim a gate
it did not meet.

Run from the repository root after the benchmarks::

    python benchmarks/check_gates.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: (file, metric, threshold key, direction) — ``">="`` means the metric must
#: be at least the threshold, ``"<="`` at most.
GATES = [
    ("BENCH_inference_speed.json", "speedup", "min_required_speedup", ">="),
    ("BENCH_assignment_speed.json", "speedup", "min_required_speedup", ">="),
    (
        "BENCH_assignment_speed.json",
        "frontend_p50_ms",
        "frontend_p50_target_ms",
        "<=",
    ),
    ("BENCH_serving_throughput.json", "gate_speedup", "min_required_speedup", ">="),
    (
        "BENCH_serving_throughput.json",
        "late_over_steady",
        "min_late_over_steady",
        ">=",
    ),
    (
        "BENCH_serving_throughput.json",
        "full_stream_answers_per_sec",
        "min_full_stream_answers_per_sec",
        ">=",
    ),
    (
        "BENCH_serving_throughput.json",
        "full_stream_log_flattens",
        "max_full_stream_log_flattens",
        "<=",
    ),
    (
        "BENCH_serving_throughput.json",
        "max_ingest_stall_ms",
        "max_allowed_ingest_stall_ms",
        "<=",
    ),
    (
        "BENCH_serving_throughput.json",
        "open_world_fraction",
        "min_open_world_fraction",
        ">=",
    ),
    (
        "BENCH_serving_throughput.json",
        "journaled_answers_per_sec",
        "min_journaled_answers_per_sec",
        ">=",
    ),
    (
        "BENCH_serving_throughput.json",
        "attributed_wall_fraction",
        "min_attributed_wall_fraction",
        ">=",
    ),
    (
        "BENCH_scale_sparse.json",
        "peak_memory_mb",
        "max_allowed_peak_memory_mb",
        "<=",
    ),
    ("BENCH_scale_sparse.json", "total_wall_s", "max_allowed_wall_s", "<="),
    (
        "BENCH_scale_sparse.json",
        "oracle_max_param_diff",
        "max_oracle_param_diff",
        "<=",
    ),
    (
        "BENCH_scenario_matrix.json",
        "clean_equivalence_delta",
        "max_clean_equivalence_delta",
        "<=",
    ),
    (
        "BENCH_scenario_matrix.json",
        "spam_detection_recall",
        "min_spam_detection_recall",
        ">=",
    ),
    (
        "BENCH_scenario_matrix.json",
        "spam_detection_precision",
        "min_spam_detection_precision",
        ">=",
    ),
    (
        "BENCH_scenario_matrix.json",
        "spam_false_positive_rate",
        "max_spam_false_positive_rate",
        "<=",
    ),
    (
        "BENCH_scenario_matrix.json",
        "drift_decayed_margin",
        "min_drift_decayed_margin",
        ">=",
    ),
]


def main() -> int:
    failures: list[str] = []
    payloads: dict[str, dict] = {}
    for name in sorted({gate[0] for gate in GATES}):
        path = RESULTS_DIR / name
        if not path.exists():
            failures.append(f"{name}: missing — did its benchmark run?")
            continue
        payloads[name] = json.loads(path.read_text(encoding="utf-8"))

    for name, metric, threshold_key, direction in GATES:
        payload = payloads.get(name)
        if payload is None:
            continue
        if metric not in payload or threshold_key not in payload:
            failures.append(f"{name}: missing {metric!r} or {threshold_key!r}")
            continue
        value = float(payload[metric])
        threshold = float(payload[threshold_key])
        ok = value >= threshold if direction == ">=" else value <= threshold
        status = "ok" if ok else "REGRESSED"
        print(f"{name}: {metric} = {value} {direction} {threshold} ... {status}")
        if not ok:
            failures.append(
                f"{name}: {metric} = {value} violates {metric} {direction} "
                f"{threshold} ({threshold_key})"
            )

    if failures:
        print("\nperf gates regressed:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("all recorded perf gates hold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
