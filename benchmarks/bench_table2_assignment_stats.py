"""Table II — Evaluation of the Task Assignment Algorithms.

For each assignment strategy the paper reports three statistics over the
completed campaign: the average worker quality of the collected answers, the
distribution of tasks over "< 3 / 3–7 / > 7 assigned workers" buckets, and the
average ``Acc_{t,k}`` of all labels.  AccOpt achieves the best average accuracy
with an even assignment distribution; Spatial-First skews the distribution
because the spatial layout of workers and tasks is uneven.

This bench reuses the campaigns run by the Figure 11 fixture, times the
statistics computation and prints the table.
"""

from __future__ import annotations

from bench_common import write_result

from repro.analysis.reporting import format_table
from repro.framework.metrics import assignment_distribution, worker_average_accuracy


def test_table2_assignment_stats(benchmark, campaigns, assignment_comparisons):
    campaign = campaigns["Beijing"]

    benchmark.pedantic(
        lambda: (
            worker_average_accuracy(campaign.answers, campaign.dataset),
            assignment_distribution(campaign.answers, campaign.dataset),
        ),
        rounds=1,
        iterations=1,
    )

    for name, result in assignment_comparisons.items():
        rows = []
        for method in ("Random", "SF", "AccOpt"):
            stats = result.stats[method]
            few, medium, many = stats.assignment_distribution
            rows.append(
                [
                    method,
                    f"{stats.worker_quality * 100:.1f}%",
                    f"[{few:.0f}%, {medium:.0f}%, {many:.0f}%]",
                    f"{stats.average_acc * 100:.1f}%",
                ]
            )
        table = format_table(
            ["Method", "Worker Quality", "Assigned Workers [<3, 3-7, >7]", "Average Acc"],
            rows,
        )
        write_result(f"table2_assignment_stats_{name.lower()}", table)

        # Paper shape: AccOpt achieves the best (or tied-best) average Acc_{t,k}.
        acc_values = {m: result.stats[m].average_acc for m in ("Random", "SF", "AccOpt")}
        assert acc_values["AccOpt"] >= acc_values["Random"] - 0.02
