"""Figure 10 — Convergence of the Inference Model.

The paper plots the maximum parameter change per EM iteration and reports
convergence (threshold 0.005) within a few dozen iterations on both datasets.
This bench reproduces the trace and checks that the change shrinks
monotonically enough to cross the threshold.
"""

from __future__ import annotations

from bench_common import write_result

from repro.analysis.convergence import convergence_trace
from repro.analysis.reporting import format_series_table


def _trace(campaign, max_iterations=60):
    return convergence_trace(
        campaign.dataset,
        campaign.worker_pool.workers,
        campaign.answers,
        campaign.distance_model,
        max_iterations=max_iterations,
    )


def test_fig10_convergence(benchmark, campaigns):
    traces = {}
    for name, campaign in campaigns.items():
        traces[name] = _trace(campaign)

    benchmark.pedantic(lambda: _trace(campaigns["Beijing"], 10), rounds=1, iterations=1)

    iterations = list(range(1, max(t.iterations for t in traces.values()) + 1))
    series = {
        f"{name} max param change": trace.max_parameter_change for name, trace in traces.items()
    }
    table = format_series_table("iteration", iterations, series, precision=4)
    summary = "\n".join(
        f"{name}: converged to {trace.threshold} after "
        f"{trace.iterations_to_threshold if trace.iterations_to_threshold else '> ' + str(trace.iterations)} iterations"
        for name, trace in traces.items()
    )
    write_result("fig10_convergence", table + "\n\n" + summary)

    for trace in traces.values():
        # The change decays substantially from the first iteration...
        assert trace.max_parameter_change[-1] < trace.max_parameter_change[0]
        # ... and the paper's qualitative claim holds: a few dozen iterations
        # bring the maximum parameter change to the 0.01 neighbourhood.
        assert min(trace.max_parameter_change) < 0.015
