"""Figure 8 — Impact of Distance on the POI-Influence.

POIs are bucketed by review count (>2500, >1000, >500, <500) and answer
accuracy is plotted against distance per bucket.  Popular POIs receive accurate
answers even from distant workers; obscure POIs degrade quickly.  This bench
reproduces the four curves and checks the popular-vs-obscure ordering.
"""

from __future__ import annotations

import numpy as np
from bench_common import write_result

from repro.analysis.poi_analysis import poi_influence_curves
from repro.analysis.reporting import format_series_table


def _curves(campaign):
    return poi_influence_curves(
        campaign.answers,
        campaign.dataset,
        campaign.worker_pool.workers,
        campaign.distance_model,
    )


def test_fig08_poi_influence(benchmark, campaigns):
    all_curves = {name: _curves(campaign) for name, campaign in campaigns.items()}
    benchmark.pedantic(lambda: _curves(campaigns["Beijing"]), rounds=1, iterations=1)

    bins = ["[0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1.0]"]
    for name, curves in all_curves.items():
        series = {curve.review_class: curve.accuracies for curve in curves}
        table = format_series_table("distance", bins, series, precision=3)
        write_result(f"fig08_poi_influence_{name.lower()}", table)

        # The paper's ordering: POIs with the most reviews keep higher average
        # accuracy than POIs with the fewest reviews.
        by_class = {curve.review_class: curve for curve in curves}
        popular = [v for v in by_class["Rev>2500"].accuracies if v is not None]
        obscure = [v for v in by_class["Rev<500"].accuracies if v is not None]
        if popular and obscure:
            assert float(np.mean(popular)) >= float(np.mean(obscure)) - 0.02
