"""Figure 7 — Impact of Distance on Worker Quality.

For the five most active workers, the paper plots answer accuracy against the
worker-POI distance (0.2-wide bins) and observes that (a) accuracy generally
degrades with distance and (b) the degradation rate differs per worker.  This
bench reproduces those curves and checks the aggregate trend.
"""

from __future__ import annotations

import numpy as np
from bench_common import write_result

from repro.analysis.reporting import format_series_table
from repro.analysis.worker_analysis import distance_accuracy_curves


def _curves(campaign):
    return distance_accuracy_curves(
        campaign.answers,
        campaign.dataset,
        campaign.worker_pool.workers,
        campaign.distance_model,
        top_k=5,
    )


def test_fig07_distance_vs_worker_accuracy(benchmark, campaigns):
    all_curves = {name: _curves(campaign) for name, campaign in campaigns.items()}
    benchmark.pedantic(lambda: _curves(campaigns["Beijing"]), rounds=1, iterations=1)

    bins = ["[0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1.0]"]
    for name, curves in all_curves.items():
        series = {curve.worker_id: curve.accuracies for curve in curves}
        table = format_series_table("distance", bins, series, precision=3)
        write_result(f"fig07_distance_worker_{name.lower()}", table)

        # Aggregate trend: near-bin accuracy exceeds far-bin accuracy on average
        # over the plotted workers (individual curves can be noisy).
        near, far = [], []
        for curve in curves:
            observed = [v for v in curve.accuracies if v is not None]
            if len(observed) >= 2:
                near.append(observed[0])
                far.append(observed[-1])
        if near and far:
            assert float(np.mean(near)) >= float(np.mean(far)) - 0.05
