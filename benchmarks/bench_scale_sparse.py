"""Scale gate: sparse candidate-pruned fitting + assignment on a web-scale universe.

The memory-side twin of the speed gates: a 10^5 x 10^5 (worker, task)
universe whose dense distance/accuracy matrices would need ~80 GB, fitted and
assigned entirely through the CSR candidate path
(:class:`repro.spatial.candidates.CandidateIndex` + the ``engine="sparse"``
AccOpt/EM kernels) under a **tracemalloc** budget that a dense run could not
possibly meet.  Writes ``benchmarks/results/BENCH_scale_sparse.json``:

* **the memory gate** — peak traced allocation across universe construction,
  the sparse EM fit and one sparse AccOpt batch must stay under
  ``PEAK_MEMORY_BUDGET_MB``;
* **the wall gate** — the same end-to-end run must finish within
  ``WALL_BUDGET_S`` (a coarse regression tripwire, sized ~4x the observed
  wall so CI noise cannot flake it);
* **the oracle tier** — before the big run, a small universe is fitted and
  assigned under both engines with a covering radius; the sparse and dense
  paths must agree on every parameter to ``ORACLE_TOLERANCE`` and produce
  identical greedy assignments.

The candidate radius is sized for ~30 in-radius tasks per worker
(``r = sqrt(k / (pi * T))`` over the unit square), so the candidate structure
holds ~3M pairs instead of the dense 10^10.
"""

from __future__ import annotations

import json
import math
import time
import tracemalloc

import numpy as np

from bench_common import RESULTS_DIR

from repro.assign.accopt import AccOptAssigner
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.data.models import POI, Answer, AnswerSet, Task, Worker
from repro.obs.metrics import MetricsRegistry
from repro.spatial.distance import DistanceModel
from repro.spatial.geometry import GeoPoint

#: The web-scale universe: 10^5 workers x 10^5 tasks over the unit square.
NUM_TASKS = 100_000
NUM_WORKERS = 100_000
NUM_ANSWERS = 200_000

#: Candidate radius sized for ~30 expected in-radius tasks per worker.
TARGET_CANDIDATES_PER_WORKER = 30
RADIUS = math.sqrt(TARGET_CANDIDATES_PER_WORKER / (math.pi * NUM_TASKS))

#: EM sweeps on the big universe — enough to exercise every kernel; the
#: oracle tier below runs EM to convergence.
EM_ITERATIONS = 3

#: One sparse AccOpt batch: paper HIT size h = 2 for a batch of arrivals.
AVAILABLE_WORKERS = 8
TASKS_PER_WORKER = 2

#: The gates.  A dense W x T float64 distance (or accuracy) matrix alone is
#: NUM_WORKERS * NUM_TASKS * 8 bytes = ~76 GB, so the memory budget is the
#: real gate: the run only fits inside it via the CSR candidate path.
PEAK_MEMORY_BUDGET_MB = 2048.0
WALL_BUDGET_S = 900.0

#: Oracle tier: sparse vs dense agreement on a small, fully-covered universe.
ORACLE_TASKS = 150
ORACLE_WORKERS = 60
ORACLE_ANSWERS = 450
ORACLE_TOLERANCE = 1e-9

SEED = 2016

#: Shared label layout — one tuple object for the whole universe keeps the
#: 10^5-task build inside the Python-object part of the memory budget.
LABELS = ("l1", "l2", "l3", "l4")
TRUTH = (1, 0, 1, 0)


def _build_universe(num_tasks: int, num_workers: int, num_answers: int, seed: int):
    """Uniform universe over the unit square with unique (worker, task) answers.

    Worker ``i`` answers tasks ``2i mod T`` and ``(2i + 1) mod T`` (unique
    pairs by construction; with W == T every task receives exactly two
    answers), so the answer log exercises every worker and task without any
    rejection sampling.
    """
    rng = np.random.default_rng(seed)
    tx, ty = rng.random(num_tasks), rng.random(num_tasks)
    tasks = [
        Task(
            task_id=f"t{j}",
            poi=POI(
                poi_id=f"p{j}",
                name=f"p{j}",
                location=GeoPoint(float(tx[j]), float(ty[j])),
            ),
            labels=LABELS,
            truth=TRUTH,
        )
        for j in range(num_tasks)
    ]
    wx, wy = rng.random(num_workers), rng.random(num_workers)
    workers = [
        Worker(worker_id=f"w{i}", locations=(GeoPoint(float(wx[i]), float(wy[i])),))
        for i in range(num_workers)
    ]
    responses = rng.integers(0, 2, size=(num_answers, len(LABELS))).tolist()
    answers = AnswerSet()
    for k in range(num_answers):
        i = k % num_workers
        answers.add(
            Answer(
                worker_id=f"w{i}",
                task_id=f"t{(2 * i + k // num_workers) % num_tasks}",
                responses=tuple(responses[k]),
            )
        )
    return tasks, workers, answers


def _fit_and_assign(tasks, workers, answers, engine: str, radius, iterations: int):
    """Fit EM and run one AccOpt batch under ``engine``; returns all outputs."""
    distance_model = DistanceModel.from_pois([task.location for task in tasks])
    config = InferenceConfig(
        engine=engine,
        candidate_radius=radius if engine == "sparse" else None,
        max_iterations=iterations,
    )
    model = LocationAwareInference(tasks, workers, distance_model, config=config)
    model.fit(answers)
    metrics = MetricsRegistry()
    assigner = AccOptAssigner(
        tasks,
        workers,
        distance_model,
        model.parameters,
        engine=engine,
        candidate_radius=radius if engine == "sparse" else None,
        metrics=metrics,
    )
    available = [worker.worker_id for worker in workers[:AVAILABLE_WORKERS]]
    assignment = assigner.assign(available, TASKS_PER_WORKER, answers)
    return model, assigner, assignment


def _oracle_tier() -> dict:
    """Sparse vs dense on a small universe with a covering radius."""
    tasks, workers, answers = _build_universe(
        ORACLE_TASKS, ORACLE_WORKERS, ORACLE_ANSWERS, SEED + 1
    )
    covering = 10.0  # the unit square's diameter is sqrt(2)
    dense_model, _, dense_assignment = _fit_and_assign(
        tasks, workers, answers, "vectorized", None, 100
    )
    sparse_model, _, sparse_assignment = _fit_and_assign(
        tasks, workers, answers, "sparse", covering, 100
    )
    max_diff = 0.0
    for task in tasks:
        dense_params = dense_model.parameters.task(
            task.task_id, num_labels=task.num_labels
        )
        sparse_params = sparse_model.parameters.task(
            task.task_id, num_labels=task.num_labels
        )
        max_diff = max(
            max_diff,
            float(
                np.max(np.abs(dense_params.label_probs - sparse_params.label_probs))
            ),
            float(
                np.max(
                    np.abs(
                        dense_params.influence_weights
                        - sparse_params.influence_weights
                    )
                )
            ),
        )
    for worker in workers:
        dense_params = dense_model.parameters.worker(worker.worker_id)
        sparse_params = sparse_model.parameters.worker(worker.worker_id)
        max_diff = max(
            max_diff,
            abs(dense_params.p_qualified - sparse_params.p_qualified),
            float(
                np.max(
                    np.abs(
                        np.asarray(dense_params.distance_weights)
                        - np.asarray(sparse_params.distance_weights)
                    )
                )
            ),
        )
    return {
        "oracle_max_param_diff": max_diff,
        "max_oracle_param_diff": ORACLE_TOLERANCE,
        "oracle_assignments_identical": dense_assignment == sparse_assignment,
    }


def test_scale_sparse_gate(benchmark):
    oracle = _oracle_tier()
    assert oracle["oracle_assignments_identical"], (
        "sparse and dense AccOpt diverged on the covered oracle universe"
    )
    assert oracle["oracle_max_param_diff"] <= ORACLE_TOLERANCE

    # The gated run: tracemalloc covers universe construction, the sparse EM
    # fit and the sparse AccOpt batch — everything a serving deployment would
    # hold live for this universe.
    tracemalloc.start()
    started = time.perf_counter()
    tasks, workers, answers = _build_universe(
        NUM_TASKS, NUM_WORKERS, NUM_ANSWERS, SEED
    )
    build_wall_s = time.perf_counter() - started

    fit_started = time.perf_counter()
    model, assigner, assignment = _fit_and_assign(
        tasks, workers, answers, "sparse", RADIUS, EM_ITERATIONS
    )
    fit_assign_wall_s = time.perf_counter() - fit_started
    total_wall_s = time.perf_counter() - started
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    assigned = sum(len(task_ids) for task_ids in assignment.values())
    assert assigned == AVAILABLE_WORKERS * TASKS_PER_WORKER
    assert all(
        len(set(task_ids)) == len(task_ids) for task_ids in assignment.values()
    )

    index = assigner._candidate_index
    kept = index.pairs_kept_total if index is not None else 0
    pruned = index.pairs_pruned_total if index is not None else 0

    peak_memory_mb = peak_bytes / 2**20
    dense_matrix_mb = NUM_WORKERS * NUM_TASKS * 8 / 2**20
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    payload = {
        "num_tasks": NUM_TASKS,
        "num_workers": NUM_WORKERS,
        "num_answers": NUM_ANSWERS,
        "candidate_radius": round(RADIUS, 6),
        "em_iterations": EM_ITERATIONS,
        "assign_pairs_kept": int(kept),
        "assign_pairs_pruned": int(pruned),
        "dense_matrix_equivalent_mb": round(dense_matrix_mb, 1),
        "peak_memory_mb": round(peak_memory_mb, 1),
        "max_allowed_peak_memory_mb": PEAK_MEMORY_BUDGET_MB,
        "build_wall_s": round(build_wall_s, 2),
        "fit_assign_wall_s": round(fit_assign_wall_s, 2),
        "total_wall_s": round(total_wall_s, 2),
        "max_allowed_wall_s": WALL_BUDGET_S,
        **{k: (round(v, 12) if isinstance(v, float) else v) for k, v in oracle.items()},
    }
    path = RESULTS_DIR / "BENCH_scale_sparse.json"
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\n=== scale_sparse ===\n{json.dumps(payload, indent=2)}\n")

    # The timed unit for pytest-benchmark: one warm sparse AccOpt batch on
    # the already-built universe (the serving-arrival steady state).
    available = [worker.worker_id for worker in workers[:AVAILABLE_WORKERS]]
    benchmark.pedantic(
        lambda: assigner.assign(available, TASKS_PER_WORKER, answers),
        rounds=1,
        iterations=1,
    )

    assert peak_memory_mb <= PEAK_MEMORY_BUDGET_MB, (
        f"sparse scale run peaked at {peak_memory_mb:.0f} MB "
        f"(budget: {PEAK_MEMORY_BUDGET_MB:.0f} MB; dense needs "
        f"~{dense_matrix_mb / 1024:.0f} GB); see {path}"
    )
    assert total_wall_s <= WALL_BUDGET_S, (
        f"sparse scale run took {total_wall_s:.0f}s "
        f"(budget: {WALL_BUDGET_S:.0f}s); see {path}"
    )
