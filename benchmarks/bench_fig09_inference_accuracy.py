"""Figure 9 — Accuracy of the Inference Models (MV vs EM vs IM).

The paper subsamples the Deployment-1 corpus at budgets of 600–1000 assignments
and reports the labelling accuracy of majority voting (MV), the Dawid–Skene
confusion-matrix EM (EM) and the location-aware inference model (IM).  The
expected shape: IM on top, EM in the middle, MV last, and all three improving
with budget.

The shared ``inference_comparisons`` fixture computes the full sweep once per
session (it is reused by the Figure 12 runtime bench); this bench times one
representative IM fit on the full corpus and prints/validates the accuracy
series.
"""

from __future__ import annotations

from bench_common import write_result

from repro.analysis.reporting import format_series_table
from repro.core.inference import LocationAwareInference


def test_fig09_inference_accuracy(benchmark, campaigns, inference_comparisons):
    campaign = campaigns["Beijing"]

    def fit_im():
        model = LocationAwareInference(
            campaign.dataset.tasks,
            campaign.worker_pool.workers,
            campaign.distance_model,
        )
        return model.fit(campaign.answers)

    benchmark.pedantic(fit_im, rounds=1, iterations=1)

    for name, result in inference_comparisons.items():
        table = format_series_table(
            "assignments",
            result.budgets,
            {method: result.accuracy[method] for method in ("MV", "EM", "IM")},
            precision=3,
        )
        write_result(f"fig09_inference_accuracy_{name.lower()}", table)

        largest = result.budgets[-1]
        im = result.accuracy_of("IM", largest)
        mv = result.accuracy_of("MV", largest)
        em = result.accuracy_of("EM", largest)
        # Paper shape: the location-aware model does not trail either baseline.
        assert im >= mv - 0.02
        assert im >= em - 0.02
        # Accuracy should not collapse as the budget grows.
        assert result.accuracy["IM"][-1] >= result.accuracy["IM"][0] - 0.05
