"""Figure 14 — Scalability of the Task Assignment Algorithm.

The paper measures the AccOpt batch-assignment runtime (a) for 100 available
workers while varying the number of tasks from 2k to 10k, and (b) for 10k tasks
while varying the number of workers.  Both curves grow linearly.  This bench
reproduces both sweeps (reduced sizes in the quick profile) and checks the
near-linear growth.
"""

from __future__ import annotations

import time

from bench_common import current_profile, write_result

from repro.analysis.reporting import format_series_table
from repro.assign.accopt import AccOptAssigner
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.data.generators import generate_scalability_dataset
from repro.data.models import AnswerSet
from repro.framework.experiment import build_distance_model
from repro.spatial.bbox import BoundingBox


def _setup(num_tasks: int, num_workers: int, seed: int = 9):
    dataset = generate_scalability_dataset(num_tasks=num_tasks, labels_per_task=10, seed=seed)
    distance_model = build_distance_model(dataset)
    bounds = BoundingBox.from_points(dataset.poi_locations)
    pool = WorkerPool.generate(
        bounds, spec=WorkerPoolSpec(num_workers=num_workers), seed=seed
    )
    assigner = AccOptAssigner(dataset.tasks, pool.workers, distance_model)
    return assigner, pool


def _time_assignment(assigner: AccOptAssigner, pool: WorkerPool, batch_size: int) -> float:
    batch = pool.worker_ids[:batch_size]
    started = time.perf_counter()
    assigner.assign(batch, 2, AnswerSet())
    return (time.perf_counter() - started) * 1000.0


def test_fig14a_varying_tasks(benchmark):
    profile = current_profile()
    task_counts = list(profile.scalability_tasks)
    batch_size = profile.scalability_workers[0]

    runtimes_ms = []
    for num_tasks in task_counts:
        assigner, pool = _setup(num_tasks, num_workers=batch_size)
        runtimes_ms.append(_time_assignment(assigner, pool, batch_size))

    assigner, pool = _setup(task_counts[0], num_workers=batch_size)
    benchmark.pedantic(
        lambda: assigner.assign(pool.worker_ids[:batch_size], 2, AnswerSet()),
        rounds=1,
        iterations=1,
    )

    table = format_series_table(
        "tasks", task_counts, {"assignment time (ms)": runtimes_ms}, precision=1
    )
    write_result("fig14a_assignment_scalability_tasks", table)

    # Near-linear growth: the per-task cost at the largest size stays within a
    # small factor of the per-task cost at the smallest size.
    per_task_small = runtimes_ms[0] / task_counts[0]
    per_task_large = runtimes_ms[-1] / task_counts[-1]
    assert per_task_large <= per_task_small * 4.0


def test_fig14b_varying_workers(benchmark):
    profile = current_profile()
    worker_counts = list(profile.scalability_workers)
    num_tasks = profile.scalability_tasks[-1]

    assigner, pool = _setup(num_tasks, num_workers=max(worker_counts))
    runtimes_ms = []
    for batch_size in worker_counts:
        runtimes_ms.append(_time_assignment(assigner, pool, batch_size))

    benchmark.pedantic(
        lambda: assigner.assign(pool.worker_ids[: worker_counts[0]], 2, AnswerSet()),
        rounds=1,
        iterations=1,
    )

    table = format_series_table(
        "workers", worker_counts, {"assignment time (ms)": runtimes_ms}, precision=1
    )
    write_result("fig14b_assignment_scalability_workers", table)

    # Runtime must grow with the batch size, and the growth should stay far
    # below quadratic blow-up over the measured range.
    assert runtimes_ms[-1] >= runtimes_ms[0] * 0.8
    per_worker_small = runtimes_ms[0] / worker_counts[0]
    per_worker_large = runtimes_ms[-1] / worker_counts[-1]
    assert per_worker_large <= per_worker_small * 6.0
