"""Task-assignment strategies behind a common interface.

* :class:`~repro.assign.random_assigner.RandomAssigner` — the RANDOM baseline:
  each available worker receives ``h`` uniformly random tasks they have not yet
  answered.
* :class:`~repro.assign.spatial_first.SpatialFirstAssigner` — the SF baseline:
  each worker receives the closest not-yet-answered tasks.
* :class:`~repro.assign.uncertainty.UncertaintyFirstAssigner` — an extension
  beyond the paper: entropy-based task selection in the spirit of the CDAS
  baseline discussed in the related work.
* :class:`~repro.assign.accopt.AccOptAssigner` — the paper's greedy
  accuracy-improvement assigner (defined in :mod:`repro.core.assignment`,
  re-exported here so all strategies are importable from one place).

All strategies implement :class:`repro.core.assignment.TaskAssigner`.
"""

from repro.core.assignment import AccOptAssigner, TaskAssigner
from repro.assign.random_assigner import RandomAssigner
from repro.assign.spatial_first import SpatialFirstAssigner
from repro.assign.uncertainty import UncertaintyFirstAssigner

__all__ = [
    "TaskAssigner",
    "AccOptAssigner",
    "RandomAssigner",
    "SpatialFirstAssigner",
    "UncertaintyFirstAssigner",
]
