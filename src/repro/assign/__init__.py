"""Task-assignment strategies behind a common interface.

* :class:`~repro.assign.random_assigner.RandomAssigner` — the RANDOM baseline:
  each available worker receives ``h`` uniformly random tasks they have not yet
  answered.
* :class:`~repro.assign.spatial_first.SpatialFirstAssigner` — the SF baseline:
  each worker receives the closest not-yet-answered tasks.
* :class:`~repro.assign.uncertainty.UncertaintyFirstAssigner` — an extension
  beyond the paper: entropy-based task selection in the spirit of the CDAS
  baseline discussed in the related work.
* :class:`~repro.assign.accopt.AccOptAssigner` — the paper's greedy
  accuracy-improvement assigner (Algorithm 1), scoring candidate pairs through
  the batched :mod:`repro.core.accuracy_kernel` by default with the scalar
  path kept as an ``engine="reference"`` oracle.

All strategies implement :class:`repro.core.assignment.TaskAssigner`.
:func:`build_assigner` constructs any of them by name — the CLI, the examples
and the online serving frontend (:mod:`repro.serving.frontend`) all go through
it so strategy names stay consistent across entry points.
"""

from __future__ import annotations

from repro.core.assignment import TaskAssigner
from repro.assign.accopt import ACCOPT_ENGINES, AccOptAssigner
from repro.assign.random_assigner import RandomAssigner
from repro.assign.spatial_first import SpatialFirstAssigner
from repro.assign.uncertainty import UncertaintyFirstAssigner
from repro.data.models import Task, Worker
from repro.spatial.distance import DistanceModel

#: Strategy names accepted by :func:`build_assigner` (and the CLI flags).
ASSIGNER_NAMES = ("accopt", "random", "spatial", "uncertainty")


def build_assigner(
    name: str,
    tasks: list[Task],
    workers: list[Worker],
    distance_model: DistanceModel | None = None,
    seed: int | None = None,
    engine: str = "vectorized",
    candidate_radius: float | None = None,
    metrics=None,
) -> TaskAssigner:
    """Construct the assignment strategy called ``name``.

    ``distance_model`` is required by the distance-aware strategies
    (``"accopt"`` and ``"spatial"``); ``seed`` only affects ``"random"``;
    ``engine`` selects the ``"accopt"`` ΔAcc scoring path (``"vectorized"``
    batched kernels by default, ``"sparse"`` for the candidate-pruned CSR
    path — which additionally needs ``candidate_radius`` — and
    ``"reference"`` for the scalar oracle).  ``metrics`` is an optional
    :class:`~repro.obs.metrics.MetricsRegistry` receiving the sparse
    engine's candidate-pruning statistics.
    """
    if name not in ASSIGNER_NAMES:
        raise ValueError(f"unknown assigner {name!r}; expected one of {ASSIGNER_NAMES}")
    if name == "random":
        return RandomAssigner(tasks, workers, seed=seed)
    if name == "uncertainty":
        return UncertaintyFirstAssigner(tasks, workers)
    if distance_model is None:
        raise ValueError(f"assigner {name!r} requires a distance_model")
    if name == "spatial":
        return SpatialFirstAssigner(tasks, workers, distance_model)
    return AccOptAssigner(
        tasks,
        workers,
        distance_model,
        engine=engine,
        candidate_radius=candidate_radius,
        metrics=metrics,
    )


__all__ = [
    "ASSIGNER_NAMES",
    "ACCOPT_ENGINES",
    "TaskAssigner",
    "AccOptAssigner",
    "RandomAssigner",
    "SpatialFirstAssigner",
    "UncertaintyFirstAssigner",
    "build_assigner",
]
