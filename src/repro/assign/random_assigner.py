"""The RANDOM assignment baseline.

Assigns each available worker ``h`` tasks drawn uniformly at random from the
tasks that worker has not yet answered, ignoring worker quality, distance and
the current inference state.  This is the weakest baseline in the paper's
Figure 11 / Table II comparison.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.assignment import TaskAssigner
from repro.data.models import AnswerSet, Task, Worker
from repro.utils.rng import SeedLike, default_rng


class RandomAssigner(TaskAssigner):
    """Uniformly random task assignment."""

    def __init__(
        self, tasks: list[Task], workers: list[Worker], seed: SeedLike = None
    ) -> None:
        super().__init__(tasks, workers)
        self._rng = default_rng(seed)

    def assign(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        self._validate_request(available_workers, h)
        assignment: dict[str, list[str]] = {}
        for worker_id in available_workers:
            candidates = self._candidate_tasks(worker_id, answers)
            if not candidates:
                assignment[worker_id] = []
                continue
            count = min(h, len(candidates))
            chosen = self._rng.choice(len(candidates), size=count, replace=False)
            assignment[worker_id] = [candidates[i] for i in sorted(chosen)]
        return assignment
