"""The Spatial-First (SF) assignment baseline.

For each available worker, SF assigns the ``h`` closest tasks the worker has
not yet answered — the strategy used by travel-cost-oriented spatial
crowdsourcing systems.  Distance is the same normalised worker-to-POI distance
the inference model uses (minimum over the worker's declared locations).

The paper observes (Table II) that SF concentrates assignments around densely
populated areas: because the spatial distribution of tasks and workers is
uneven, some tasks end up with many answers while remote tasks get almost none,
which caps the achievable inference accuracy.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.assignment import TaskAssigner
from repro.data.models import AnswerSet, Task, Worker
from repro.spatial.distance import DistanceModel


class SpatialFirstAssigner(TaskAssigner):
    """Closest-task-first assignment."""

    def __init__(
        self,
        tasks: list[Task],
        workers: list[Worker],
        distance_model: DistanceModel,
    ) -> None:
        super().__init__(tasks, workers)
        self._distance_model = distance_model
        # Distances are deterministic per (worker, task); cache them because the
        # same worker typically shows up in many assignment rounds.
        self._distance_cache: dict[tuple[str, str], float] = {}

    def _distance(self, worker_id: str, task_id: str) -> float:
        key = (worker_id, task_id)
        cached = self._distance_cache.get(key)
        if cached is not None:
            return cached
        worker = self._workers[worker_id]
        task = self._tasks[task_id]
        value = self._distance_model.worker_task_distance(
            worker.locations, task.location
        )
        self._distance_cache[key] = value
        return value

    def assign(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        self._validate_request(available_workers, h)
        assignment: dict[str, list[str]] = {}
        for worker_id in available_workers:
            candidates = self._candidate_tasks(worker_id, answers)
            ranked = sorted(
                candidates, key=lambda task_id: (self._distance(worker_id, task_id), task_id)
            )
            assignment[worker_id] = ranked[: min(h, len(ranked))]
        return assignment
