"""Re-export of the AccOpt greedy assigner.

The implementation lives in :mod:`repro.core.assignment` because it is part of
the paper's core contribution; it is re-exported here so that all assignment
strategies can be imported from the :mod:`repro.assign` package uniformly.
"""

from repro.core.assignment import AccOptAssigner

__all__ = ["AccOptAssigner"]
