"""The paper's greedy accuracy-optimal assigner (AccOpt, Algorithm 1).

Section IV formulates the optimal task assignment problem: given the set ``W``
of currently available workers and a per-worker HIT size ``h``, choose ``A(W)``
maximising the total expected accuracy improvement
``Σ_t Σ_k ΔAcc_{t,k}(Ŵ(t))``.  The exact problem is NP-hard (Lemma 3), so the
paper uses the greedy Algorithm 1: repeatedly pick the (worker, task) pair with
the largest marginal ΔAcc, update the affected task's hypothetical accuracy via
Lemma 2's recursion, and stop when every worker has ``h`` tasks.

:class:`AccOptAssigner` implements Algorithm 1 behind two engines:

* ``engine="vectorized"`` (the default) scores every candidate pair through
  the batched kernels of :mod:`repro.core.accuracy_kernel`: one
  ``(|W|, |T|)`` Equation 9 matrix over the
  :class:`~repro.core.params.ArrayParameterStore` arrays and a cached
  normalised-distance matrix, one fused marginal-gain matrix, and an O(|W|)
  column re-score after each greedy pick.
* ``engine="sparse"`` scores only the radius-bounded candidate pairs of a
  :class:`~repro.spatial.candidates.CandidateIndex` (CSR layout over a
  :class:`~repro.spatial.grid_index.GridIndex` bulk query), substituting the
  shared closed-form :func:`~repro.core.accuracy_kernel.far_field_accuracy`
  for every out-of-radius pair.  Because the far-field accuracy is one scalar,
  far marginal gains collapse to per-task values, so the greedy loop needs
  only O(nnz) candidate state plus an O(|T|) far-side heap instead of the
  dense ``(|W|, |T|)`` matrices — with ``candidate_radius=inf`` (every pair a
  candidate) it reproduces the vectorized engine's pick sequence exactly.
* ``engine="reference"`` keeps the original scalar path — per-label
  :class:`~repro.core.accuracy.LabelAccuracy` recursion driven through an
  :class:`~repro.core.accuracy.AccuracyEstimator` and a lazy max-heap — as the
  equivalence oracle the vectorized engine is tested against.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core import accuracy_kernel
from repro.core.accuracy import AccuracyEstimator, LabelAccuracy
from repro.core.assignment import TaskAssigner
from repro.core.params import ArrayParameterStore, ModelParameters
from repro.data.models import AnswerSet, Task, Worker
from repro.spatial.candidates import CandidateIndex
from repro.spatial.distance import DistanceModel, normalised_distance_matrix

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.obs.metrics import MetricsRegistry

#: Engines accepted by :class:`AccOptAssigner`.
ACCOPT_ENGINES = ("vectorized", "sparse", "reference")


class AccOptAssigner(TaskAssigner):
    """The paper's greedy accuracy-optimal assigner (Algorithm 1).

    The assigner consumes the latest :class:`~repro.core.params.ModelParameters`
    (worker qualities, POI influences, label probabilities) via
    :meth:`update_parameters` and greedily maximises the expected accuracy
    improvement of the batch.

    Complexity matches the paper — ``O(|W|·|T|·|L| + h·|W|²·|L|)`` per batch:
    the initial scoring of every (worker, task) pair dominates, and each greedy
    pick only re-scores the chosen task for the remaining workers.  The
    vectorized engine keeps that shape but turns the initial scoring into a
    handful of ``(|W|, |T|)`` NumPy kernels (with worker-to-task distance rows
    and the task-side parameter arrays cached across calls) and each re-score
    into one column update, so per-arrival latency stays flat as Figure 14
    scales tasks and workers.
    """

    def __init__(
        self,
        tasks: list[Task],
        workers: list[Worker],
        distance_model: DistanceModel,
        parameters: ModelParameters | None = None,
        engine: str = "vectorized",
        candidate_radius: float | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        super().__init__(tasks, workers)
        if engine not in ACCOPT_ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ACCOPT_ENGINES}"
            )
        if engine == "sparse" and candidate_radius is None:
            raise ValueError(
                "engine='sparse' needs a candidate_radius (raw coordinate "
                "units; use inf to keep every pair a candidate)"
            )
        self._distance_model = distance_model
        self._parameters = parameters or ModelParameters()
        self._engine = engine
        self._candidate_radius = candidate_radius
        self._metrics = metrics
        self._candidate_index: CandidateIndex | None = None
        # Task-side orderings shared by every vectorized call; initially sorted
        # to match the reference path's _candidate_tasks ordering, with tasks
        # arriving later (open-world growth) appended in arrival order.
        self._task_ids: list[str] = sorted(self._tasks)
        self._task_column = {tid: j for j, tid in enumerate(self._task_ids)}
        self._task_locations = [self._tasks[tid].location for tid in self._task_ids]
        # Ragged label layout over the task ordering, rebuilt lazily after the
        # universe grows.
        self._task_layout: tuple[np.ndarray, np.ndarray] | None = None
        # Worker-to-task distances are pure geometry — cached per worker for
        # the serving frontend's one-worker-per-request pattern; rows are
        # extended in place when tasks arrive after the row was cached.
        self._distance_rows: dict[str, np.ndarray] = {}
        # Task-side parameter gather, invalidated on update_parameters.
        self._task_arrays: tuple[np.ndarray, np.ndarray] | None = None

    def _on_task_added(self, task: Task) -> None:
        """Extend the task-side structures for a task posted after startup."""
        self._task_column[task.task_id] = len(self._task_ids)
        self._task_ids.append(task.task_id)
        self._task_locations.append(task.location)
        self._task_layout = None
        self._task_arrays = None
        if self._candidate_index is not None:
            self._candidate_index.add_task(task)

    @property
    def parameters(self) -> ModelParameters:
        return self._parameters

    @property
    def engine(self) -> str:
        return self._engine

    def update_parameters(self, parameters: ModelParameters) -> None:
        self._parameters = parameters
        self._task_arrays = None

    def _ensure_task_layout(self) -> tuple[np.ndarray, np.ndarray]:
        """``(num_labels, label_offsets)`` over the current task ordering."""
        if self._task_layout is None:
            num_labels = np.asarray(
                [self._tasks[tid].num_labels for tid in self._task_ids],
                dtype=np.intp,
            )
            label_offsets = np.concatenate(([0], np.cumsum(num_labels)))
            self._task_layout = (num_labels, label_offsets)
        return self._task_layout

    def assign(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        self._validate_request(available_workers, h)
        if not available_workers:
            return {}
        # Quarantined (excluded) workers get empty HITs and never participate
        # in the greedy scoring: spending budget on a distrusted worker wastes
        # answers the EM step would then have to down-weight anyway.
        workers = self._assignable_workers(available_workers)
        if not workers:
            return {w: [] for w in available_workers}
        if self._engine == "reference":
            assignment = self._assign_reference(workers, h, answers)
        elif self._engine == "sparse":
            assignment = self._assign_sparse(workers, h, answers)
        else:
            assignment = self._assign_vectorized(workers, h, answers)
        for worker_id in available_workers:
            assignment.setdefault(worker_id, [])
        return assignment

    # ------------------------------------------------------- vectorized engine
    def _task_parameter_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Flat ``label_probs`` and ``influence_weights`` over the task order.

        Gathered through :meth:`ModelParameters.task` so unseen tasks receive
        the footnote-3 priors, exactly like the reference estimator.
        """
        if self._task_arrays is None:
            num_labels, label_offsets = self._ensure_task_layout()
            function_count = len(self._parameters.function_set)
            label_probs = np.empty(int(label_offsets[-1]), dtype=float)
            influence_weights = np.empty(
                (len(self._task_ids), function_count), dtype=float
            )
            for j, task_id in enumerate(self._task_ids):
                params = self._parameters.task(
                    task_id, num_labels=int(num_labels[j])
                )
                label_probs[
                    label_offsets[j] : label_offsets[j + 1]
                ] = params.label_probs
                influence_weights[j] = params.influence_weights
            self._task_arrays = (label_probs, influence_weights)
        return self._task_arrays

    def _distance_row(self, worker_id: str) -> np.ndarray:
        """Normalised distances from one worker to every task (cached).

        A row cached before the task universe grew is extended with just the
        new tasks' distances, so the accuracy kernel's distance matrix keeps
        pace with the store without recomputing known geometry.
        """
        row = self._distance_rows.get(worker_id)
        if row is None:
            row = normalised_distance_matrix(
                [self._workers[worker_id].locations],
                self._task_locations,
                self._distance_model,
            )[0]
            self._distance_rows[worker_id] = row
        elif row.size < len(self._task_ids):
            extension = normalised_distance_matrix(
                [self._workers[worker_id].locations],
                self._task_locations[row.size :],
                self._distance_model,
            )[0]
            row = np.concatenate([row, extension])
            self._distance_rows[worker_id] = row
        return row

    def _assign_vectorized(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        # Sorted worker rows so that argmax's row-major tie-break (first row
        # wins) matches the reference heap's lexicographic (worker, task)
        # ordering on exactly tied gains, independent of the caller's order.
        worker_list = sorted(available_workers)
        num_workers = len(worker_list)
        num_tasks = len(self._task_ids)

        store, _, label_offsets = self._build_store(worker_list)
        label_probs, _ = self._task_parameter_arrays()
        distances = np.stack([self._distance_row(w) for w in worker_list])
        accuracies = accuracy_kernel.answer_accuracy_matrix(store, distances)
        state = accuracy_kernel.baseline_state(
            label_probs,
            label_offsets,
            [answers.answer_count_of_task(tid) for tid in self._task_ids],
        )
        gains = accuracy_kernel.marginal_gains(state, accuracies)

        eligible = np.ones((num_workers, num_tasks), dtype=bool)
        for i, worker_id in enumerate(worker_list):
            for done_task in answers.tasks_of_worker(worker_id):
                column = self._task_column.get(done_task)
                if column is not None:
                    eligible[i, column] = False
        capacity = np.full(num_workers, h, dtype=np.intp)
        total_to_assign = int(np.minimum(eligible.sum(axis=1), h).sum())

        scores = np.where(eligible, gains, -np.inf)
        assignment: dict[str, list[str]] = {w: [] for w in worker_list}
        for _ in range(total_to_assign):
            flat = int(np.argmax(scores))
            i, j = divmod(flat, num_tasks)
            if not np.isfinite(scores[i, j]):
                break  # defensive: no eligible pair left
            assignment[worker_list[i]].append(self._task_ids[j])
            eligible[i, j] = False
            capacity[i] -= 1
            if capacity[i] == 0:
                scores[i, :] = -np.inf
            # Commit the pick and re-score only the chosen task's column.
            accuracy_kernel.add_worker(state, j, float(accuracies[i, j]))
            column_gains = accuracy_kernel.marginal_gains_for_task(
                state, j, accuracies[:, j]
            )
            scores[:, j] = np.where(
                eligible[:, j] & (capacity > 0), column_gains, -np.inf
            )
        return assignment

    # ----------------------------------------------------------- sparse engine
    def _ensure_candidate_index(self) -> CandidateIndex:
        """The lazily-built candidate structure; columns follow _task_ids."""
        if self._candidate_index is None:
            assert self._candidate_radius is not None
            self._candidate_index = CandidateIndex(
                [self._tasks[tid] for tid in self._task_ids],
                self._distance_model,
                self._candidate_radius,
                metrics=self._metrics,
            )
        return self._candidate_index

    def _build_store(
        self, worker_list: Sequence[str]
    ) -> tuple[ArrayParameterStore, np.ndarray, np.ndarray]:
        """ArrayParameterStore plus the task layout over sorted workers."""
        function_count = len(self._parameters.function_set)
        num_labels, label_offsets = self._ensure_task_layout()
        label_probs, influence_weights = self._task_parameter_arrays()
        p_qualified = np.empty(len(worker_list), dtype=float)
        distance_weights = np.empty((len(worker_list), function_count), dtype=float)
        for i, worker_id in enumerate(worker_list):
            worker = self._parameters.worker(worker_id)
            p_qualified[i] = worker.p_qualified
            distance_weights[i] = worker.distance_weights
        store = ArrayParameterStore(
            function_set=self._parameters.function_set,
            alpha=self._parameters.alpha,
            worker_ids=tuple(worker_list),
            task_ids=tuple(self._task_ids),
            label_offsets=label_offsets,
            p_qualified=p_qualified,
            distance_weights=distance_weights,
            influence_weights=influence_weights,
            label_probs=label_probs,
        )
        return store, num_labels, label_offsets

    def _assign_sparse(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        """Algorithm 1 over candidate pairs only (plus a far-field heap).

        Candidate pairs carry exact Equation 9 accuracies computed through
        the same kernels as the dense path; every out-of-radius pair shares
        the closed-form far-field accuracy, whose marginal gain is therefore
        a per-task scalar.  The greedy loop keeps (a) the best candidate per
        worker row (first-argmax over the row's CSR segment, replicating the
        dense row-major tie-break) and (b) a lazy max-heap over far-field
        task gains that is consulted only when it could beat the best
        candidate — exact ties go to the candidate.  A pick re-scores one
        CSR column (O(nnz in column)) and one far-gain slot (O(1)).
        """
        worker_list = sorted(available_workers)
        num_workers = len(worker_list)
        num_tasks = len(self._task_ids)

        store, _, label_offsets = self._build_store(worker_list)
        label_probs, _ = self._task_parameter_arrays()
        candidate_index = self._ensure_candidate_index()
        indptr, indices, data = candidate_index.rows_for(
            [self._workers[w] for w in worker_list]
        )
        nnz = int(indptr[-1])
        accuracies = accuracy_kernel.answer_accuracy_csr(store, indptr, indices, data)
        state = accuracy_kernel.baseline_state(
            label_probs,
            label_offsets,
            [answers.answer_count_of_task(tid) for tid in self._task_ids],
        )
        scores = accuracy_kernel.marginal_gains_csr(state, indices, accuracies)
        rows = np.repeat(np.arange(num_workers, dtype=np.intp), np.diff(indptr))

        # Eligibility: pairs already answered by the worker leave the score
        # space for good (-inf marks a dead slot; real gains are finite).
        answered_cols: list[np.ndarray] = []
        total_to_assign = 0
        for i, worker_id in enumerate(worker_list):
            done = np.asarray(
                sorted(
                    column
                    for task_id in answers.tasks_of_worker(worker_id)
                    if (column := self._task_column.get(task_id)) is not None
                ),
                dtype=np.intp,
            )
            answered_cols.append(done)
            total_to_assign += min(h, num_tasks - done.size)
            row_cols = indices[indptr[i] : indptr[i + 1]]
            if done.size and row_cols.size:
                pos = np.searchsorted(row_cols, done)
                inside = pos < row_cols.size
                hit = inside.copy()
                hit[inside] = row_cols[pos[inside]] == done[inside]
                scores[int(indptr[i]) + pos[hit]] = -np.inf

        capacity = np.full(num_workers, h, dtype=np.intp)
        far_assigned: list[set[int]] = [set() for _ in range(num_workers)]

        # Best candidate per worker row: first-argmax within the ascending-
        # column segment, so (row argmax, within-row argmax) reproduces the
        # dense engine's row-major flat argmax on exact ties.
        row_best = np.full(num_workers, -np.inf)
        row_arg = np.zeros(num_workers, dtype=np.intp)

        def refresh_row(i: int) -> None:
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            segment = scores[lo:hi]
            if segment.size and capacity[i] > 0:
                k = int(np.argmax(segment))
                row_best[i] = segment[k]
                row_arg[i] = lo + k
            else:
                row_best[i] = -np.inf

        for i in range(num_workers):
            refresh_row(i)

        # Column view of the CSR structure for the per-pick re-score.
        order_by_col = np.argsort(indices, kind="stable")
        sorted_cols = indices[order_by_col]

        # Far side: per-task gains under the shared far-field accuracy, in a
        # lazy max-heap.  Entries are validated by value on pop; a task with
        # no far-eligible worker left is dropped for good (eligibility only
        # ever shrinks).  With full coverage no far pair exists at all.
        far_accuracy = accuracy_kernel.far_field_accuracy(store)
        far_gains = accuracy_kernel.far_field_gains(state, far_accuracy)
        full_coverage = nnz == num_workers * num_tasks
        far_heap: list[tuple[float, int]] = (
            []
            if full_coverage
            else [(-float(far_gains[j]), j) for j in range(num_tasks)]
        )
        heapq.heapify(far_heap)

        def far_worker_for(j: int) -> int | None:
            """Smallest-index worker that can still take task ``j`` as far."""
            for i in range(num_workers):
                if capacity[i] <= 0 or j in far_assigned[i]:
                    continue
                done = answered_cols[i]
                pos = np.searchsorted(done, j)
                if pos < done.size and done[pos] == j:
                    continue
                row_cols = indices[indptr[i] : indptr[i + 1]]
                pos = np.searchsorted(row_cols, j)
                if pos < row_cols.size and row_cols[pos] == j:
                    continue  # a candidate pair, scored on the sparse side
                return i
            return None

        def best_far_pick(candidate_gain: float) -> tuple[int, int] | None:
            while far_heap:
                neg_gain, j = far_heap[0]
                if -neg_gain <= candidate_gain:
                    return None  # ties go to the candidate side
                if -neg_gain != far_gains[j]:
                    heapq.heapreplace(far_heap, (-float(far_gains[j]), j))
                    continue
                far_i = far_worker_for(j)
                if far_i is None:
                    heapq.heappop(far_heap)
                    continue
                return far_i, j
            return None

        def rescore_column(j: int) -> np.ndarray:
            """Recompute the CSR column of ``j``; returns the affected rows."""
            lo = int(np.searchsorted(sorted_cols, j, side="left"))
            hi = int(np.searchsorted(sorted_cols, j, side="right"))
            span = order_by_col[lo:hi]
            if span.size:
                column_gains = accuracy_kernel.marginal_gains_for_task(
                    state, j, accuracies[span]
                )
                dead = ~np.isfinite(scores[span])
                scores[span] = np.where(dead, -np.inf, column_gains)
            far_gains[j] = accuracy_kernel.far_field_gains(state, far_accuracy)[j]
            if not full_coverage:
                heapq.heappush(far_heap, (-float(far_gains[j]), j))
            return rows[span]

        assignment: dict[str, list[str]] = {w: [] for w in worker_list}
        for _ in range(total_to_assign):
            best_i = int(np.argmax(row_best))
            candidate_gain = float(row_best[best_i])
            far_pick = best_far_pick(candidate_gain)
            if far_pick is not None:
                i, j = far_pick
                pick_accuracy = far_accuracy
                far_assigned[i].add(j)
            elif np.isfinite(candidate_gain):
                i = best_i
                pick_pos = int(row_arg[i])
                j = int(indices[pick_pos])
                pick_accuracy = float(accuracies[pick_pos])
                scores[pick_pos] = -np.inf
            else:
                break  # defensive: no assignable pair left
            assignment[worker_list[i]].append(self._task_ids[j])
            capacity[i] -= 1
            if capacity[i] == 0:
                scores[int(indptr[i]) : int(indptr[i + 1])] = -np.inf
            accuracy_kernel.add_worker(state, j, pick_accuracy)
            affected = rescore_column(j)
            refresh_row(i)
            for other in np.unique(affected).tolist():
                if other != i:
                    refresh_row(other)
        return assignment

    # -------------------------------------------------------- reference engine
    def _assign_reference(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        """The scalar Algorithm 1: per-label recursion plus a lazy max-heap."""
        estimator = AccuracyEstimator(
            tasks=self._tasks,
            workers=self._workers,
            distance_model=self._distance_model,
            parameters=self._parameters,
            answers=answers,
        )

        assignment: dict[str, list[str]] = {w: [] for w in available_workers}

        # Per-task baseline accuracy pairs (Equation 15) and the evolving state
        # reflecting the workers tentatively assigned this round (Ŵ(t)).
        baselines: dict[str, list[LabelAccuracy]] = {}
        current_states: dict[str, list[LabelAccuracy]] = {}

        # Cache of estimated answer accuracies P(z = r_w) per (worker, task).
        answer_accuracy: dict[tuple[str, str], float] = {}

        def states_for(task_id: str) -> list[LabelAccuracy]:
            if task_id not in baselines:
                base = estimator.current_label_accuracies(task_id)
                baselines[task_id] = base
                current_states[task_id] = list(base)
            return current_states[task_id]

        def improvement_for(
            worker_id: str, task_id: str
        ) -> tuple[float, list[LabelAccuracy]]:
            key = (worker_id, task_id)
            if key not in answer_accuracy:
                answer_accuracy[key] = estimator.answer_accuracy(worker_id, task_id)
            states = states_for(task_id)
            new_states = [state.add_worker(answer_accuracy[key]) for state in states]
            gain = sum(
                new.expected_improvement_over(base)
                for new, base in zip(new_states, baselines[task_id])
            )
            # Subtract the gain already banked by previously selected workers so
            # the heap ranks *marginal* improvements, as line 19 of Algorithm 1.
            already = sum(
                state.expected_improvement_over(base)
                for state, base in zip(states, baselines[task_id])
            )
            return gain - already, new_states

        # Candidate tasks per worker (tasks not yet answered by that worker).
        candidates: dict[str, set[str]] = {
            worker_id: set(self._candidate_tasks(worker_id, answers))
            for worker_id in available_workers
        }

        # Max-heap of (-marginal_gain, version, worker, task).  Whenever a task
        # receives a new tentative worker its version bumps, the task is
        # eagerly re-scored for every remaining worker (Algorithm 1's
        # incremental re-score), and entries carrying an old version are
        # discarded on pop.  The re-score must be eager: a pick can *increase*
        # other workers' marginal gains on the same task (a negative gain
        # shrinks in magnitude as ``m_t`` grows), so a lazy heap would commit an
        # in-between pair and miss the true greedy maximum.
        task_version: dict[str, int] = {}
        heap: list[tuple[float, int, str, str]] = []

        def push(worker_id: str, task_id: str) -> None:
            gain, _ = improvement_for(worker_id, task_id)
            version = task_version.get(task_id, 0)
            heapq.heappush(heap, (-gain, version, worker_id, task_id))

        for worker_id in available_workers:
            for task_id in candidates[worker_id]:
                push(worker_id, task_id)

        remaining_capacity = {worker_id: h for worker_id in available_workers}
        total_to_assign = sum(
            min(h, len(candidates[worker_id])) for worker_id in available_workers
        )
        assigned_total = 0

        while assigned_total < total_to_assign and heap:
            neg_gain, version, worker_id, task_id = heapq.heappop(heap)
            if remaining_capacity[worker_id] <= 0:
                continue
            if task_id not in candidates[worker_id]:
                continue
            if version != task_version.get(task_id, 0):
                continue  # superseded by the eager re-score below

            # Commit the pick.
            _, new_states = improvement_for(worker_id, task_id)
            current_states[task_id] = new_states
            task_version[task_id] = task_version.get(task_id, 0) + 1

            assignment[worker_id].append(task_id)
            candidates[worker_id].discard(task_id)
            remaining_capacity[worker_id] -= 1
            assigned_total += 1

            # Re-score the chosen task for every worker that can still take it.
            for other_id in available_workers:
                if remaining_capacity[other_id] > 0 and task_id in candidates[other_id]:
                    push(other_id, task_id)

        return assignment
