"""Uncertainty-first assignment baseline (an extension beyond the paper).

The paper's related work discusses entropy-style task selection (Liu et al.,
CDAS): give arriving workers the tasks whose current inference is most
uncertain, regardless of who the worker is.  It is a natural middle ground
between Random (ignores everything) and AccOpt (models the worker's expected
contribution), and the ablation benchmarks use it to quantify how much of
AccOpt's gain comes from modelling *workers* rather than just prioritising
uncertain *tasks*.

Uncertainty of a task is the summed Bernoulli entropy of its label
probabilities under the latest inference parameters; unanswered tasks have
maximal entropy and are therefore explored first.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.assignment import TaskAssigner
from repro.core.params import ModelParameters
from repro.data.models import AnswerSet, Task, Worker


def bernoulli_entropy(p: float) -> float:
    """Entropy (nats) of a Bernoulli(p) variable; 0 at p in {0, 1}, max at 0.5."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log(p) + (1.0 - p) * math.log(1.0 - p))


class UncertaintyFirstAssigner(TaskAssigner):
    """Assign each worker the tasks with the most uncertain current inference."""

    def __init__(
        self,
        tasks: list[Task],
        workers: list[Worker],
        parameters: ModelParameters | None = None,
    ) -> None:
        super().__init__(tasks, workers)
        self._parameters = parameters or ModelParameters()

    @property
    def parameters(self) -> ModelParameters:
        return self._parameters

    def update_parameters(self, parameters: ModelParameters) -> None:
        self._parameters = parameters

    def task_uncertainty(self, task_id: str) -> float:
        """Summed label entropy of ``task_id`` under the current parameters."""
        task = self._tasks[task_id]
        params = self._parameters.task(task_id, num_labels=task.num_labels)
        return float(sum(bernoulli_entropy(float(p)) for p in params.label_probs))

    def assign(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        self._validate_request(available_workers, h)
        # Uncertainty is worker-independent, so rank tasks once per call and
        # hand every worker the most uncertain tasks they have not answered.
        # Within a round, spread the load: each pick bumps a task's assignment
        # count so two workers in the same batch don't pile onto one task when
        # equally uncertain alternatives exist.
        uncertainty = {task_id: self.task_uncertainty(task_id) for task_id in self._tasks}
        round_load: dict[str, int] = {task_id: 0 for task_id in self._tasks}

        assignment: dict[str, list[str]] = {}
        for worker_id in available_workers:
            candidates = self._candidate_tasks(worker_id, answers)
            ranked = sorted(
                candidates,
                key=lambda task_id: (
                    round_load[task_id],
                    -uncertainty[task_id],
                    task_id,
                ),
            )
            chosen = ranked[: min(h, len(ranked))]
            for task_id in chosen:
                round_load[task_id] += 1
            assignment[worker_id] = chosen
        return assignment
