"""The crowdsourcing platform simulator (HIT lifecycle + answer collection).

:class:`CrowdPlatform` stands in for the ChinaCrowds deployment.  It owns:

* the task set (a :class:`~repro.data.models.Dataset`),
* the worker pool with latent profiles,
* the budget,
* the growing answer set.

Two interaction styles are supported, matching the paper's two deployments:

* **Batch collection** (Deployment 1): :meth:`collect_batch_answers` asks a
  fixed number of randomly chosen workers to answer every task — this is how
  the paper gathered the 5-answers-per-task corpus used to compare the
  inference models (Figures 6–10).
* **Online assignment** (Deployment 2): the experiment driver repeatedly asks
  the platform for the next batch of arriving workers
  (:meth:`next_worker_batch`), lets an assigner pick ``h`` tasks per worker and
  posts the assignment back via :meth:`execute_assignment`, which simulates the
  answers and charges the budget.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.arrival import WorkerArrivalProcess
from repro.crowd.budget import Budget
from repro.crowd.worker_pool import WorkerPool
from repro.data.models import Answer, AnswerSet, Assignment, Dataset, Task, Worker
from repro.spatial.distance import DistanceModel
from repro.utils.rng import SeedLike, default_rng, derive_seed


@dataclass
class PlatformStats:
    """Aggregate counters exposed for the evaluation tables."""

    rounds: int = 0
    assignments: int = 0
    answers: int = 0
    assignments_per_task: dict[str, int] = field(default_factory=dict)
    assignments_per_worker: dict[str, int] = field(default_factory=dict)


class CrowdPlatform:
    """Simulated crowdsourcing platform over one dataset and one worker pool."""

    def __init__(
        self,
        dataset: Dataset,
        worker_pool: WorkerPool,
        budget: Budget,
        distance_model: DistanceModel | None = None,
        answer_simulator: AnswerSimulator | None = None,
        arrival_process: WorkerArrivalProcess | None = None,
        seed: SeedLike = None,
    ) -> None:
        self._dataset = dataset
        self._tasks = dataset.task_index
        self._pool = worker_pool
        self._budget = budget
        if distance_model is None:
            if dataset.max_distance is None:
                distance_model = DistanceModel.from_pois(
                    dataset.poi_locations,
                    metric="haversine" if dataset.metric == "haversine" else "euclidean",
                )
            else:
                distance_model = DistanceModel(
                    max_distance=dataset.max_distance,
                    metric="haversine" if dataset.metric == "haversine" else "euclidean",
                )
        self._distance_model = distance_model
        self._simulator = answer_simulator or AnswerSimulator(distance_model)
        self._arrival = arrival_process
        self._seed = seed if isinstance(seed, int) else None
        self._rng = default_rng(seed)
        self._answers = AnswerSet()
        self._assignments: list[Assignment] = []
        self._stats = PlatformStats()

    # ------------------------------------------------------------------ state
    @property
    def dataset(self) -> Dataset:
        return self._dataset

    @property
    def worker_pool(self) -> WorkerPool:
        return self._pool

    @property
    def workers(self) -> list[Worker]:
        return self._pool.workers

    @property
    def budget(self) -> Budget:
        return self._budget

    @property
    def distance_model(self) -> DistanceModel:
        return self._distance_model

    @property
    def answer_simulator(self) -> AnswerSimulator:
        return self._simulator

    @property
    def arrival_process(self) -> WorkerArrivalProcess | None:
        """The configured arrival process (``None`` for batch-only platforms).

        Exposed so the online serving service can wrap it in a
        :class:`~repro.crowd.arrival.TimedArrivalSchedule` and drive arrivals
        with simulated timestamps.
        """
        return self._arrival

    @property
    def answers(self) -> AnswerSet:
        return self._answers

    @property
    def assignments(self) -> list[Assignment]:
        return list(self._assignments)

    @property
    def stats(self) -> PlatformStats:
        return self._stats

    def task(self, task_id: str) -> Task:
        return self._tasks[task_id]

    def tasks_not_done_by(self, worker_id: str) -> list[Task]:
        """Tasks that ``worker_id`` has not yet answered (candidates for assignment)."""
        done = self._answers.tasks_of_worker(worker_id)
        return [task for task in self._dataset.tasks if task.task_id not in done]

    # ------------------------------------------------------ deployment 1 style
    def collect_batch_answers(
        self, answers_per_task: int = 5, seed: SeedLike = None
    ) -> AnswerSet:
        """Ask ``answers_per_task`` random workers to answer every task.

        Reproduces the paper's Deployment 1 corpus (each task answered by five
        workers).  Respects and charges the budget; raises
        :class:`~repro.crowd.budget.BudgetExhaustedError` if it cannot afford
        the full collection.
        """
        rng = default_rng(seed if seed is not None else self._rng)
        worker_ids = self._pool.worker_ids
        if answers_per_task > len(worker_ids):
            raise ValueError(
                f"answers_per_task ({answers_per_task}) exceeds pool size "
                f"({len(worker_ids)})"
            )
        needed = answers_per_task * len(self._dataset.tasks)
        self._budget.charge(needed)
        for task in self._dataset.tasks:
            chosen = rng.choice(len(worker_ids), size=answers_per_task, replace=False)
            for index in sorted(chosen):
                worker_id = worker_ids[index]
                self._record_answer(worker_id, task, rng)
        return self._answers

    # ------------------------------------------------------ deployment 2 style
    def next_worker_batch(self, round_index: int | None = None) -> list[str]:
        """Return the worker ids arriving in the next round (online setting)."""
        if self._arrival is None:
            raise RuntimeError(
                "no arrival process configured; pass arrival_process= to CrowdPlatform"
            )
        index = self._stats.rounds if round_index is None else round_index
        return self._arrival.next_batch(index)

    def execute_assignment(
        self,
        assignment: dict[str, list[str]],
        seed: SeedLike = None,
        time: float = 0.0,
    ) -> list[Answer]:
        """Execute an assignment ``{worker_id: [task_id, ...]}`` and collect answers.

        Charges the budget one unit per (worker, task) pair, simulates each
        worker's answer and appends it to the platform's answer log.  Pairs the
        worker has already answered are rejected to mirror real platforms that
        refuse duplicate HIT completions.  ``time`` is the simulated clock of
        the submission — the answer simulator uses it to apply worker-quality
        drift (stationary simulators ignore it).
        """
        pairs: list[tuple[str, str]] = []
        for worker_id, task_ids in assignment.items():
            if worker_id not in self._pool:
                raise KeyError(f"unknown worker {worker_id!r}")
            for task_id in task_ids:
                if task_id not in self._tasks:
                    raise KeyError(f"unknown task {task_id!r}")
                if self._answers.get(worker_id, task_id) is not None:
                    raise ValueError(
                        f"worker {worker_id!r} has already answered task {task_id!r}"
                    )
                pairs.append((worker_id, task_id))

        self._budget.charge(len(pairs))
        rng = default_rng(seed if seed is not None else self._rng)
        collected: list[Answer] = []
        for worker_id, task_id in pairs:
            answer = self._record_answer(
                worker_id, self._tasks[task_id], rng, time=time
            )
            collected.append(answer)
            self._assignments.append(
                Assignment(
                    worker_id=worker_id,
                    task_id=task_id,
                    round_index=self._stats.rounds,
                )
            )
        self._stats.rounds += 1
        self._stats.assignments += len(pairs)
        return collected

    # ---------------------------------------------------------------- internal
    def _record_answer(
        self, worker_id: str, task: Task, rng, time: float = 0.0
    ) -> Answer:
        profile = self._pool.profile(worker_id)
        # zlib.crc32 gives a stable per-(worker, task) salt across processes,
        # unlike hash(), which Python randomises per interpreter run.
        pair_salt = zlib.crc32(f"{worker_id}|{task.task_id}".encode("utf-8"))
        answer_seed = derive_seed(self._seed, pair_salt)
        answer = self._simulator.sample_answer(
            profile,
            task,
            seed=answer_seed if answer_seed is not None else rng,
            time=time,
        )
        self._answers.add(answer)
        self._stats.answers += 1
        self._stats.assignments_per_task[task.task_id] = (
            self._stats.assignments_per_task.get(task.task_id, 0) + 1
        )
        self._stats.assignments_per_worker[worker_id] = (
            self._stats.assignments_per_worker.get(worker_id, 0) + 1
        )
        return answer

    def reset(self) -> None:
        """Clear answers, assignments, stats and the budget (new campaign)."""
        self._answers = AnswerSet()
        self._assignments.clear()
        self._stats = PlatformStats()
        self._budget.reset()
        if self._arrival is not None:
            self._arrival.reset()
