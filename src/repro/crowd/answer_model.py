"""Generative answer model for the simulated crowd.

The simulator answers a task label-by-label.  For each label the probability of
the worker agreeing with the ground truth is

``p_correct = i · q(d) + (1 - i) · 0.5``

where ``i`` is the worker's latent inherent quality, ``d`` is the normalised
worker-to-POI distance and ``q(d)`` combines the worker's own bell-shaped
distance curve with the POI's influence curve — exactly the structure the
paper's inference model assumes (Equation 8), but parameterised by the latent
ground-truth profile rather than the estimated one.  POI influence is derived
from the review count: popular POIs get a flat (small-λ) curve, obscure POIs a
steep (large-λ) one, reproducing the behaviour measured in the paper's
Figure 8.

An optional ``noise`` term mixes in uniform answering so the inference model is
not being evaluated on data drawn *exactly* from its own parametric family.

Beyond the honest model, the simulator speaks the hostile-stream dialect: a
profile's :attr:`~repro.crowd.worker_pool.WorkerProfile.archetype` switches
answer generation to deterministic wrong answers (``always-wrong``), uniform
coin flips (``spammer``) or ring-coordinated wrong labels (``colluder`` —
every member of a ring submits the *same* flipped response vector for a task,
derived from a ring/task hash so it is reproducible and worker-order
independent).  :class:`QualityDrift` makes honest workers non-stationary by
decaying (or cycling) their inherent quality over simulated time.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.distance_functions import BellShapedFunction
from repro.crowd.worker_pool import WorkerProfile
from repro.data.models import Answer, Task
from repro.spatial.distance import DistanceModel
from repro.utils.rng import SeedLike, default_rng


class AnswerModelError(ValueError):
    """Invalid generative-model input (NaN/negative counts, non-finite rates).

    Raised at the boundary instead of letting NaN propagate silently into
    answer accuracies and, from there, into the inference posteriors.
    """


def influence_lambda_for_reviews(review_count: int) -> float:
    """Map a Dianping-style review count to a POI influence decay rate.

    Mirrors the four popularity classes of the paper's Figure 8: the more
    reviews a POI has, the flatter (smaller λ) its influence curve, i.e. even
    distant workers tend to know it.

    Raises :class:`AnswerModelError` for negative or non-finite counts — a
    NaN here would otherwise flow straight through the bell curves into every
    simulated accuracy.
    """
    count = float(review_count)
    if not math.isfinite(count) or count < 0:
        raise AnswerModelError(
            f"review_count must be a finite non-negative number, got "
            f"{review_count!r}"
        )
    if count > 2500:
        return 0.1
    if count > 1000:
        return 2.0
    if count > 500:
        return 10.0
    return 100.0


@dataclass(frozen=True)
class QualityDrift:
    """Non-stationary worker quality over simulated time.

    ``linear`` mode decays an honest worker's inherent quality by ``rate``
    per simulated second down to ``floor`` (fatigue); ``cyclic`` mode
    oscillates it with period ``period`` (quality dips by up to ``rate``
    mid-cycle and recovers, fatigue/recovery); ``practice`` mode ramps it
    *up* from ``floor`` by ``rate`` per second until the worker's inherent
    quality is reached — the crowdsourcing learning curve, where a novice's
    early answers are noisy and stale evidence misleads any model that
    never forgets.  ``rate=0`` is stationary.
    """

    rate: float = 0.0
    floor: float = 0.05
    mode: str = "linear"
    period: float = 100.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.rate) or self.rate < 0:
            raise AnswerModelError(
                f"drift rate must be finite and non-negative, got {self.rate!r}"
            )
        if not 0.0 <= self.floor <= 1.0:
            raise AnswerModelError(f"floor must be in [0, 1], got {self.floor!r}")
        if self.mode not in ("linear", "cyclic", "practice"):
            raise AnswerModelError(
                f"mode must be 'linear', 'cyclic' or 'practice', got {self.mode!r}"
            )
        if not math.isfinite(self.period) or self.period <= 0:
            raise AnswerModelError(
                f"period must be finite and positive, got {self.period!r}"
            )

    def effective_quality(self, base: float, time: float) -> float:
        """The drifted inherent quality of a worker at simulated ``time``."""
        if not math.isfinite(time):
            raise AnswerModelError(f"time must be finite, got {time!r}")
        if self.rate == 0.0:
            return base
        if self.mode == "linear":
            drifted = base - self.rate * max(0.0, time)
        elif self.mode == "practice":
            drifted = min(base, self.floor + self.rate * max(0.0, time))
        else:
            dip = 0.5 * (1.0 - math.cos(2.0 * math.pi * time / self.period))
            drifted = base - self.rate * dip
        return float(min(1.0, max(self.floor, drifted)))


@dataclass
class AnswerSimulator:
    """Samples worker answers from the latent generative process.

    Parameters
    ----------
    distance_model:
        Shared distance normaliser (the same one handed to the inference model).
    alpha:
        Weight of the worker's own distance curve versus the POI influence
        curve, as in the paper's Equation 8.
    noise:
        Probability of replacing a label's sampled answer by a uniform coin
        flip.  ``0.0`` reproduces the model family exactly; small positive
        values stress-test robustness.
    drift:
        Optional :class:`QualityDrift` applied to honest workers' inherent
        quality as a function of the simulated ``time`` passed to
        :meth:`sample_answer` (``None`` keeps workers stationary).
    """

    distance_model: DistanceModel
    alpha: float = 0.5
    noise: float = 0.0
    drift: QualityDrift | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {self.noise}")

    def correct_probability(
        self, profile: WorkerProfile, task: Task, time: float = 0.0
    ) -> float:
        """Probability that ``profile`` answers any single label of ``task`` correctly."""
        distance = self.distance_model.worker_task_distance(
            profile.locations, task.location
        )
        worker_curve = BellShapedFunction(profile.distance_lambda)(distance)
        poi_curve = BellShapedFunction(
            influence_lambda_for_reviews(task.poi.review_count)
        )(distance)
        qualified_accuracy = self.alpha * worker_curve + (1.0 - self.alpha) * poi_curve
        quality = profile.inherent_quality
        if self.drift is not None:
            quality = self.drift.effective_quality(quality, time)
        p = quality * qualified_accuracy + (1.0 - quality) * 0.5
        if self.noise > 0.0:
            p = (1.0 - self.noise) * p + self.noise * 0.5
        return float(min(1.0, max(0.0, p)))

    def sample_answer(
        self,
        profile: WorkerProfile,
        task: Task,
        seed: SeedLike = None,
        time: float = 0.0,
    ) -> Answer:
        """Sample a full answer vector for ``task`` from ``profile``.

        Honest profiles draw from the latent quality model (drifted to
        ``time`` when a drift is configured); adversarial archetypes bypass
        it entirely — see :func:`collusion_flip_mask` for how ring members
        coordinate without sharing any runtime state.
        """
        if profile.archetype == "always-wrong":
            responses = tuple(1 - value for value in task.truth)
        elif profile.archetype == "spammer":
            rng = default_rng(seed)
            responses = tuple(int(rng.integers(0, 2)) for _ in task.truth)
        elif profile.archetype == "colluder":
            mask = collusion_flip_mask(
                int(profile.collusion_ring or 0), task.task_id, len(task.truth)
            )
            responses = tuple(
                (1 - value) if flip else value
                for value, flip in zip(task.truth, mask)
            )
        else:
            rng = default_rng(seed)
            p_correct = self.correct_probability(profile, task, time=time)
            picked = []
            for truth_value in task.truth:
                if rng.random() < p_correct:
                    picked.append(truth_value)
                else:
                    picked.append(1 - truth_value)
            responses = tuple(picked)
        return Answer(
            worker_id=profile.worker_id,
            task_id=task.task_id,
            responses=responses,
        )

    def expected_answer_accuracy(
        self, profile: WorkerProfile, task: Task, time: float = 0.0
    ) -> float:
        """Expected per-label accuracy (useful for analysis and tests)."""
        if profile.archetype == "always-wrong":
            return 0.0
        if profile.archetype == "spammer":
            return 0.5
        if profile.archetype == "colluder":
            mask = collusion_flip_mask(
                int(profile.collusion_ring or 0), task.task_id, len(task.truth)
            )
            return 1.0 - sum(mask) / max(1, len(mask))
        return self.correct_probability(profile, task, time=time)


def collusion_flip_mask(ring: int, task_id: str, num_labels: int) -> tuple[bool, ...]:
    """The labels a colluding ring flips on ``task_id`` (at least one).

    Derived purely from a ``crc32`` hash of the ring id and task id, so every
    ring member computes the identical wrong answer with no shared state, in
    any submission order, across process restarts.
    """
    if num_labels <= 0:
        raise AnswerModelError(f"num_labels must be positive, got {num_labels}")
    salt = zlib.crc32(f"ring-{ring}|{task_id}".encode("utf-8"))
    rng = np.random.default_rng(salt)
    mask = [bool(rng.integers(0, 2)) for _ in range(num_labels)]
    if not any(mask):
        mask[salt % num_labels] = True
    return tuple(mask)
