"""Generative answer model for the simulated crowd.

The simulator answers a task label-by-label.  For each label the probability of
the worker agreeing with the ground truth is

``p_correct = i · q(d) + (1 - i) · 0.5``

where ``i`` is the worker's latent inherent quality, ``d`` is the normalised
worker-to-POI distance and ``q(d)`` combines the worker's own bell-shaped
distance curve with the POI's influence curve — exactly the structure the
paper's inference model assumes (Equation 8), but parameterised by the latent
ground-truth profile rather than the estimated one.  POI influence is derived
from the review count: popular POIs get a flat (small-λ) curve, obscure POIs a
steep (large-λ) one, reproducing the behaviour measured in the paper's
Figure 8.

An optional ``noise`` term mixes in uniform answering so the inference model is
not being evaluated on data drawn *exactly* from its own parametric family.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance_functions import BellShapedFunction
from repro.crowd.worker_pool import WorkerProfile
from repro.data.models import Answer, Task
from repro.spatial.distance import DistanceModel
from repro.utils.rng import SeedLike, default_rng


def influence_lambda_for_reviews(review_count: int) -> float:
    """Map a Dianping-style review count to a POI influence decay rate.

    Mirrors the four popularity classes of the paper's Figure 8: the more
    reviews a POI has, the flatter (smaller λ) its influence curve, i.e. even
    distant workers tend to know it.
    """
    if review_count > 2500:
        return 0.1
    if review_count > 1000:
        return 2.0
    if review_count > 500:
        return 10.0
    return 100.0


@dataclass
class AnswerSimulator:
    """Samples worker answers from the latent generative process.

    Parameters
    ----------
    distance_model:
        Shared distance normaliser (the same one handed to the inference model).
    alpha:
        Weight of the worker's own distance curve versus the POI influence
        curve, as in the paper's Equation 8.
    noise:
        Probability of replacing a label's sampled answer by a uniform coin
        flip.  ``0.0`` reproduces the model family exactly; small positive
        values stress-test robustness.
    """

    distance_model: DistanceModel
    alpha: float = 0.5
    noise: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if not 0.0 <= self.noise <= 1.0:
            raise ValueError(f"noise must be in [0, 1], got {self.noise}")

    def correct_probability(self, profile: WorkerProfile, task: Task) -> float:
        """Probability that ``profile`` answers any single label of ``task`` correctly."""
        distance = self.distance_model.worker_task_distance(
            profile.locations, task.location
        )
        worker_curve = BellShapedFunction(profile.distance_lambda)(distance)
        poi_curve = BellShapedFunction(
            influence_lambda_for_reviews(task.poi.review_count)
        )(distance)
        qualified_accuracy = self.alpha * worker_curve + (1.0 - self.alpha) * poi_curve
        p = profile.inherent_quality * qualified_accuracy + (
            1.0 - profile.inherent_quality
        ) * 0.5
        if self.noise > 0.0:
            p = (1.0 - self.noise) * p + self.noise * 0.5
        return float(min(1.0, max(0.0, p)))

    def sample_answer(
        self, profile: WorkerProfile, task: Task, seed: SeedLike = None
    ) -> Answer:
        """Sample a full answer vector for ``task`` from ``profile``."""
        rng = default_rng(seed)
        p_correct = self.correct_probability(profile, task)
        responses = []
        for truth_value in task.truth:
            if rng.random() < p_correct:
                responses.append(truth_value)
            else:
                responses.append(1 - truth_value)
        return Answer(
            worker_id=profile.worker_id,
            task_id=task.task_id,
            responses=tuple(responses),
        )

    def expected_answer_accuracy(self, profile: WorkerProfile, task: Task) -> float:
        """Expected per-label accuracy (useful for analysis and tests)."""
        return self.correct_probability(profile, task)
