"""Worker arrival processes.

The paper's online setting has workers "dynamically coming" to the platform and
requesting tasks in small batches; the assigner sees only the currently
available set ``W``.  These classes model who shows up in each round:

* :class:`UniformRandomArrival` — each round a random subset of the pool
  arrives (the default; approximates an open crowd market);
* :class:`RoundRobinArrival` — workers arrive in a fixed rotation (useful for
  deterministic tests and for stressing the "every worker participates"
  scenario the paper's Deployment 1 approximates).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.crowd.worker_pool import WorkerPool
from repro.utils.rng import SeedLike, default_rng


class WorkerArrivalProcess(ABC):
    """Produces the batch of available workers for each assignment round."""

    @abstractmethod
    def next_batch(self, round_index: int) -> list[str]:
        """Return the worker ids arriving in round ``round_index``."""

    @abstractmethod
    def reset(self) -> None:
        """Reset any internal state so the process can be replayed."""


class UniformRandomArrival(WorkerArrivalProcess):
    """Each round, ``batch_size`` workers are drawn uniformly without replacement."""

    def __init__(
        self, pool: WorkerPool, batch_size: int = 5, seed: SeedLike = None
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if batch_size > len(pool):
            raise ValueError(
                f"batch_size ({batch_size}) cannot exceed pool size ({len(pool)})"
            )
        self._pool = pool
        self._batch_size = batch_size
        self._seed = seed
        self._rng = default_rng(seed)

    def next_batch(self, round_index: int) -> list[str]:
        ids = self._pool.worker_ids
        chosen = self._rng.choice(len(ids), size=self._batch_size, replace=False)
        return [ids[i] for i in sorted(chosen)]

    def reset(self) -> None:
        self._rng = default_rng(self._seed)


class RoundRobinArrival(WorkerArrivalProcess):
    """Workers arrive in a fixed rotation of ``batch_size`` per round."""

    def __init__(self, pool: WorkerPool, batch_size: int = 5) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._pool = pool
        self._batch_size = batch_size

    def next_batch(self, round_index: int) -> list[str]:
        ids = self._pool.worker_ids
        start = (round_index * self._batch_size) % len(ids)
        batch = []
        for offset in range(self._batch_size):
            batch.append(ids[(start + offset) % len(ids)])
        # A batch larger than the pool would repeat workers; deduplicate while
        # preserving order so the assigner never sees the same worker twice.
        seen: set[str] = set()
        unique = []
        for worker_id in batch:
            if worker_id not in seen:
                seen.add(worker_id)
                unique.append(worker_id)
        return unique

    def reset(self) -> None:  # stateless
        return None


class PoissonArrival(WorkerArrivalProcess):
    """Batch sizes follow a Poisson distribution (at least one worker per round).

    Models the burstiness of a real platform: some rounds only one worker shows
    up, other rounds several do.  Used by the robustness examples.
    """

    def __init__(
        self, pool: WorkerPool, mean_batch_size: float = 4.0, seed: SeedLike = None
    ) -> None:
        if mean_batch_size <= 0:
            raise ValueError(
                f"mean_batch_size must be positive, got {mean_batch_size}"
            )
        self._pool = pool
        self._mean = mean_batch_size
        self._seed = seed
        self._rng = default_rng(seed)

    def next_batch(self, round_index: int) -> list[str]:
        ids = self._pool.worker_ids
        size = int(self._rng.poisson(self._mean))
        size = max(1, min(size, len(ids)))
        chosen = self._rng.choice(len(ids), size=size, replace=False)
        return [ids[i] for i in sorted(chosen)]

    def reset(self) -> None:
        self._rng = default_rng(self._seed)
