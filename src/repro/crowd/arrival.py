"""Worker arrival processes.

The paper's online setting has workers "dynamically coming" to the platform and
requesting tasks in small batches; the assigner sees only the currently
available set ``W``.  These classes model who shows up in each round:

* :class:`UniformRandomArrival` — each round a random subset of the pool
  arrives (the default; approximates an open crowd market);
* :class:`RoundRobinArrival` — workers arrive in a fixed rotation (useful for
  deterministic tests and for stressing the "every worker participates"
  scenario the paper's Deployment 1 approximates);
* :class:`ChurnArrival` — workers cycle through deterministic active/away
  sessions (phase-shifted per worker), so the available set churns over
  rounds the way a real crowd does.

:class:`TimedArrivalSchedule` decorates any of the above with simulated arrival
*timestamps* (exponential inter-batch gaps).  The online serving subsystem
(:mod:`repro.serving`) consumes these events so its ingestion layer can
micro-batch answers by simulated-time window, not just by count.  An optional
:class:`DiurnalPattern` modulates the arrival rate sinusoidally and injects
bursts, giving the serving stack a non-stationary load profile.
"""

from __future__ import annotations

import math
import zlib
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.crowd.worker_pool import WorkerPool
from repro.utils.rng import SeedLike, default_rng


class WorkerArrivalProcess(ABC):
    """Produces the batch of available workers for each assignment round."""

    @abstractmethod
    def next_batch(self, round_index: int) -> list[str]:
        """Return the worker ids arriving in round ``round_index``."""

    @abstractmethod
    def reset(self) -> None:
        """Reset any internal state so the process can be replayed."""


class UniformRandomArrival(WorkerArrivalProcess):
    """Each round, ``batch_size`` workers are drawn uniformly without replacement."""

    def __init__(
        self, pool: WorkerPool, batch_size: int = 5, seed: SeedLike = None
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if batch_size > len(pool):
            raise ValueError(
                f"batch_size ({batch_size}) cannot exceed pool size ({len(pool)})"
            )
        self._pool = pool
        self._batch_size = batch_size
        self._seed = seed
        self._rng = default_rng(seed)

    def next_batch(self, round_index: int) -> list[str]:
        ids = self._pool.worker_ids
        chosen = self._rng.choice(len(ids), size=self._batch_size, replace=False)
        return [ids[i] for i in sorted(chosen)]

    def reset(self) -> None:
        self._rng = default_rng(self._seed)


class RoundRobinArrival(WorkerArrivalProcess):
    """Workers arrive in a fixed rotation of ``batch_size`` per round."""

    def __init__(self, pool: WorkerPool, batch_size: int = 5) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self._pool = pool
        self._batch_size = batch_size

    def next_batch(self, round_index: int) -> list[str]:
        ids = self._pool.worker_ids
        start = (round_index * self._batch_size) % len(ids)
        batch = []
        for offset in range(self._batch_size):
            batch.append(ids[(start + offset) % len(ids)])
        # A batch larger than the pool would repeat workers; deduplicate while
        # preserving order so the assigner never sees the same worker twice.
        seen: set[str] = set()
        unique = []
        for worker_id in batch:
            if worker_id not in seen:
                seen.add(worker_id)
                unique.append(worker_id)
        return unique

    def reset(self) -> None:  # stateless
        return None


class PoissonArrival(WorkerArrivalProcess):
    """Batch sizes follow a Poisson distribution (at least one worker per round).

    Models the burstiness of a real platform: some rounds only one worker shows
    up, other rounds several do.  Used by the robustness examples.
    """

    def __init__(
        self, pool: WorkerPool, mean_batch_size: float = 4.0, seed: SeedLike = None
    ) -> None:
        if mean_batch_size <= 0:
            raise ValueError(
                f"mean_batch_size must be positive, got {mean_batch_size}"
            )
        self._pool = pool
        self._mean = mean_batch_size
        self._seed = seed
        self._rng = default_rng(seed)

    def next_batch(self, round_index: int) -> list[str]:
        ids = self._pool.worker_ids
        size = int(self._rng.poisson(self._mean))
        size = max(1, min(size, len(ids)))
        chosen = self._rng.choice(len(ids), size=size, replace=False)
        return [ids[i] for i in sorted(chosen)]

    def reset(self) -> None:
        self._rng = default_rng(self._seed)


class ChurnArrival(WorkerArrivalProcess):
    """Workers churn through deterministic active/away sessions.

    Each worker is active for ``active_rounds`` out of every ``cycle_rounds``
    rounds, phase-shifted by a hash of its id so sessions overlap but the
    available set keeps turning over.  Batches are drawn uniformly from the
    currently active subset; if a round's active set is empty (tiny pools),
    the full pool is used so the platform never stalls.

    Membership is a pure function of ``(worker_id, round_index)`` — replays
    see the same sessions regardless of RNG state, which keeps scenario
    replays byte-for-byte reproducible.
    """

    def __init__(
        self,
        pool: WorkerPool,
        batch_size: int = 5,
        cycle_rounds: int = 20,
        active_rounds: int = 12,
        seed: SeedLike = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        if cycle_rounds <= 0:
            raise ValueError(f"cycle_rounds must be positive, got {cycle_rounds}")
        if not 0 < active_rounds <= cycle_rounds:
            raise ValueError(
                f"active_rounds must be in (0, cycle_rounds], got "
                f"{active_rounds} of {cycle_rounds}"
            )
        self._pool = pool
        self._batch_size = batch_size
        self._cycle = cycle_rounds
        self._active = active_rounds
        self._seed = seed
        self._rng = default_rng(seed)
        self._phases = {
            worker_id: zlib.crc32(worker_id.encode("utf-8")) % cycle_rounds
            for worker_id in pool.worker_ids
        }

    def active_workers(self, round_index: int) -> list[str]:
        """The ids whose session covers ``round_index`` (deterministic)."""
        return [
            worker_id
            for worker_id in self._pool.worker_ids
            if (round_index + self._phases[worker_id]) % self._cycle < self._active
        ]

    def next_batch(self, round_index: int) -> list[str]:
        ids = self.active_workers(round_index)
        if not ids:
            ids = self._pool.worker_ids
        size = min(self._batch_size, len(ids))
        chosen = self._rng.choice(len(ids), size=size, replace=False)
        return [ids[i] for i in sorted(chosen)]

    def reset(self) -> None:
        self._rng = default_rng(self._seed)


@dataclass(frozen=True)
class DiurnalPattern:
    """Sinusoidal arrival-rate modulation with optional bursts.

    The instantaneous arrival rate is scaled by
    ``1 + amplitude * sin(2π · t / period)`` — peak traffic mid-period,
    trough at the wrap — and with probability ``burst_probability`` a batch
    arrives ``burst_factor`` times faster than the modulated rate (a spike).
    """

    period: float = 60.0
    amplitude: float = 0.5
    burst_probability: float = 0.0
    burst_factor: float = 4.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.period) or self.period <= 0:
            raise ValueError(f"period must be finite and positive, got {self.period}")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError(
                f"burst_probability must be in [0, 1], got {self.burst_probability}"
            )
        if self.burst_factor < 1.0:
            raise ValueError(f"burst_factor must be >= 1, got {self.burst_factor}")

    def rate_scale(self, now: float) -> float:
        """Arrival-rate multiplier at simulated time ``now`` (always > 0)."""
        return 1.0 + self.amplitude * math.sin(2.0 * math.pi * now / self.period)


@dataclass(frozen=True)
class ArrivalBatch:
    """One timestamped arrival: who showed up and at what simulated time."""

    round_index: int
    time: float
    worker_ids: tuple[str, ...]


class TimedArrivalSchedule:
    """A :class:`WorkerArrivalProcess` with simulated arrival timestamps.

    Batches keep the wrapped process's membership; the schedule only adds a
    monotone clock with exponential inter-batch gaps of mean
    ``mean_interarrival`` (simulated seconds).  The serving subsystem's
    ingestion layer uses these times to close micro-batches on a time window
    even when traffic is sparse.

    With a :class:`DiurnalPattern`, each exponential gap is divided by the
    pattern's rate multiplier at the current clock (denser arrivals at the
    diurnal peak) and occasionally compressed by the burst factor.  Passing
    ``pattern=None`` consumes exactly the same RNG stream as before the
    pattern existed, so existing seeded replays are unchanged.
    """

    def __init__(
        self,
        process: WorkerArrivalProcess,
        mean_interarrival: float = 1.0,
        seed: SeedLike = None,
        pattern: DiurnalPattern | None = None,
    ) -> None:
        if mean_interarrival <= 0:
            raise ValueError(
                f"mean_interarrival must be positive, got {mean_interarrival}"
            )
        self._process = process
        self._mean = mean_interarrival
        self._seed = seed
        self._pattern = pattern
        self._rng = default_rng(seed)
        self._now = 0.0
        self._round = 0

    @property
    def now(self) -> float:
        """The simulated clock: the time of the most recent batch."""
        return self._now

    def next_batch(self) -> ArrivalBatch:
        """Advance the clock and return the next timestamped batch."""
        gap = float(self._rng.exponential(self._mean))
        if self._pattern is not None:
            gap /= self._pattern.rate_scale(self._now)
            if (
                self._pattern.burst_probability > 0.0
                and self._rng.random() < self._pattern.burst_probability
            ):
                gap /= self._pattern.burst_factor
        self._now += gap
        batch = ArrivalBatch(
            round_index=self._round,
            time=self._now,
            worker_ids=tuple(self._process.next_batch(self._round)),
        )
        self._round += 1
        return batch

    def reset(self) -> None:
        self._process.reset()
        self._rng = default_rng(self._seed)
        self._now = 0.0
        self._round = 0
