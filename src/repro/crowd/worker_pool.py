"""Simulated worker pool with latent quality profiles.

Each simulated worker carries a *latent* profile that the algorithms never see:

* ``inherent_quality`` — the probability the worker behaves as a qualified
  worker rather than answering at random (the paper's ``i_w``);
* ``distance_lambda`` — the decay rate of the worker's own bell-shaped accuracy
  curve (small λ ⇒ distance barely matters, large λ ⇒ only nearby POIs are
  answered well), mirroring ``d_w``;
* declared ``locations`` — one or more points used for distance computation.

The paper's data analysis (Figures 6 and 7) shows a worker population with a
majority of reliable workers, a tail of spammers/low-quality workers, and a
spread of distance sensitivities; the default :class:`WorkerPoolSpec` encodes
that mixture.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.models import Worker
from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import GeoPoint
from repro.utils.rng import SeedLike, default_rng


#: Archetypes whose answers are generated adversarially rather than from the
#: latent quality model: deterministic wrong answers, uniform coin flips, and
#: colluding rings that agree on the same wrong label per task.
ADVERSARY_ARCHETYPES = ("always-wrong", "spammer", "colluder")

#: All recognised archetypes (honest workers follow the paper's latent model).
WORKER_ARCHETYPES = ("honest",) + ADVERSARY_ARCHETYPES


@dataclass(frozen=True)
class WorkerProfile:
    """Latent ground-truth profile of one simulated worker."""

    worker: Worker
    inherent_quality: float
    distance_lambda: float
    #: Behavioural archetype; non-honest archetypes ignore the quality model.
    archetype: str = "honest"
    #: Ring id shared by colluding workers (``None`` unless a colluder).
    collusion_ring: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.inherent_quality <= 1.0:
            raise ValueError(
                f"inherent_quality must be in [0, 1], got {self.inherent_quality}"
            )
        if self.distance_lambda < 0:
            raise ValueError(
                f"distance_lambda must be non-negative, got {self.distance_lambda}"
            )
        if self.archetype not in WORKER_ARCHETYPES:
            raise ValueError(
                f"archetype must be one of {WORKER_ARCHETYPES}, got "
                f"{self.archetype!r}"
            )
        if self.archetype == "colluder" and self.collusion_ring is None:
            raise ValueError("colluder profiles need a collusion_ring id")

    @property
    def is_adversary(self) -> bool:
        return self.archetype != "honest"

    @property
    def worker_id(self) -> str:
        return self.worker.worker_id

    @property
    def locations(self) -> tuple[GeoPoint, ...]:
        return self.worker.locations


@dataclass
class WorkerPoolSpec:
    """Parameters of the simulated worker population.

    ``reliable_fraction`` of workers are "qualified" (high inherent quality);
    the rest are spammer-like.  Distance sensitivity is drawn per worker from
    the three regimes the paper's distance-function set captures (λ ≈ 100 —
    strongly local knowledge, λ ≈ 10 — moderate, λ ≈ 0.1 — global knowledge).
    """

    num_workers: int = 60
    reliable_fraction: float = 0.75
    reliable_quality_range: tuple[float, float] = (0.80, 0.98)
    unreliable_quality_range: tuple[float, float] = (0.05, 0.40)
    lambda_choices: tuple[float, ...] = (100.0, 10.0, 0.1)
    lambda_weights: tuple[float, ...] = (0.45, 0.35, 0.20)
    locations_per_worker: tuple[int, int] = (1, 2)
    #: Fraction of the pool replaced by adversarial archetypes (0 disables —
    #: and keeps the generated pool bit-identical to the pre-adversary code).
    adversary_fraction: float = 0.0
    #: Mixture over :data:`ADVERSARY_ARCHETYPES` for the adversarial slice.
    adversary_weights: tuple[float, float, float] = (0.34, 0.33, 0.33)
    #: Colluders are grouped into rings of this size (ring members agree on
    #: the same wrong label for every task).
    collusion_ring_size: int = 3

    def __post_init__(self) -> None:
        if self.num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {self.num_workers}")
        if not 0.0 <= self.reliable_fraction <= 1.0:
            raise ValueError(
                f"reliable_fraction must be in [0, 1], got {self.reliable_fraction}"
            )
        if not 0.0 <= self.adversary_fraction <= 1.0:
            raise ValueError(
                f"adversary_fraction must be in [0, 1], got {self.adversary_fraction}"
            )
        if len(self.adversary_weights) != len(ADVERSARY_ARCHETYPES):
            raise ValueError(
                f"adversary_weights must have {len(ADVERSARY_ARCHETYPES)} "
                f"entries, got {self.adversary_weights}"
            )
        if any(w < 0 for w in self.adversary_weights) or (
            abs(sum(self.adversary_weights) - 1.0) > 1e-6
        ):
            raise ValueError("adversary_weights must be non-negative and sum to 1")
        if self.collusion_ring_size < 2:
            raise ValueError(
                f"collusion_ring_size must be >= 2, got {self.collusion_ring_size}"
            )
        if len(self.lambda_choices) != len(self.lambda_weights):
            raise ValueError("lambda_choices and lambda_weights must align")
        if abs(sum(self.lambda_weights) - 1.0) > 1e-6:
            raise ValueError("lambda_weights must sum to 1")
        low, high = self.locations_per_worker
        if low < 1 or high < low:
            raise ValueError(
                f"locations_per_worker must be a valid (min, max) with min >= 1, "
                f"got {self.locations_per_worker}"
            )


class WorkerPool:
    """A collection of simulated workers with latent profiles."""

    def __init__(self, profiles: list[WorkerProfile]) -> None:
        if not profiles:
            raise ValueError("a worker pool needs at least one worker")
        ids = [profile.worker_id for profile in profiles]
        if len(set(ids)) != len(ids):
            raise ValueError("worker ids must be unique")
        self._profiles = {profile.worker_id: profile for profile in profiles}
        self._order = [profile.worker_id for profile in profiles]

    def __len__(self) -> int:
        return len(self._profiles)

    def __iter__(self):
        return (self._profiles[worker_id] for worker_id in self._order)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._profiles

    @property
    def worker_ids(self) -> list[str]:
        return list(self._order)

    @property
    def workers(self) -> list[Worker]:
        return [self._profiles[worker_id].worker for worker_id in self._order]

    @property
    def adversary_ids(self) -> list[str]:
        """Ground-truth ids of the non-honest workers (scenario scoring)."""
        return [
            worker_id
            for worker_id in self._order
            if self._profiles[worker_id].archetype != "honest"
        ]

    def profile(self, worker_id: str) -> WorkerProfile:
        return self._profiles[worker_id]

    def worker(self, worker_id: str) -> Worker:
        return self._profiles[worker_id].worker

    @classmethod
    def generate(
        cls,
        bounds: BoundingBox,
        spec: WorkerPoolSpec | None = None,
        seed: SeedLike = None,
    ) -> "WorkerPool":
        """Generate a pool of workers located within ``bounds`` according to ``spec``."""
        spec = spec or WorkerPoolSpec()
        rng = default_rng(seed)
        profiles: list[WorkerProfile] = []
        lambda_weights = np.asarray(spec.lambda_weights, dtype=float)
        for index in range(spec.num_workers):
            reliable = rng.random() < spec.reliable_fraction
            low, high = (
                spec.reliable_quality_range if reliable else spec.unreliable_quality_range
            )
            quality = float(rng.uniform(low, high))
            lam = float(
                spec.lambda_choices[int(rng.choice(len(spec.lambda_choices), p=lambda_weights))]
            )
            n_locations = int(
                rng.integers(spec.locations_per_worker[0], spec.locations_per_worker[1] + 1)
            )
            locations = tuple(bounds.sample(rng, n_locations))
            worker = Worker(worker_id=f"worker-{index:04d}", locations=locations)
            profiles.append(
                WorkerProfile(
                    worker=worker,
                    inherent_quality=quality,
                    distance_lambda=lam,
                )
            )
        # Adversary injection happens after the honest draws so the per-index
        # RNG consumption — and therefore every honest profile — is identical
        # whether or not a slice of the pool is replaced by adversaries.
        num_adversaries = int(round(spec.num_workers * spec.adversary_fraction))
        if num_adversaries > 0:
            chosen = rng.choice(spec.num_workers, size=num_adversaries, replace=False)
            weights = np.asarray(spec.adversary_weights, dtype=float)
            weights = weights / weights.sum()
            next_ring = 0
            ring_slots = 0
            for index in sorted(int(i) for i in chosen):
                archetype = ADVERSARY_ARCHETYPES[
                    int(rng.choice(len(ADVERSARY_ARCHETYPES), p=weights))
                ]
                ring = None
                if archetype == "colluder":
                    if ring_slots == 0:
                        ring_slots = spec.collusion_ring_size
                        next_ring += 1
                    ring = next_ring - 1
                    ring_slots -= 1
                base = profiles[index]
                profiles[index] = WorkerProfile(
                    worker=base.worker,
                    inherent_quality=base.inherent_quality,
                    distance_lambda=base.distance_lambda,
                    archetype=archetype,
                    collusion_ring=ring,
                )
        return cls(profiles)
