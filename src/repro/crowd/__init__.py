"""Crowdsourcing platform simulator replacing the paper's ChinaCrowds deployment.

The inference and assignment algorithms only observe (worker id, worker
locations, task id, binary label answers).  This package produces that
interaction log synthetically:

* :mod:`repro.crowd.worker_pool` — latent worker profiles (inherent quality,
  distance sensitivity, declared locations);
* :mod:`repro.crowd.answer_model` — the generative answering process, which
  samples answers from the same bell-shaped accuracy family the paper's model
  assumes (plus optional noise so the model is not handed its own data);
* :mod:`repro.crowd.arrival` — worker arrival processes (who shows up asking for
  tasks in each round);
* :mod:`repro.crowd.budget` — budget accounting (one unit per assigned task);
* :mod:`repro.crowd.platform` — the HIT lifecycle tying everything together.
"""

from repro.crowd.worker_pool import (
    ADVERSARY_ARCHETYPES,
    WorkerPool,
    WorkerPoolSpec,
    WorkerProfile,
)
from repro.crowd.answer_model import AnswerModelError, AnswerSimulator, QualityDrift
from repro.crowd.arrival import (
    ChurnArrival,
    DiurnalPattern,
    RoundRobinArrival,
    UniformRandomArrival,
    WorkerArrivalProcess,
)
from repro.crowd.budget import Budget, BudgetExhaustedError
from repro.crowd.platform import CrowdPlatform

__all__ = [
    "ADVERSARY_ARCHETYPES",
    "WorkerPool",
    "WorkerPoolSpec",
    "WorkerProfile",
    "AnswerModelError",
    "AnswerSimulator",
    "QualityDrift",
    "WorkerArrivalProcess",
    "ChurnArrival",
    "DiurnalPattern",
    "RoundRobinArrival",
    "UniformRandomArrival",
    "Budget",
    "BudgetExhaustedError",
    "CrowdPlatform",
]
