"""Budget accounting for the crowdsourcing campaign.

The paper gives each dataset a budget ``B`` of task assignments (1000 in the
deployments, 0.2 RMB each).  Each (worker, task) assignment consumes one unit.
The framework's alternating loop stops when the budget is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class BudgetExhaustedError(RuntimeError):
    """Raised when an assignment is attempted after the budget has run out."""


@dataclass
class Budget:
    """A simple consumable budget of task assignments."""

    total: int
    spent: int = 0
    cost_per_assignment: float = 0.2
    history: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.total < 0:
            raise ValueError(f"total budget must be non-negative, got {self.total}")
        if self.spent < 0 or self.spent > self.total:
            raise ValueError(
                f"spent must lie in [0, total], got {self.spent} of {self.total}"
            )
        if self.cost_per_assignment < 0:
            raise ValueError(
                f"cost_per_assignment must be non-negative, got {self.cost_per_assignment}"
            )

    @property
    def remaining(self) -> int:
        return self.total - self.spent

    @property
    def exhausted(self) -> bool:
        return self.remaining <= 0

    @property
    def monetary_cost(self) -> float:
        """Total money spent so far, using the paper's per-assignment price."""
        return self.spent * self.cost_per_assignment

    def can_afford(self, count: int = 1) -> bool:
        return count <= self.remaining

    def charge(self, count: int = 1) -> None:
        """Consume ``count`` assignment units; raises if the budget cannot cover them."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > self.remaining:
            raise BudgetExhaustedError(
                f"budget exhausted: requested {count}, remaining {self.remaining}"
            )
        self.spent += count
        self.history.append(count)

    def reset(self) -> None:
        self.spent = 0
        self.history.clear()
