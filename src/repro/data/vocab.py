"""Label vocabularies and POI name pools for the synthetic datasets.

The paper's task of Figure 2 ("Beijing Olympic Forest Park") mixes labels that
genuinely describe the POI (park, Olympics, sports, stadium, relax zone, take a
walk) with distractors drawn from other categories (the Fragrant Hill, palace,
business, flag-rising).  The synthetic generator mimics this: each POI category
has a pool of plausible "correct" labels, and distractor labels are sampled
from the pools of *other* categories so that the candidate set is realistic but
the ground truth stays unambiguous.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: Per-category label pools.  Keys are POI categories used by the generators.
CATEGORY_LABELS: dict[str, tuple[str, ...]] = {
    "park": (
        "park", "garden", "green space", "take a walk", "relax zone", "lake",
        "picnic", "jogging", "flowers", "open air",
    ),
    "university": (
        "university", "campus", "library", "students", "lecture hall",
        "research", "historic buildings", "education", "dormitory", "academia",
    ),
    "restaurant": (
        "restaurant", "local cuisine", "dinner", "roast duck", "noodles",
        "family friendly", "late night food", "dumplings", "hot pot", "dessert",
    ),
    "museum": (
        "museum", "exhibition", "history", "art", "artifacts", "guided tour",
        "culture", "gallery", "ancient relics", "architecture",
    ),
    "shopping": (
        "shopping mall", "boutique", "fashion", "electronics", "souvenirs",
        "market", "luxury brands", "bargain", "food court", "department store",
    ),
    "stadium": (
        "stadium", "sports", "Olympics", "concerts", "events", "arena",
        "athletics", "football", "big screen", "cheering crowds",
    ),
    "temple": (
        "temple", "incense", "prayer", "monks", "pagoda", "pilgrimage",
        "quiet courtyard", "traditional architecture", "festival", "heritage",
    ),
    "scenic_spot": (
        "scenic spot", "landmark", "sightseeing", "photography", "panoramic view",
        "tour groups", "sunrise view", "cable car", "hiking", "natural wonder",
    ),
    "transport": (
        "railway station", "subway", "transport hub", "tickets", "waiting hall",
        "departures", "high-speed rail", "luggage", "taxi rank", "platforms",
    ),
    "business": (
        "business district", "office towers", "conference", "finance",
        "coworking", "skyscraper", "corporate", "trade center", "startups", "CBD",
    ),
}

#: Name stems per category; the generator appends district names and ordinals.
CATEGORY_NAME_STEMS: dict[str, tuple[str, ...]] = {
    "park": ("Forest Park", "Botanical Garden", "Riverside Park", "People's Park"),
    "university": ("University", "Institute of Technology", "Normal University"),
    "restaurant": ("Roast Duck House", "Noodle House", "Dumpling Restaurant"),
    "museum": ("Museum", "Art Gallery", "Science Museum"),
    "shopping": ("Shopping Mall", "Market Street", "Department Store"),
    "stadium": ("Stadium", "Sports Center", "Gymnasium"),
    "temple": ("Temple", "Lama Monastery", "Pagoda"),
    "scenic_spot": ("Scenic Area", "Great Wall Section", "Mountain Resort", "Ancient Town"),
    "transport": ("Railway Station", "Airport Terminal", "Metro Hub"),
    "business": ("Financial Center", "Trade Tower", "Convention Center"),
}

#: District names used to diversify generated POI names.
DISTRICT_NAMES: tuple[str, ...] = (
    "Chaoyang", "Haidian", "Dongcheng", "Xicheng", "Fengtai", "Shijingshan",
    "Tongzhou", "Changping", "Daxing", "Shunyi", "Western Hills", "Olympic Green",
)

#: Province / city names used by the country-scale (China) dataset.
REGION_NAMES: tuple[str, ...] = (
    "Beijing", "Shanghai", "Hangzhou", "Chengdu", "Xi'an", "Guilin", "Suzhou",
    "Lhasa", "Kunming", "Qingdao", "Harbin", "Guangzhou", "Sanya", "Dunhuang",
)


@dataclass
class LabelVocabulary:
    """Per-category pools of candidate labels.

    The vocabulary answers two queries used by the dataset generator: sample
    ``k`` correct labels for a POI of a given category, and sample ``m``
    distractor labels drawn from other categories (never colliding with the
    correct ones).
    """

    pools: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(CATEGORY_LABELS)
    )

    def __post_init__(self) -> None:
        if not self.pools:
            raise ValueError("the vocabulary needs at least one category")
        for category, labels in self.pools.items():
            if len(labels) < 1:
                raise ValueError(f"category {category!r} has an empty label pool")
            if len(set(labels)) != len(labels):
                raise ValueError(f"category {category!r} has duplicate labels")

    @property
    def categories(self) -> tuple[str, ...]:
        return tuple(sorted(self.pools))

    def correct_labels(
        self, category: str, count: int, rng: np.random.Generator
    ) -> list[str]:
        """Sample ``count`` distinct labels from ``category``'s pool."""
        pool = self.pools.get(category)
        if pool is None:
            raise KeyError(f"unknown category {category!r}")
        if count > len(pool):
            raise ValueError(
                f"requested {count} correct labels but category {category!r} "
                f"only has {len(pool)}"
            )
        chosen = rng.choice(len(pool), size=count, replace=False)
        return [pool[i] for i in chosen]

    def distractor_labels(
        self,
        category: str,
        count: int,
        rng: np.random.Generator,
        forbidden: Sequence[str] = (),
    ) -> list[str]:
        """Sample ``count`` labels from *other* categories, avoiding ``forbidden``."""
        forbidden_set = set(forbidden) | set(self.pools.get(category, ()))
        candidates = sorted(
            {
                label
                for other, labels in self.pools.items()
                if other != category
                for label in labels
                if label not in forbidden_set
            }
        )
        if count > len(candidates):
            raise ValueError(
                f"requested {count} distractors but only {len(candidates)} are available"
            )
        chosen = rng.choice(len(candidates), size=count, replace=False)
        return [candidates[i] for i in chosen]


@dataclass
class PoiNamePool:
    """Generates human-readable, unique POI names per category."""

    stems: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(CATEGORY_NAME_STEMS)
    )
    districts: tuple[str, ...] = DISTRICT_NAMES
    _used: set[str] = field(default_factory=set, repr=False)

    def next_name(self, category: str, rng: np.random.Generator) -> str:
        """Return a fresh name such as "Haidian Forest Park" or "... II"."""
        stems = self.stems.get(category)
        if not stems:
            raise KeyError(f"unknown category {category!r}")
        for _ in range(64):
            district = self.districts[int(rng.integers(len(self.districts)))]
            stem = stems[int(rng.integers(len(stems)))]
            name = f"{district} {stem}"
            if name not in self._used:
                self._used.add(name)
                return name
        # Fall back to an ordinal suffix once plain combinations are exhausted.
        ordinal = 2
        base = f"{self.districts[0]} {stems[0]}"
        while f"{base} {ordinal}" in self._used:
            ordinal += 1
        name = f"{base} {ordinal}"
        self._used.add(name)
        return name
