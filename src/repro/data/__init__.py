"""Data substrate: POIs, tasks, workers, answers and dataset generators.

The paper's experiments ran on two hand-collected datasets (Beijing and China,
200 POIs each, 10 candidate labels per POI, ground truth checked against
Dianping).  Those datasets are not public; :mod:`repro.data.generators` builds
synthetic stand-ins matching the published marginals (POI counts, label
cardinality, correct/incorrect label split, review-count popularity classes)
so that every experiment in the paper can be exercised end to end.
"""

from repro.data.models import (
    POI,
    Answer,
    AnswerSet,
    Assignment,
    Dataset,
    Task,
    Worker,
)
from repro.data.vocab import LabelVocabulary, PoiNamePool
from repro.data.generators import (
    DatasetSpec,
    generate_beijing_dataset,
    generate_china_dataset,
    generate_dataset,
    generate_scalability_dataset,
)
from repro.data.io import dataset_from_dict, dataset_to_dict, load_dataset, save_dataset

__all__ = [
    "POI",
    "Answer",
    "AnswerSet",
    "Assignment",
    "Dataset",
    "Task",
    "Worker",
    "LabelVocabulary",
    "PoiNamePool",
    "DatasetSpec",
    "generate_beijing_dataset",
    "generate_china_dataset",
    "generate_dataset",
    "generate_scalability_dataset",
    "dataset_from_dict",
    "dataset_to_dict",
    "load_dataset",
    "save_dataset",
]
