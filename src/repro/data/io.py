"""Dataset and answer-set serialisation (JSON round-trip).

Serialisation keeps experiments reproducible across processes: a generated
dataset or a collected answer log can be written to disk, inspected, and fed
back into the inference models.  The format is plain JSON with one object per
dataset / answer set, versioned so that future format changes stay detectable.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.data.models import POI, Answer, AnswerSet, Dataset, Task, Worker
from repro.spatial.geometry import GeoPoint

FORMAT_VERSION = 1


def task_to_entry(task: Task) -> dict[str, Any]:
    """One task as a JSON-serialisable entry (shared by datasets/journals/checkpoints)."""
    return {
        "task_id": task.task_id,
        "labels": list(task.labels),
        "truth": list(task.truth),
        "poi": {
            "poi_id": task.poi.poi_id,
            "name": task.poi.name,
            "x": task.poi.location.x,
            "y": task.poi.location.y,
            "category": task.poi.category,
            "review_count": task.poi.review_count,
        },
    }


def task_from_entry(entry: dict[str, Any]) -> Task:
    """Rebuild one task from :func:`task_to_entry` output."""
    poi_entry = entry["poi"]
    poi = POI(
        poi_id=poi_entry["poi_id"],
        name=poi_entry["name"],
        location=GeoPoint(float(poi_entry["x"]), float(poi_entry["y"])),
        category=poi_entry.get("category", "generic"),
        review_count=int(poi_entry.get("review_count", 0)),
    )
    return Task(
        task_id=entry["task_id"],
        poi=poi,
        labels=tuple(entry["labels"]),
        truth=tuple(int(v) for v in entry["truth"]),
    )


def worker_to_entry(worker: Worker) -> dict[str, Any]:
    """One worker as a JSON-serialisable entry."""
    return {
        "worker_id": worker.worker_id,
        "locations": [[loc.x, loc.y] for loc in worker.locations],
    }


def worker_from_entry(entry: dict[str, Any]) -> Worker:
    """Rebuild one worker from :func:`worker_to_entry` output."""
    return Worker(
        worker_id=entry["worker_id"],
        locations=tuple(GeoPoint(float(x), float(y)) for x, y in entry["locations"]),
    )


def dataset_to_dict(dataset: Dataset) -> dict[str, Any]:
    """Convert ``dataset`` into a JSON-serialisable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": dataset.name,
        "metric": dataset.metric,
        "max_distance": dataset.max_distance,
        "description": dataset.description,
        "tasks": [task_to_entry(task) for task in dataset.tasks],
    }


def dataset_from_dict(payload: dict[str, Any]) -> Dataset:
    """Rebuild a :class:`~repro.data.models.Dataset` from :func:`dataset_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version: {version!r}")
    return Dataset(
        name=payload["name"],
        tasks=[task_from_entry(entry) for entry in payload["tasks"]],
        metric=payload.get("metric", "euclidean"),
        max_distance=payload.get("max_distance"),
        description=payload.get("description", ""),
    )


def save_dataset(dataset: Dataset, path: str | Path) -> Path:
    """Write ``dataset`` as JSON to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(dataset_to_dict(dataset), handle, indent=2, ensure_ascii=False)
    return path


def load_dataset(path: str | Path) -> Dataset:
    """Load a dataset previously written by :func:`save_dataset`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return dataset_from_dict(json.load(handle))


def answers_to_dict(answers: AnswerSet) -> dict[str, Any]:
    """Convert an answer set into a JSON-serialisable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "answers": [
            {
                "worker_id": answer.worker_id,
                "task_id": answer.task_id,
                "responses": list(answer.responses),
            }
            for answer in answers
        ],
    }


def answers_from_dict(payload: dict[str, Any]) -> AnswerSet:
    """Rebuild an :class:`~repro.data.models.AnswerSet` from :func:`answers_to_dict`."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported answer format version: {version!r}")
    return AnswerSet(
        Answer(
            worker_id=entry["worker_id"],
            task_id=entry["task_id"],
            responses=tuple(int(v) for v in entry["responses"]),
        )
        for entry in payload["answers"]
    )


def save_answers(answers: AnswerSet, path: str | Path) -> Path:
    """Write an answer set as JSON to ``path`` and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(answers_to_dict(answers), handle, indent=2)
    return path


def load_answers(path: str | Path) -> AnswerSet:
    """Load an answer set previously written by :func:`save_answers`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return answers_from_dict(json.load(handle))


def workers_to_dict(workers: list[Worker]) -> dict[str, Any]:
    """Convert a worker list into a JSON-serialisable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "workers": [worker_to_entry(worker) for worker in workers],
    }


def workers_from_dict(payload: dict[str, Any]) -> list[Worker]:
    """Rebuild a worker list from :func:`workers_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported worker format version: {version!r}")
    return [worker_from_entry(entry) for entry in payload["workers"]]


def tasks_to_dict(tasks: list[Task]) -> dict[str, Any]:
    """Convert a bare task list (no dataset envelope) into a JSON dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "tasks": [task_to_entry(task) for task in tasks],
    }


def tasks_from_dict(payload: dict[str, Any]) -> list[Task]:
    """Rebuild a task list from :func:`tasks_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported task format version: {version!r}")
    return [task_from_entry(entry) for entry in payload["tasks"]]
