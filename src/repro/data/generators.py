"""Synthetic dataset generators standing in for the paper's Beijing/China data.

The paper's datasets (Section V-A):

* **Beijing** — 200 POIs in Beijing (parks, universities, restaurants, ...),
  10 candidate labels per POI, 927 correct / 1073 incorrect labels in total.
* **China**   — 200 scenic spots across China, 10 candidate labels per POI,
  864 correct / 1136 incorrect labels in total.

Both were hand-collected from Dianping and are not published.  The generators
below synthesise datasets with the same shape: the same POI count, the same
label cardinality, per-task correct-label counts drawn uniformly from 1–10 and
then adjusted so the dataset-level correct/incorrect split matches the paper's
totals, and a long-tailed review-count distribution providing the popularity
classes of Figure 8 (>2500, >1000, >500, <500 reviews).  POI coordinates are
drawn from the corresponding geographic extents with clustering around a few
hot spots, which gives the uneven spatial distribution the paper observes when
comparing assignment strategies (Table II).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.models import POI, Dataset, Task
from repro.data.vocab import LabelVocabulary, PoiNamePool, REGION_NAMES
from repro.spatial.bbox import BEIJING_BBOX, CHINA_BBOX, BoundingBox
from repro.spatial.distance import max_pairwise_distance
from repro.spatial.geometry import GeoPoint
from repro.utils.rng import SeedLike, default_rng


@dataclass
class DatasetSpec:
    """Parameters controlling synthetic dataset generation."""

    name: str
    num_tasks: int = 200
    labels_per_task: int = 10
    total_correct_labels: int | None = None
    bbox: BoundingBox = field(default_factory=lambda: BEIJING_BBOX)
    metric: str = "haversine"
    categories: tuple[str, ...] | None = None
    num_clusters: int = 6
    cluster_spread: float = 0.04
    clustered_fraction: float = 0.7
    review_count_mean_log: float = 6.0
    review_count_sigma_log: float = 1.4
    description: str = ""

    def __post_init__(self) -> None:
        if self.num_tasks <= 0:
            raise ValueError(f"num_tasks must be positive, got {self.num_tasks}")
        if self.labels_per_task <= 0:
            raise ValueError(
                f"labels_per_task must be positive, got {self.labels_per_task}"
            )
        total_labels = self.num_tasks * self.labels_per_task
        if self.total_correct_labels is not None and not (
            self.num_tasks <= self.total_correct_labels <= total_labels
        ):
            raise ValueError(
                "total_correct_labels must allow at least one correct label per task "
                f"and at most all labels: got {self.total_correct_labels} for "
                f"{self.num_tasks} tasks x {self.labels_per_task} labels"
            )
        if not 0.0 <= self.clustered_fraction <= 1.0:
            raise ValueError(
                f"clustered_fraction must be in [0, 1], got {self.clustered_fraction}"
            )


def _correct_counts(
    spec: DatasetSpec, rng: np.random.Generator
) -> np.ndarray:
    """Per-task number of correct labels.

    Drawn uniformly from 1..labels_per_task (the paper selected 1-10 correct
    labels per task) and, when ``total_correct_labels`` is given, adjusted by
    single-label moves until the dataset total matches exactly.
    """
    counts = rng.integers(1, spec.labels_per_task + 1, size=spec.num_tasks)
    target = spec.total_correct_labels
    if target is None:
        return counts
    # Adjust counts towards the requested dataset-level total without ever
    # leaving the valid [1, labels_per_task] range for any individual task.
    diff = int(counts.sum()) - target
    order = rng.permutation(spec.num_tasks)
    cursor = 0
    while diff != 0:
        idx = order[cursor % spec.num_tasks]
        cursor += 1
        if diff > 0 and counts[idx] > 1:
            counts[idx] -= 1
            diff -= 1
        elif diff < 0 and counts[idx] < spec.labels_per_task:
            counts[idx] += 1
            diff += 1
    return counts


def _sample_locations(
    spec: DatasetSpec, rng: np.random.Generator
) -> list[GeoPoint]:
    """Sample POI locations: a clustered fraction around hot spots plus a uniform rest."""
    cluster_centers = spec.bbox.sample(rng, spec.num_clusters)
    locations: list[GeoPoint] = []
    for _ in range(spec.num_tasks):
        if rng.random() < spec.clustered_fraction and cluster_centers:
            center = cluster_centers[int(rng.integers(len(cluster_centers)))]
            point = GeoPoint(
                float(center.x + rng.normal(0.0, spec.cluster_spread * spec.bbox.width)),
                float(center.y + rng.normal(0.0, spec.cluster_spread * spec.bbox.height)),
            )
            locations.append(spec.bbox.clamp(point))
        else:
            locations.append(spec.bbox.sample(rng, 1)[0])
    return locations


def _sample_review_counts(spec: DatasetSpec, rng: np.random.Generator) -> np.ndarray:
    """Long-tailed (log-normal) review counts mimicking Dianping popularity."""
    raw = rng.lognormal(
        mean=spec.review_count_mean_log,
        sigma=spec.review_count_sigma_log,
        size=spec.num_tasks,
    )
    return np.maximum(1, raw.astype(int))


def generate_dataset(spec: DatasetSpec, seed: SeedLike = None) -> Dataset:
    """Generate a synthetic dataset according to ``spec``.

    The result is fully deterministic for a given ``(spec, seed)`` pair.
    """
    rng = default_rng(seed)
    vocabulary = LabelVocabulary()
    name_pool = PoiNamePool()
    categories = spec.categories or vocabulary.categories

    unknown = [c for c in categories if c not in vocabulary.pools]
    if unknown:
        raise ValueError(f"unknown categories in spec: {unknown}")

    correct_counts = _correct_counts(spec, rng)
    locations = _sample_locations(spec, rng)
    review_counts = _sample_review_counts(spec, rng)

    tasks: list[Task] = []
    for index in range(spec.num_tasks):
        category = categories[int(rng.integers(len(categories)))]
        n_correct = int(correct_counts[index])
        n_correct = min(n_correct, len(vocabulary.pools[category]))
        n_distractor = spec.labels_per_task - n_correct

        correct = vocabulary.correct_labels(category, n_correct, rng)
        distractors = vocabulary.distractor_labels(
            category, n_distractor, rng, forbidden=correct
        )
        labels = correct + distractors
        truth = [1] * n_correct + [0] * n_distractor
        # Shuffle so correct labels are not always listed first.
        order = rng.permutation(len(labels))
        labels = [labels[i] for i in order]
        truth = [truth[i] for i in order]

        poi = POI(
            poi_id=f"{spec.name.lower()}-poi-{index:04d}",
            name=name_pool.next_name(category, rng),
            location=locations[index],
            category=category,
            review_count=int(review_counts[index]),
        )
        tasks.append(
            Task(
                task_id=f"{spec.name.lower()}-task-{index:04d}",
                poi=poi,
                labels=tuple(labels),
                truth=tuple(truth),
            )
        )

    diameter = max_pairwise_distance(
        [task.location for task in tasks],
        metric="haversine" if spec.metric == "haversine" else "euclidean",
    )
    return Dataset(
        name=spec.name,
        tasks=tasks,
        metric=spec.metric,
        max_distance=diameter if diameter > 0 else 1.0,
        description=spec.description,
    )


def generate_beijing_dataset(seed: SeedLike = 7) -> Dataset:
    """Synthetic stand-in for the paper's Beijing dataset.

    200 POIs inside the Beijing urban extent, 10 candidate labels per POI and
    exactly 927 correct / 1073 incorrect labels (the totals reported in
    Section V-A of the paper).
    """
    spec = DatasetSpec(
        name="Beijing",
        num_tasks=200,
        labels_per_task=10,
        total_correct_labels=927,
        bbox=BEIJING_BBOX,
        metric="haversine",
        categories=(
            "park", "university", "restaurant", "museum", "shopping",
            "stadium", "temple", "transport", "business",
        ),
        description="Synthetic Beijing POI dataset matching the paper's marginals.",
    )
    return generate_dataset(spec, seed=seed)


def generate_china_dataset(seed: SeedLike = 11) -> Dataset:
    """Synthetic stand-in for the paper's China scenic-spot dataset.

    200 scenic spots across China, 10 candidate labels per POI and exactly
    864 correct / 1136 incorrect labels.
    """
    spec = DatasetSpec(
        name="China",
        num_tasks=200,
        labels_per_task=10,
        total_correct_labels=864,
        bbox=CHINA_BBOX,
        metric="haversine",
        categories=("scenic_spot", "temple", "park", "museum", "stadium"),
        num_clusters=len(REGION_NAMES),
        cluster_spread=0.02,
        description="Synthetic China scenic-spot dataset matching the paper's marginals.",
    )
    return generate_dataset(spec, seed=seed)


def generate_scalability_dataset(
    num_tasks: int,
    labels_per_task: int = 10,
    seed: SeedLike = 23,
) -> Dataset:
    """Large synthetic dataset for the scalability experiments (Figs 13-14)."""
    spec = DatasetSpec(
        name=f"Synthetic-{num_tasks}",
        num_tasks=num_tasks,
        labels_per_task=labels_per_task,
        bbox=CHINA_BBOX,
        metric="euclidean",
        num_clusters=max(4, num_tasks // 500),
        description="Synthetic scalability dataset (Figures 13 and 14).",
    )
    return generate_dataset(spec, seed=seed)
