"""Core data model: POIs, tasks, workers, answers and answer sets.

These classes mirror Section II of the paper:

* a **task** ``t = {O_t, L_t}`` couples a POI with a candidate label set where
  each label has an unknown binary truth value;
* a **worker** ``w`` declares one or more locations (home, office, interest
  zones) — distances are taken as the minimum over those locations;
* an **answer** ``R(w, t)`` is the worker's binary vector over the task's
  labels (ticked = 1, not ticked = 0);
* the **answer set** ``R`` is the growing log of all submitted answers; the
  inference models read it, and the task assigners consult it to know which
  workers already answered which tasks (``W(t)`` and ``T(w)`` in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.spatial.geometry import GeoPoint


@dataclass(frozen=True)
class POI:
    """A point of interest: a name, a location and a popularity proxy.

    ``review_count`` plays the role of the Dianping review count the paper uses
    to bucket POIs by influence in Figure 8; it is *not* visible to the
    inference algorithms, only to the analysis code and the answer simulator.
    """

    poi_id: str
    name: str
    location: GeoPoint
    category: str = "generic"
    review_count: int = 0

    def __post_init__(self) -> None:
        if not self.poi_id:
            raise ValueError("poi_id must be non-empty")
        if self.review_count < 0:
            raise ValueError(f"review_count must be non-negative, got {self.review_count}")


@dataclass(frozen=True)
class Task:
    """A POI labelling task: a POI plus its candidate labels and ground truth.

    ``truth`` is only consulted by the evaluation metrics and the answer
    simulator — the inference and assignment code never reads it.
    """

    task_id: str
    poi: POI
    labels: tuple[str, ...]
    truth: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if len(self.labels) == 0:
            raise ValueError("a task needs at least one candidate label")
        if len(self.labels) != len(self.truth):
            raise ValueError(
                f"labels and truth must align: {len(self.labels)} vs {len(self.truth)}"
            )
        if any(value not in (0, 1) for value in self.truth):
            raise ValueError(f"truth values must be 0/1, got {self.truth}")
        if len(set(self.labels)) != len(self.labels):
            raise ValueError(f"candidate labels must be unique, got {self.labels}")

    @property
    def num_labels(self) -> int:
        return len(self.labels)

    @property
    def location(self) -> GeoPoint:
        return self.poi.location

    @property
    def correct_labels(self) -> tuple[str, ...]:
        """The candidate labels whose ground truth is 1."""
        return tuple(
            label for label, value in zip(self.labels, self.truth) if value == 1
        )


@dataclass(frozen=True)
class Worker:
    """A crowd worker with one or more declared locations."""

    worker_id: str
    locations: tuple[GeoPoint, ...]

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise ValueError("worker_id must be non-empty")
        if len(self.locations) == 0:
            raise ValueError("a worker must declare at least one location")

    @property
    def primary_location(self) -> GeoPoint:
        return self.locations[0]


@dataclass(frozen=True)
class Answer:
    """One worker's answer vector for one task."""

    worker_id: str
    task_id: str
    responses: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.responses) == 0:
            raise ValueError("an answer must cover at least one label")
        if any(value not in (0, 1) for value in self.responses):
            raise ValueError(f"responses must be 0/1, got {self.responses}")

    @property
    def num_labels(self) -> int:
        return len(self.responses)

    def accuracy_against(self, truth: Sequence[int]) -> float:
        """Fraction of labels answered in agreement with ``truth``."""
        if len(truth) != len(self.responses):
            raise ValueError(
                f"truth length {len(truth)} does not match answer length "
                f"{len(self.responses)}"
            )
        matches = sum(1 for r, z in zip(self.responses, truth) if r == z)
        return matches / len(self.responses)


@dataclass(frozen=True)
class Assignment:
    """A record that ``task_id`` was assigned to ``worker_id`` (one HIT slot)."""

    worker_id: str
    task_id: str
    round_index: int = 0


class AnswerSet:
    """The growing log of answers ``R`` with the paper's index structures.

    Maintains ``W(t)`` (workers who answered task ``t``) and ``T(w)`` (tasks
    answered by worker ``w``) incrementally so both the EM inference and the
    assignment algorithms can consult them in O(1).
    """

    def __init__(self, answers: Iterable[Answer] = ()) -> None:
        self._answers: dict[tuple[str, str], Answer] = {}
        self._workers_by_task: dict[str, set[str]] = {}
        self._tasks_by_worker: dict[str, set[str]] = {}
        for answer in answers:
            self.add(answer)

    def __len__(self) -> int:
        return len(self._answers)

    def __iter__(self) -> Iterator[Answer]:
        return iter(self._answers.values())

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._answers

    def add(self, answer: Answer) -> None:
        """Record ``answer``; re-answering the same (worker, task) pair replaces it."""
        key = (answer.worker_id, answer.task_id)
        self._answers[key] = answer
        self._workers_by_task.setdefault(answer.task_id, set()).add(answer.worker_id)
        self._tasks_by_worker.setdefault(answer.worker_id, set()).add(answer.task_id)

    def get(self, worker_id: str, task_id: str) -> Optional[Answer]:
        return self._answers.get((worker_id, task_id))

    def workers_of_task(self, task_id: str) -> frozenset[str]:
        """``W(t)``: the workers who have answered ``task_id``."""
        return frozenset(self._workers_by_task.get(task_id, ()))

    def tasks_of_worker(self, worker_id: str) -> frozenset[str]:
        """``T(w)``: the tasks answered by ``worker_id``."""
        return frozenset(self._tasks_by_worker.get(worker_id, ()))

    def answers_of_task(self, task_id: str) -> list[Answer]:
        return [
            self._answers[(worker_id, task_id)]
            for worker_id in sorted(self._workers_by_task.get(task_id, ()))
        ]

    def answers_of_worker(self, worker_id: str) -> list[Answer]:
        return [
            self._answers[(worker_id, task_id)]
            for task_id in sorted(self._tasks_by_worker.get(worker_id, ()))
        ]

    def worker_ids(self) -> list[str]:
        return sorted(self._tasks_by_worker)

    def task_ids(self) -> list[str]:
        return sorted(self._workers_by_task)

    def answer_count_of_task(self, task_id: str) -> int:
        return len(self._workers_by_task.get(task_id, ()))

    def copy(self) -> "AnswerSet":
        return AnswerSet(self._answers.values())

    @property
    def total_label_answers(self) -> int:
        """Total number of individual label responses across all answers."""
        return sum(answer.num_labels for answer in self._answers.values())


@dataclass
class Dataset:
    """A named collection of tasks and a distance normaliser hint.

    ``max_distance`` stores the raw-coordinate diameter that should be used to
    normalise worker-to-POI distances so that every consumer of the dataset
    (simulator, inference, analysis) agrees on the normalisation.
    """

    name: str
    tasks: list[Task]
    metric: str = "euclidean"
    max_distance: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError("a dataset needs at least one task")
        task_ids = [task.task_id for task in self.tasks]
        if len(set(task_ids)) != len(task_ids):
            raise ValueError("task ids must be unique within a dataset")

    def __len__(self) -> int:
        return len(self.tasks)

    def task_by_id(self, task_id: str) -> Task:
        for task in self.tasks:
            if task.task_id == task_id:
                return task
        raise KeyError(task_id)

    @property
    def task_index(self) -> dict[str, Task]:
        return {task.task_id: task for task in self.tasks}

    @property
    def poi_locations(self) -> list[GeoPoint]:
        return [task.location for task in self.tasks]

    @property
    def total_labels(self) -> int:
        return sum(task.num_labels for task in self.tasks)

    @property
    def total_correct_labels(self) -> int:
        return sum(sum(task.truth) for task in self.tasks)

    @property
    def total_incorrect_labels(self) -> int:
        return self.total_labels - self.total_correct_labels
