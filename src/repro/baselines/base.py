"""Common interface for label-inference methods (MV, Dawid–Skene EM, and IM)."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.models import AnswerSet, Task


class LabelInferenceModel(ABC):
    """A method that infers the binary truth of every candidate label.

    The lifecycle is ``fit(answers)`` followed by any number of
    :meth:`label_probabilities` / :meth:`predict` queries.  Implementations must
    be re-fittable: calling :meth:`fit` again with a larger answer set replaces
    the previous estimate.
    """

    def __init__(self, tasks: list[Task]) -> None:
        if not tasks:
            raise ValueError("an inference model needs at least one task")
        self._tasks = {task.task_id: task for task in tasks}
        self._fitted = False

    @property
    def tasks(self) -> dict[str, Task]:
        return dict(self._tasks)

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def add_task(self, task: Task) -> bool:
        """Register a task that arrived after construction (open-world growth).

        Returns ``True`` if the task was new, ``False`` if it was already
        registered.  Re-registering a different task under an existing id is
        rejected — ids are the identity the answer log indexes by.
        """
        existing = self._tasks.get(task.task_id)
        if existing is not None:
            if existing is not task and existing != task:
                raise ValueError(
                    f"task id {task.task_id!r} is already registered with "
                    "different content"
                )
            return False
        self._tasks[task.task_id] = task
        return True

    @abstractmethod
    def fit(self, answers: AnswerSet) -> "LabelInferenceModel":
        """Estimate the model from the answer set and return ``self``."""

    @abstractmethod
    def label_probabilities(self, task_id: str) -> np.ndarray:
        """``P(z_{t,k} = 1)`` for every label ``k`` of ``task_id``."""

    def predict(self, task_id: str, threshold: float = 0.5) -> np.ndarray:
        """Binary decision per label: 1 iff ``P(z=1) >= threshold``."""
        probs = self.label_probabilities(task_id)
        return (probs >= threshold).astype(int)

    def predict_all(self, threshold: float = 0.5) -> dict[str, np.ndarray]:
        """Predictions for every task, keyed by task id."""
        return {
            task_id: self.predict(task_id, threshold=threshold)
            for task_id in self._tasks
        }

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__} must be fitted before querying predictions"
            )

    def _require_task(self, task_id: str) -> Task:
        task = self._tasks.get(task_id)
        if task is None:
            raise KeyError(f"unknown task {task_id!r}")
        return task
