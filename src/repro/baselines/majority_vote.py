"""Majority-voting inference baseline (MV in the paper's evaluation).

For each label, the fraction of answering workers who ticked it is used as the
probability of the label being correct; a label is inferred correct when a
strict majority voted "yes" (ties default to "not correct", matching the
``P(z=1) >= 0.5`` convention only when more than half the votes are positive —
with an even worker count, exactly half the votes give probability 0.5 which is
reported as-is, so the caller's threshold decides).  Labels of tasks with no
answers at all get an uninformative probability of 0.5.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import LabelInferenceModel
from repro.data.models import AnswerSet, Task


class MajorityVoteInference(LabelInferenceModel):
    """The MV baseline: label probability = fraction of positive votes."""

    def __init__(self, tasks: list[Task]) -> None:
        super().__init__(tasks)
        self._probabilities: dict[str, np.ndarray] = {}

    def fit(self, answers: AnswerSet) -> "MajorityVoteInference":
        self._probabilities = {}
        for task_id, task in self._tasks.items():
            task_answers = answers.answers_of_task(task_id)
            if not task_answers:
                self._probabilities[task_id] = np.full(task.num_labels, 0.5)
                continue
            votes = np.zeros(task.num_labels)
            for answer in task_answers:
                if answer.num_labels != task.num_labels:
                    raise ValueError(
                        f"answer for task {task_id!r} has {answer.num_labels} labels, "
                        f"task has {task.num_labels}"
                    )
                votes += np.asarray(answer.responses)
            self._probabilities[task_id] = votes / len(task_answers)
        self._fitted = True
        return self

    def label_probabilities(self, task_id: str) -> np.ndarray:
        self._require_fitted()
        self._require_task(task_id)
        return self._probabilities[task_id].copy()
