"""Baseline result-inference methods the paper compares against.

* :class:`~repro.baselines.majority_vote.MajorityVoteInference` — MV: a label is
  inferred correct if strictly more than half the answering workers ticked it.
* :class:`~repro.baselines.dawid_skene.DawidSkeneInference` — EM: the classic
  Dawid–Skene estimator with a per-worker 2×2 confusion matrix, iterating
  between estimating label truths and worker confusion matrices.

Both implement :class:`~repro.baselines.base.LabelInferenceModel`, the same
interface the location-aware model implements, so the experiment harness can
swap them freely.
"""

from repro.baselines.base import LabelInferenceModel
from repro.baselines.majority_vote import MajorityVoteInference
from repro.baselines.dawid_skene import DawidSkeneInference

__all__ = [
    "LabelInferenceModel",
    "MajorityVoteInference",
    "DawidSkeneInference",
]
