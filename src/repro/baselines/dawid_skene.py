"""Dawid–Skene confusion-matrix EM baseline (the "EM" method in the paper).

The classic estimator from Dawid & Skene (1979), applied label-wise to the
binary POI-labelling setting:

* every worker ``w`` has a 2×2 confusion matrix ``π_w[z][r]`` — the probability
  of answering ``r`` when the truth is ``z``;
* every label carries a Bernoulli truth prior;
* EM alternates between (E) computing the posterior of each label's truth given
  the current confusion matrices and (M) re-estimating confusion matrices and
  class priors from those posteriors.

Unlike the paper's model this estimator is *location-unaware*: a worker's
quality is the same regardless of how far the POI is, which is exactly the
deficiency the case study in Table I illustrates.

Two EM engines implement the iteration, mirroring the vectorised/reference
split of :mod:`repro.core.inference`:

* ``engine="vectorized"`` (the default) flattens the answer log once into the
  same flat-index layout the :class:`~repro.core.em_kernel.AnswerTensor` uses —
  integer item/worker index arrays plus a 0/1 response vector — and runs every
  E/M step as ``np.bincount`` segment sums over those indices;
* ``engine="reference"`` is the original per-observation Python loop, kept as
  the executable specification the vectorised engine is equivalence-tested
  against (``tests/test_baselines_dawid_skene.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import LabelInferenceModel
from repro.data.models import AnswerSet, Task

#: Valid values of :attr:`DawidSkeneConfig.engine`.
DS_ENGINES = ("vectorized", "reference")


@dataclass
class DawidSkeneConfig:
    """Hyper-parameters of the Dawid–Skene EM baseline."""

    max_iterations: int = 100
    convergence_threshold: float = 1e-4
    smoothing: float = 0.1
    engine: str = "vectorized"

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {self.max_iterations}")
        if self.convergence_threshold < 0:
            raise ValueError(
                f"convergence_threshold must be non-negative, got "
                f"{self.convergence_threshold}"
            )
        if self.smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {self.smoothing}")
        if self.engine not in DS_ENGINES:
            raise ValueError(f"engine must be one of {DS_ENGINES}, got {self.engine!r}")


@dataclass
class DawidSkeneResult:
    """Diagnostics of one Dawid–Skene EM run."""

    iterations: int
    converged: bool
    convergence_trace: list[float] = field(default_factory=list)


class DawidSkeneInference(LabelInferenceModel):
    """Binary Dawid–Skene EM over (task, label) items."""

    def __init__(self, tasks: list[Task], config: DawidSkeneConfig | None = None) -> None:
        super().__init__(tasks)
        self._config = config or DawidSkeneConfig()
        self._probabilities: dict[str, np.ndarray] = {}
        self._confusion: dict[str, np.ndarray] = {}
        self._last_result: DawidSkeneResult | None = None

    @property
    def config(self) -> DawidSkeneConfig:
        return self._config

    @property
    def last_result(self) -> DawidSkeneResult | None:
        return self._last_result

    def worker_confusion(self, worker_id: str) -> np.ndarray:
        """The 2×2 confusion matrix ``π_w[z][r]`` estimated for ``worker_id``."""
        self._require_fitted()
        return self._confusion[worker_id].copy()

    def worker_accuracy(self, worker_id: str) -> float:
        """Average diagonal of the confusion matrix — the scalar quality EM uses."""
        matrix = self.worker_confusion(worker_id)
        return float((matrix[0, 0] + matrix[1, 1]) / 2.0)

    def fit(self, answers: AnswerSet) -> "DawidSkeneInference":
        items, observations = self._flatten(answers)
        if self._config.engine == "reference":
            posterior, confusion, result = self._fit_reference(items, observations)
        else:
            posterior, confusion, result = self._fit_vectorized(items, observations)

        self._confusion = confusion
        self._probabilities = {}
        for task_id, task in self._tasks.items():
            probs = np.array(
                [posterior.get((task_id, k), 0.5) for k in range(task.num_labels)]
            )
            self._probabilities[task_id] = probs
        self._last_result = result
        self._fitted = True
        return self

    def label_probabilities(self, task_id: str) -> np.ndarray:
        self._require_fitted()
        self._require_task(task_id)
        return self._probabilities[task_id].copy()

    # ------------------------------------------------------- vectorized engine
    def _fit_vectorized(
        self,
        items: list[tuple[str, int]],
        observations: list[tuple[str, tuple[str, int], int]],
    ) -> tuple[dict[tuple[str, int], float], dict[str, np.ndarray], DawidSkeneResult]:
        """Batched EM on the flat-index layout.

        Observations become three aligned arrays — item index, worker index and
        0/1 response — and each E/M step is a fixed number of ``np.bincount``
        segment sums, exactly like the M-step scatter-adds of
        :func:`repro.core.em_kernel.em_step`.  The per-bin accumulation order
        equals the observation order the reference loop uses, so the two
        engines agree to floating-point noise.
        """
        worker_ids = sorted({worker_id for worker_id, _, _ in observations})
        item_index = {item: i for i, item in enumerate(items)}
        worker_index = {worker_id: w for w, worker_id in enumerate(worker_ids)}
        num_items = len(items)
        num_workers = len(worker_ids)

        o_item = np.fromiter(
            (item_index[key] for _, key, _ in observations),
            dtype=np.intp,
            count=len(observations),
        )
        o_worker = np.fromiter(
            (worker_index[worker_id] for worker_id, _, _ in observations),
            dtype=np.intp,
            count=len(observations),
        )
        o_resp = np.fromiter(
            (response for _, _, response in observations),
            dtype=np.intp,
            count=len(observations),
        )

        # Majority-vote initialisation of the truth posteriors (per item).
        votes = np.bincount(o_item, weights=o_resp.astype(float), minlength=num_items)
        counts = np.bincount(o_item, minlength=num_items)
        posterior = np.where(counts > 0, votes / np.maximum(1, counts), 0.5)

        # conf[z] rows live in two (|W|, 2) matrices: conf0 = π_w[0, ·],
        # conf1 = π_w[1, ·].  No initial value is needed — the loop always
        # runs its M-step (from the majority-vote posteriors) before the
        # first E-step reads them, and max_iterations is validated positive.
        prior_positive = 0.5
        smoothing = self._config.smoothing
        # Combined (worker, response) bin for the confusion scatter-adds.
        wr_bin = o_worker * 2 + o_resp

        trace: list[float] = []
        converged = False
        iterations = 0
        for iteration in range(self._config.max_iterations):
            iterations = iteration + 1

            # M-step: confusion matrices and class prior from current posteriors.
            p1 = posterior[o_item]
            counts1 = smoothing + np.bincount(
                wr_bin, weights=p1, minlength=2 * num_workers
            ).reshape(num_workers, 2)
            counts0 = smoothing + np.bincount(
                wr_bin, weights=1.0 - p1, minlength=2 * num_workers
            ).reshape(num_workers, 2)
            conf1 = counts1 / counts1.sum(axis=1, keepdims=True)
            conf0 = counts0 / counts0.sum(axis=1, keepdims=True)
            if num_items:
                prior_positive = float(np.mean(posterior))
                prior_positive = min(1.0 - 1e-6, max(1e-6, prior_positive))

            # E-step: truth posteriors from the confusion matrices.
            log_c1 = np.log(np.maximum(conf1, 1e-12))
            log_c0 = np.log(np.maximum(conf0, 1e-12))
            log_p1 = np.log(prior_positive) + np.bincount(
                o_item, weights=log_c1[o_worker, o_resp], minlength=num_items
            )
            log_p0 = np.log(1.0 - prior_positive) + np.bincount(
                o_item, weights=log_c0[o_worker, o_resp], minlength=num_items
            )
            new_posterior = np.exp(log_p1 - np.logaddexp(log_p1, log_p0))
            max_change = (
                float(np.abs(new_posterior - posterior).max()) if num_items else 0.0
            )
            posterior = new_posterior
            trace.append(max_change)
            if max_change <= self._config.convergence_threshold:
                converged = True
                break

        posterior_dict = {item: float(posterior[i]) for i, item in enumerate(items)}
        confusion = {
            worker_id: np.stack([conf0[w], conf1[w]])
            for worker_id, w in worker_index.items()
        }
        result = DawidSkeneResult(
            iterations=iterations, converged=converged, convergence_trace=trace
        )
        return posterior_dict, confusion, result

    # -------------------------------------------------------- reference engine
    def _fit_reference(
        self,
        items: list[tuple[str, int]],
        observations: list[tuple[str, tuple[str, int], int]],
    ) -> tuple[dict[tuple[str, int], float], dict[str, np.ndarray], DawidSkeneResult]:
        """The original per-observation EM loop (the executable specification)."""
        worker_ids = sorted({worker_id for worker_id, _, _ in observations})

        # Initialise truth posteriors with the majority-vote fraction.
        posterior = {}
        for item in items:
            votes = [r for _, key, r in observations if key == item]
            posterior[item] = float(np.mean(votes)) if votes else 0.5

        # Index observations per item and per worker once.
        obs_by_item: dict[tuple[str, int], list[tuple[str, int]]] = {item: [] for item in items}
        obs_by_worker: dict[str, list[tuple[tuple[str, int], int]]] = {
            worker_id: [] for worker_id in worker_ids
        }
        for worker_id, item, response in observations:
            obs_by_item[item].append((worker_id, response))
            obs_by_worker[worker_id].append((item, response))

        confusion = {
            worker_id: np.array([[0.7, 0.3], [0.3, 0.7]]) for worker_id in worker_ids
        }
        prior_positive = 0.5
        smoothing = self._config.smoothing

        trace: list[float] = []
        converged = False
        iterations = 0
        for iteration in range(self._config.max_iterations):
            iterations = iteration + 1

            # M-step: confusion matrices and class prior from current posteriors.
            new_confusion = {}
            for worker_id in worker_ids:
                counts = np.full((2, 2), smoothing)
                for item, response in obs_by_worker[worker_id]:
                    p1 = posterior[item]
                    counts[1, response] += p1
                    counts[0, response] += 1.0 - p1
                counts /= counts.sum(axis=1, keepdims=True)
                new_confusion[worker_id] = counts
            confusion = new_confusion
            if posterior:
                prior_positive = float(np.mean(list(posterior.values())))
                prior_positive = min(1.0 - 1e-6, max(1e-6, prior_positive))

            # E-step: truth posteriors from the confusion matrices.
            max_change = 0.0
            new_posterior = {}
            for item in items:
                log_p1 = np.log(prior_positive)
                log_p0 = np.log(1.0 - prior_positive)
                for worker_id, response in obs_by_item[item]:
                    matrix = confusion[worker_id]
                    log_p1 += np.log(max(matrix[1, response], 1e-12))
                    log_p0 += np.log(max(matrix[0, response], 1e-12))
                denominator = np.logaddexp(log_p1, log_p0)
                value = float(np.exp(log_p1 - denominator))
                max_change = max(max_change, abs(value - posterior[item]))
                new_posterior[item] = value
            posterior = new_posterior
            trace.append(max_change)
            if max_change <= self._config.convergence_threshold:
                converged = True
                break

        result = DawidSkeneResult(
            iterations=iterations, converged=converged, convergence_trace=trace
        )
        return posterior, confusion, result

    # ------------------------------------------------------------------ internal
    def _flatten(
        self, answers: AnswerSet
    ) -> tuple[list[tuple[str, int]], list[tuple[str, tuple[str, int], int]]]:
        """Flatten answers into (task, label-index) items and per-item observations."""
        items: set[tuple[str, int]] = set()
        observations: list[tuple[str, tuple[str, int], int]] = []
        for answer in answers:
            task = self._tasks.get(answer.task_id)
            if task is None:
                raise KeyError(f"answer references unknown task {answer.task_id!r}")
            if answer.num_labels != task.num_labels:
                raise ValueError(
                    f"answer for task {task.task_id!r} has {answer.num_labels} labels, "
                    f"task has {task.num_labels}"
                )
            for k, response in enumerate(answer.responses):
                item = (answer.task_id, k)
                items.add(item)
                observations.append((answer.worker_id, item, int(response)))
        # Items with no answers are handled at prediction time (probability 0.5).
        return sorted(items), observations
