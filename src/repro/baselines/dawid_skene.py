"""Dawid–Skene confusion-matrix EM baseline (the "EM" method in the paper).

The classic estimator from Dawid & Skene (1979), applied label-wise to the
binary POI-labelling setting:

* every worker ``w`` has a 2×2 confusion matrix ``π_w[z][r]`` — the probability
  of answering ``r`` when the truth is ``z``;
* every label carries a Bernoulli truth prior;
* EM alternates between (E) computing the posterior of each label's truth given
  the current confusion matrices and (M) re-estimating confusion matrices and
  class priors from those posteriors.

Unlike the paper's model this estimator is *location-unaware*: a worker's
quality is the same regardless of how far the POI is, which is exactly the
deficiency the case study in Table I illustrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import LabelInferenceModel
from repro.data.models import AnswerSet, Task


@dataclass
class DawidSkeneConfig:
    """Hyper-parameters of the Dawid–Skene EM baseline."""

    max_iterations: int = 100
    convergence_threshold: float = 1e-4
    smoothing: float = 0.1

    def __post_init__(self) -> None:
        if self.max_iterations <= 0:
            raise ValueError(f"max_iterations must be positive, got {self.max_iterations}")
        if self.convergence_threshold < 0:
            raise ValueError(
                f"convergence_threshold must be non-negative, got "
                f"{self.convergence_threshold}"
            )
        if self.smoothing < 0:
            raise ValueError(f"smoothing must be non-negative, got {self.smoothing}")


@dataclass
class DawidSkeneResult:
    """Diagnostics of one Dawid–Skene EM run."""

    iterations: int
    converged: bool
    convergence_trace: list[float] = field(default_factory=list)


class DawidSkeneInference(LabelInferenceModel):
    """Binary Dawid–Skene EM over (task, label) items."""

    def __init__(self, tasks: list[Task], config: DawidSkeneConfig | None = None) -> None:
        super().__init__(tasks)
        self._config = config or DawidSkeneConfig()
        self._probabilities: dict[str, np.ndarray] = {}
        self._confusion: dict[str, np.ndarray] = {}
        self._last_result: DawidSkeneResult | None = None

    @property
    def config(self) -> DawidSkeneConfig:
        return self._config

    @property
    def last_result(self) -> DawidSkeneResult | None:
        return self._last_result

    def worker_confusion(self, worker_id: str) -> np.ndarray:
        """The 2×2 confusion matrix ``π_w[z][r]`` estimated for ``worker_id``."""
        self._require_fitted()
        return self._confusion[worker_id].copy()

    def worker_accuracy(self, worker_id: str) -> float:
        """Average diagonal of the confusion matrix — the scalar quality EM uses."""
        matrix = self.worker_confusion(worker_id)
        return float((matrix[0, 0] + matrix[1, 1]) / 2.0)

    def fit(self, answers: AnswerSet) -> "DawidSkeneInference":
        items, observations = self._flatten(answers)
        worker_ids = sorted({worker_id for worker_id, _, _ in observations})

        # Initialise truth posteriors with the majority-vote fraction.
        posterior = {}
        for item in items:
            votes = [r for _, key, r in observations if key == item]
            posterior[item] = float(np.mean(votes)) if votes else 0.5

        # Index observations per item and per worker once.
        obs_by_item: dict[tuple[str, int], list[tuple[str, int]]] = {item: [] for item in items}
        obs_by_worker: dict[str, list[tuple[tuple[str, int], int]]] = {
            worker_id: [] for worker_id in worker_ids
        }
        for worker_id, item, response in observations:
            obs_by_item[item].append((worker_id, response))
            obs_by_worker[worker_id].append((item, response))

        confusion = {
            worker_id: np.array([[0.7, 0.3], [0.3, 0.7]]) for worker_id in worker_ids
        }
        prior_positive = 0.5
        smoothing = self._config.smoothing

        trace: list[float] = []
        converged = False
        iterations = 0
        for iteration in range(self._config.max_iterations):
            iterations = iteration + 1

            # M-step: confusion matrices and class prior from current posteriors.
            new_confusion = {}
            for worker_id in worker_ids:
                counts = np.full((2, 2), smoothing)
                for item, response in obs_by_worker[worker_id]:
                    p1 = posterior[item]
                    counts[1, response] += p1
                    counts[0, response] += 1.0 - p1
                counts /= counts.sum(axis=1, keepdims=True)
                new_confusion[worker_id] = counts
            confusion = new_confusion
            if posterior:
                prior_positive = float(np.mean(list(posterior.values())))
                prior_positive = min(1.0 - 1e-6, max(1e-6, prior_positive))

            # E-step: truth posteriors from the confusion matrices.
            max_change = 0.0
            new_posterior = {}
            for item in items:
                log_p1 = np.log(prior_positive)
                log_p0 = np.log(1.0 - prior_positive)
                for worker_id, response in obs_by_item[item]:
                    matrix = confusion[worker_id]
                    log_p1 += np.log(max(matrix[1, response], 1e-12))
                    log_p0 += np.log(max(matrix[0, response], 1e-12))
                denominator = np.logaddexp(log_p1, log_p0)
                value = float(np.exp(log_p1 - denominator))
                max_change = max(max_change, abs(value - posterior[item]))
                new_posterior[item] = value
            posterior = new_posterior
            trace.append(max_change)
            if max_change <= self._config.convergence_threshold:
                converged = True
                break

        self._confusion = confusion
        self._probabilities = {}
        for task_id, task in self._tasks.items():
            probs = np.array(
                [posterior.get((task_id, k), 0.5) for k in range(task.num_labels)]
            )
            self._probabilities[task_id] = probs
        self._last_result = DawidSkeneResult(
            iterations=iterations, converged=converged, convergence_trace=trace
        )
        self._fitted = True
        return self

    def label_probabilities(self, task_id: str) -> np.ndarray:
        self._require_fitted()
        self._require_task(task_id)
        return self._probabilities[task_id].copy()

    # ------------------------------------------------------------------ internal
    def _flatten(
        self, answers: AnswerSet
    ) -> tuple[list[tuple[str, int]], list[tuple[str, tuple[str, int], int]]]:
        """Flatten answers into (task, label-index) items and per-item observations."""
        items: set[tuple[str, int]] = set()
        observations: list[tuple[str, tuple[str, int], int]] = []
        for answer in answers:
            task = self._tasks.get(answer.task_id)
            if task is None:
                raise KeyError(f"answer references unknown task {answer.task_id!r}")
            if answer.num_labels != task.num_labels:
                raise ValueError(
                    f"answer for task {task.task_id!r} has {answer.num_labels} labels, "
                    f"task has {task.num_labels}"
                )
            for k, response in enumerate(answer.responses):
                item = (answer.task_id, k)
                items.add(item)
                observations.append((answer.worker_id, item, int(response)))
        # Items with no answers are handled at prediction time (probability 0.5).
        return sorted(items), observations
