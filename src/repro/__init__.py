"""Reproduction of "Crowdsourced POI Labelling: Location-Aware Result Inference
and Task Assignment" (Hu, Zheng, Bao, Li, Feng, Cheng — ICDE 2016).

The package is organised as a small number of substrates plus the paper's core
contribution:

* :mod:`repro.spatial`   — geometry, normalised distances and a grid spatial index.
* :mod:`repro.data`      — POI/task/worker/answer data model, label vocabularies and
  synthetic dataset generators standing in for the paper's Beijing/China datasets.
* :mod:`repro.crowd`     — a crowdsourcing-platform simulator (worker pool, arrival
  process, HIT lifecycle, budget accounting) replacing the ChinaCrowds deployment.
* :mod:`repro.core`      — the location-aware inference model (EM over worker
  inherent quality, distance-aware quality and POI influence), accuracy estimation
  and the AccOpt greedy task assigner.
* :mod:`repro.baselines` — majority voting and Dawid–Skene EM inference baselines.
* :mod:`repro.assign`    — Random / Spatial-First / AccOpt assignment strategies
  behind a common interface.
* :mod:`repro.framework` — the alternating inference/assignment loop from the
  paper's Figure 1 plus experiment drivers and evaluation metrics.
* :mod:`repro.serving`   — the online serving subsystem: streaming answer
  ingestion (micro-batched incremental EM with periodic full refreshes),
  immutable versioned parameter snapshots with ``.npz`` persistence, and a
  live assignment frontend serving each arriving worker against the latest
  snapshot (``repro-poi serve-sim`` runs it end to end).
* :mod:`repro.analysis`  — the data-analysis routines behind every figure and table
  in the paper's evaluation section.

Typical usage::

    from repro import (
        generate_beijing_dataset, WorkerPool, CrowdPlatform,
        LocationAwareInference, PoiLabellingFramework,
    )

See ``examples/quickstart.py`` for an end-to-end run.
"""

from repro.data.models import (
    POI,
    Answer,
    AnswerSet,
    Task,
    Worker,
)
from repro.data.generators import (
    generate_beijing_dataset,
    generate_china_dataset,
    generate_scalability_dataset,
)
from repro.spatial.geometry import GeoPoint
from repro.spatial.distance import DistanceModel
from repro.crowd.worker_pool import WorkerPool, WorkerProfile
from repro.crowd.platform import CrowdPlatform
from repro.core.distance_functions import BellShapedFunction, DistanceFunctionSet
from repro.core.inference import LocationAwareInference
from repro.assign.accopt import AccOptAssigner
from repro.baselines.majority_vote import MajorityVoteInference
from repro.baselines.dawid_skene import DawidSkeneInference
from repro.assign.random_assigner import RandomAssigner
from repro.assign.spatial_first import SpatialFirstAssigner
from repro.framework.framework import PoiLabellingFramework
from repro.framework.config import FrameworkConfig
from repro.framework.metrics import labelling_accuracy
from repro.serving import OnlineServingService, ServingConfig

__version__ = "1.0.0"

__all__ = [
    "POI",
    "Answer",
    "AnswerSet",
    "Task",
    "Worker",
    "GeoPoint",
    "DistanceModel",
    "WorkerPool",
    "WorkerProfile",
    "CrowdPlatform",
    "BellShapedFunction",
    "DistanceFunctionSet",
    "LocationAwareInference",
    "AccOptAssigner",
    "MajorityVoteInference",
    "DawidSkeneInference",
    "RandomAssigner",
    "SpatialFirstAssigner",
    "PoiLabellingFramework",
    "FrameworkConfig",
    "OnlineServingService",
    "ServingConfig",
    "labelling_accuracy",
    "generate_beijing_dataset",
    "generate_china_dataset",
    "generate_scalability_dataset",
    "__version__",
]
