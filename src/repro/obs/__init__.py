"""Unified telemetry substrate: metrics registry, spans, phase attribution.

One :class:`MetricsRegistry` per process collects counters, gauges, and
mergeable log-linear histograms from every serving stage; a :class:`Tracer`
wrapping it hands out ``span("stage", **tags)`` context managers that feed
phase-attributed wall time into the registry (and, optionally, a bounded
trace ring exportable to Chrome ``trace_event`` JSON).

Typical wiring::

    from repro.obs import MetricsRegistry, Tracer, PhaseTimeline

    metrics = MetricsRegistry()
    tracer = Tracer(metrics, ring_capacity=4096)
    timeline = PhaseTimeline(tracer)

    with tracer.span("refresh", batch=7):
        updater.full_refresh(batch)
    timeline.mark(position=answers_seen, wall_seconds=run_timer.split())

    print(timeline.breakdown().render())   # per-quarter stage shares
    metrics.export_jsonl("metrics.jsonl", answers=answers_seen)
    print(metrics.render_prometheus())

Everything is stdlib-only and cheap enough to stay on in the serving hot
path; see ``ROADMAP.md`` for the throughput gates that pin the overhead.
"""

from .metrics import Counter, Gauge, Histogram, HistogramConfig, MetricsRegistry
from .trace import (
    PIPELINE_STAGES,
    PhaseBreakdown,
    PhaseQuarter,
    PhaseTimeline,
    TraceEvent,
    Tracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramConfig",
    "MetricsRegistry",
    "PIPELINE_STAGES",
    "PhaseBreakdown",
    "PhaseQuarter",
    "PhaseTimeline",
    "TraceEvent",
    "Tracer",
]
