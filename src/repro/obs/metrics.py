"""Dependency-free metrics primitives: counters, gauges, histograms, registry.

The serving stack reports into one :class:`MetricsRegistry` per process.  The
registry hands out :class:`Counter`, :class:`Gauge`, and :class:`Histogram`
instruments keyed by ``(name, labels)``; the same key always returns the same
instrument, so call sites can re-resolve instruments cheaply instead of
holding references.

The histogram uses **log-linear buckets**: each power-of-two octave between
``lowest`` and ``highest`` is split into ``sub_buckets`` linear slots.  Counts
are exact, memory is fixed at construction, and two histograms with the same
bucket configuration can be merged by adding their count arrays — the property
that lets per-shard registries be summed into a fleet view later.

Export formats:

- :meth:`MetricsRegistry.snapshot` — a plain dict (JSON-safe).
- :meth:`MetricsRegistry.export_jsonl` — appends one snapshot per line.
- :meth:`MetricsRegistry.render_prometheus` — Prometheus text exposition
  (sparse ``_bucket`` series: only occupied buckets plus ``+Inf``).

Everything here is pure stdlib; no third-party dependencies.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from pathlib import Path
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramConfig",
    "MetricsRegistry",
]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing count (events, retries, failures)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """Point-in-time value (queue depth, chain length, armed faults)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def merge(self, other: "Gauge") -> None:
        # For shard merges the freshest write wins; without timestamps we take
        # the maximum so a merge never hides a worst-case reading.
        self.value = max(self.value, other.value)


class HistogramConfig:
    """Log-linear bucket layout shared by mergeable histograms.

    ``lowest``/``highest`` bound the trackable range; values outside land in
    dedicated underflow/overflow counts.  Each power-of-two octave is split
    into ``sub_buckets`` equal-width slots, so relative error is bounded by
    ``1 / sub_buckets`` at every scale.
    """

    __slots__ = ("lowest", "highest", "sub_buckets", "bounds")

    _cache: dict[tuple[float, float, int], "HistogramConfig"] = {}

    def __new__(
        cls, lowest: float = 1e-7, highest: float = 1e4, sub_buckets: int = 8
    ) -> "HistogramConfig":
        key = (float(lowest), float(highest), int(sub_buckets))
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        if lowest <= 0 or highest <= lowest:
            raise ValueError("need 0 < lowest < highest")
        if sub_buckets < 1:
            raise ValueError("sub_buckets must be >= 1")
        self = super().__new__(cls)
        self.lowest, self.highest, self.sub_buckets = key
        bounds: list[float] = []
        octaves = math.ceil(math.log2(highest / lowest))
        for octave in range(octaves):
            base = lowest * (2.0**octave)
            for slot in range(1, sub_buckets + 1):
                bound = base * (1.0 + slot / sub_buckets)
                if bound >= highest:
                    break
                bounds.append(bound)
        bounds.append(float(highest))
        self.bounds = bounds
        cls._cache[key] = self
        return self

    def __len__(self) -> int:
        return len(self.bounds)


class Histogram:
    """Bounded log-linear histogram with exact counts and fixed memory.

    Values below ``config.lowest`` are counted in the underflow bucket,
    values at or above ``config.highest`` in the overflow bucket; exact
    ``min``/``max`` are kept so percentile queries stay anchored to observed
    values at both tails.
    """

    __slots__ = ("config", "counts", "underflow", "overflow", "count", "sum", "min", "max")

    def __init__(self, config: HistogramConfig | None = None) -> None:
        self.config = config or HistogramConfig()
        self.counts = [0] * len(self.config)
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        cfg = self.config
        if value < cfg.lowest:
            self.underflow += 1
        elif value >= cfg.highest:
            self.overflow += 1
        else:
            self.counts[bisect_left(cfg.bounds, value)] += 1

    def percentile(self, p: float) -> float:
        """Return the value at percentile ``p`` (0..100); 0.0 when empty.

        Within a bucket the value is linearly interpolated between its
        bounds; results are clamped to the observed ``[min, max]`` and are
        monotonically non-decreasing in ``p``.
        """
        if self.count == 0:
            return 0.0
        if p <= 0:
            return self.min
        if p >= 100:
            return self.max
        target = p / 100.0 * self.count
        cum = self.underflow
        if target <= cum:
            return self.min
        cfg = self.config
        for idx, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            upper = cfg.bounds[idx]
            lower = cfg.bounds[idx - 1] if idx > 0 else cfg.lowest
            if target <= cum + bucket_count:
                frac = (target - cum) / bucket_count
                value = lower + frac * (upper - lower)
                return min(max(value, self.min), self.max)
            cum += bucket_count
        return self.max

    def merge(self, other: "Histogram") -> None:
        if self.config is not other.config:
            raise ValueError("cannot merge histograms with different bucket layouts")
        for idx, n in enumerate(other.counts):
            self.counts[idx] += n
        self.underflow += other.underflow
        self.overflow += other.overflow
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self) -> dict:
        empty = self.count == 0
        return {
            "count": self.count,
            "sum": self.sum,
            "min": 0.0 if empty else self.min,
            "max": 0.0 if empty else self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
            "underflow": self.underflow,
            "overflow": self.overflow,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Process-local instrument store keyed by ``(name, labels)``.

    Resolving the same name/labels pair always returns the same instrument;
    resolving an existing pair as a different kind raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelKey], object] = {}
        self._kinds: dict[str, str] = {}

    def _resolve(self, kind: str, name: str, labels: Mapping[str, object], **extra):
        registered = self._kinds.get(name)
        if registered is None:
            self._kinds[name] = kind
        elif registered != kind:
            raise ValueError(
                f"metric {name!r} already registered as {registered}, not {kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = _KINDS[kind](**extra)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: object) -> Counter:
        return self._resolve("counter", name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._resolve("gauge", name, labels)

    def histogram(
        self, name: str, config: HistogramConfig | None = None, **labels: object
    ) -> Histogram:
        return self._resolve("histogram", name, labels, config=config)

    def get(self, name: str, **labels: object):
        """Return the instrument if registered, else ``None`` (no creation)."""
        return self._metrics.get((name, _label_key(labels)))

    def find(self, name: str) -> Iterator[tuple[dict[str, str], object]]:
        """Yield ``(labels, instrument)`` for every series under ``name``."""
        for (metric_name, key), metric in self._metrics.items():
            if metric_name == name:
                yield dict(key), metric

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (per-shard roll-up)."""
        for (name, key), theirs in other._metrics.items():
            kind = other._kinds[name]
            mine = self._resolve(
                kind,
                name,
                dict(key),
                **({"config": theirs.config} if kind == "histogram" else {}),
            )
            mine.merge(theirs)

    def snapshot(self) -> dict:
        """Return a JSON-safe dict of every registered series."""
        series = []
        for (name, key), metric in sorted(self._metrics.items()):
            entry: dict = {"name": name, "labels": dict(key), "kind": self._kinds[name]}
            if isinstance(metric, Histogram):
                entry.update(metric.summary())
            else:
                entry["value"] = metric.value
            series.append(entry)
        return {"series": series}

    def export_jsonl(self, path: str | Path, **stamp: object) -> None:
        """Append one snapshot line to ``path`` (created if missing).

        Keyword arguments (e.g. ``answers=1200``) are recorded alongside the
        series so readers can align snapshots with stream progress.
        """
        record = dict(stamp)
        record.update(self.snapshot())
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":"), sort_keys=True))
            fh.write("\n")

    def render_prometheus(self) -> str:
        """Render the registry in Prometheus text exposition format."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for (name, key), metric in sorted(self._metrics.items()):
            kind = self._kinds[name]
            if name not in seen_types:
                lines.append(f"# TYPE {name} {kind}")
                seen_types.add(name)
            if isinstance(metric, Histogram):
                cum = metric.underflow
                for idx, bucket_count in enumerate(metric.counts):
                    if bucket_count == 0:
                        continue
                    cum += bucket_count
                    bound = metric.config.bounds[idx]
                    labels = _render_labels(key, le=f"{bound:.9g}")
                    lines.append(f"{name}_bucket{labels} {cum}")
                labels = _render_labels(key, le="+Inf")
                lines.append(f"{name}_bucket{labels} {metric.count}")
                lines.append(f"{name}_sum{_render_labels(key)} {metric.sum:.9g}")
                lines.append(f"{name}_count{_render_labels(key)} {metric.count}")
            else:
                lines.append(f"{name}{_render_labels(key)} {metric.value:.9g}")
        return "\n".join(lines) + ("\n" if lines else "")


def _render_labels(key: LabelKey, **extra: str) -> str:
    pairs = list(key) + sorted(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{k}="{v}"' for k, v in pairs)
    return "{" + body + "}"
