"""Lightweight spans with phase attribution and an optional trace ring.

A :class:`Tracer` wraps a :class:`~repro.obs.metrics.MetricsRegistry` and
hands out ``span("stage", **tags)`` context managers.  Every span records its
wall time (measured with :class:`repro.utils.timing.Timer`) into the
``stage_seconds`` histogram labelled by stage, bumps ``stage_calls_total``,
and — when the span body raises — ``stage_errors_total`` labelled by the
exception type before re-raising.  Span durations are *inclusive*: a nested
span's time is also counted in its parent.  The serving pipeline's top-level
stages (guard, journal, apply, refresh, publish, checkpoint, assign) never
nest among themselves, so summing their ``stage_seconds`` attributes wall
time without double counting.

When constructed with ``ring_capacity > 0`` the tracer also keeps the most
recent spans in a bounded ring, exportable with :meth:`Tracer.export_chrome`
to Chrome's ``chrome://tracing`` / Perfetto ``trace_event`` JSON format.

:class:`PhaseTimeline` turns cumulative stage totals sampled at points along
a stream (e.g. every serving round) into a per-quarter phase breakdown — the
instrument that answers "which stage eats the wall time as the stream ages".
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..utils.timing import Timer
from .metrics import MetricsRegistry

__all__ = [
    "PIPELINE_STAGES",
    "PhaseBreakdown",
    "PhaseQuarter",
    "PhaseTimeline",
    "TraceEvent",
    "Tracer",
]

#: Canonical ordering of the serving pipeline stages for reports.
#: ``refresh_wait`` is the ingest thread blocking at a pipelined-refresh
#: integration point (the fit itself runs on a background thread and is
#: deliberately *not* a stage — stage totals attribute the ingest thread's
#: wall time, and overlapped fit time would double-count it).
PIPELINE_STAGES = (
    "guard",
    "journal",
    "apply",
    "refresh",
    "refresh_wait",
    "publish",
    "checkpoint",
    "assign",
)

STAGE_SECONDS = "stage_seconds"
STAGE_CALLS = "stage_calls_total"
STAGE_ERRORS = "stage_errors_total"


@dataclass(frozen=True)
class TraceEvent:
    """One completed span in the ring: offsets are seconds since tracer start."""

    name: str
    start: float
    duration: float
    depth: int
    tags: dict[str, object]
    error: str | None = None


class Tracer:
    """Span factory feeding a metrics registry and an optional trace ring."""

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        *,
        ring_capacity: int = 0,
    ) -> None:
        self.metrics = metrics
        self.ring: deque[TraceEvent] | None = (
            deque(maxlen=ring_capacity) if ring_capacity > 0 else None
        )
        self._depth = 0
        self._epoch = time.perf_counter()

    @contextmanager
    def span(self, stage: str, **tags: object) -> Iterator[Timer]:
        """Time a pipeline stage; yields the running :class:`Timer`.

        The timer is stopped even when the body raises, and the exception is
        attributed (by type name) to the stage before propagating.
        """
        timer = Timer()
        self._depth += 1
        error: str | None = None
        timer.start()
        try:
            yield timer
        except BaseException as exc:
            error = type(exc).__name__
            raise
        finally:
            if timer.running:
                timer.stop()
            self._depth -= 1
            self._record(stage, timer.elapsed, tags, error)

    def record(self, stage: str, duration: float, **tags: object) -> None:
        """Attribute an externally measured duration to ``stage``.

        Used where per-event timing is aggregated into one per-batch
        observation (guard admission, journal appends) instead of opening a
        span around every event.
        """
        self._record(stage, duration, tags, None)

    def _record(
        self, stage: str, duration: float, tags: dict[str, object], error: str | None
    ) -> None:
        if self.metrics is not None:
            self.metrics.histogram(STAGE_SECONDS, stage=stage).observe(duration)
            self.metrics.counter(STAGE_CALLS, stage=stage).inc()
            if error is not None:
                self.metrics.counter(STAGE_ERRORS, stage=stage, error=error).inc()
        if self.ring is not None:
            end = time.perf_counter() - self._epoch
            self.ring.append(
                TraceEvent(
                    name=stage,
                    start=end - duration,
                    duration=duration,
                    depth=self._depth,
                    tags=dict(tags),
                    error=error,
                )
            )

    def stage_totals(self) -> dict[str, float]:
        """Cumulative seconds attributed to each stage so far."""
        totals: dict[str, float] = {}
        if self.metrics is None:
            return totals
        for labels, histogram in self.metrics.find(STAGE_SECONDS):
            stage = labels.get("stage", "?")
            totals[stage] = totals.get(stage, 0.0) + histogram.sum
        return totals

    def export_chrome(self, path: str | Path) -> int:
        """Write the trace ring as Chrome ``trace_event`` JSON; returns #events."""
        events = []
        for event in self.ring or ():
            args: dict[str, object] = dict(event.tags)
            if event.error is not None:
                args["error"] = event.error
            events.append(
                {
                    "name": event.name,
                    "ph": "X",
                    "ts": round(event.start * 1e6, 3),
                    "dur": round(event.duration * 1e6, 3),
                    "pid": 0,
                    "tid": event.depth,
                    "cat": "serving",
                    "args": args,
                }
            )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        path.write_text(json.dumps(payload, separators=(",", ":")), encoding="utf-8")
        return len(events)


@dataclass(frozen=True)
class PhaseQuarter:
    """Per-stage seconds spent inside one quarter of the stream."""

    index: int
    start_position: float
    end_position: float
    wall_seconds: float
    stage_seconds: dict[str, float]

    @property
    def attributed_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    def share(self, stage: str) -> float:
        """Fraction of this quarter's wall time spent in ``stage`` (0.0 if idle)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.stage_seconds.get(stage, 0.0) / self.wall_seconds


@dataclass
class PhaseBreakdown:
    """Phase-attributed wall time, overall and per stream quarter."""

    stages: list[str]
    quarters: list[PhaseQuarter]
    wall_seconds: float
    stage_totals: dict[str, float] = field(default_factory=dict)

    @property
    def attributed_seconds(self) -> float:
        return sum(self.stage_totals.values())

    @property
    def attributed_fraction(self) -> float:
        """Fraction of wall time covered by spans; 0.0 when no wall elapsed."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.attributed_seconds / self.wall_seconds

    def to_dict(self) -> dict:
        return {
            "stages": list(self.stages),
            "wall_seconds": self.wall_seconds,
            "attributed_seconds": self.attributed_seconds,
            "attributed_fraction": self.attributed_fraction,
            "stage_totals": dict(self.stage_totals),
            "quarters": [
                {
                    "index": q.index,
                    "start_position": q.start_position,
                    "end_position": q.end_position,
                    "wall_seconds": q.wall_seconds,
                    "stage_seconds": dict(q.stage_seconds),
                    "stage_shares": {s: q.share(s) for s in self.stages},
                }
                for q in self.quarters
            ],
        }

    def render(self) -> str:
        """Human-readable per-quarter table of stage shares of wall time."""
        header = ["quarter"] + list(self.stages) + ["other", "wall_s"]
        rows = [header]
        for quarter in self.quarters:
            attributed = quarter.attributed_seconds
            other = max(0.0, quarter.wall_seconds - attributed)
            cells = [f"Q{quarter.index + 1}"]
            cells += [f"{quarter.share(stage) * 100.0:5.1f}%" for stage in self.stages]
            other_share = other / quarter.wall_seconds if quarter.wall_seconds > 0 else 0.0
            cells.append(f"{other_share * 100.0:5.1f}%")
            cells.append(f"{quarter.wall_seconds:.3f}")
            rows.append(cells)
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = [
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
            for row in rows
        ]
        lines.append(
            f"attributed {self.attributed_seconds:.3f}s of {self.wall_seconds:.3f}s "
            f"wall ({self.attributed_fraction * 100.0:.1f}%)"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class _Mark:
    position: float
    wall_seconds: float
    totals: dict[str, float]


class PhaseTimeline:
    """Samples cumulative stage totals along a stream for quarterisation.

    Call :meth:`mark` whenever progress is known (per round, per batch) with
    the stream position (e.g. answers ingested) and the loop's wall-clock
    reading; :meth:`breakdown` then splits the stream into equal position
    ranges and differences the cumulative totals at their boundaries.
    """

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._marks: list[_Mark] = [_Mark(0.0, 0.0, {})]

    def mark(self, position: float, wall_seconds: float) -> None:
        self._marks.append(
            _Mark(float(position), float(wall_seconds), self._tracer.stage_totals())
        )

    def breakdown(self, num_quarters: int = 4) -> PhaseBreakdown:
        final = self._marks[-1]
        seen = set(final.totals)
        stages = [s for s in PIPELINE_STAGES if s in seen]
        stages += sorted(seen.difference(PIPELINE_STAGES))
        quarters: list[PhaseQuarter] = []
        if final.position > 0 and num_quarters > 0:
            prev = self._marks[0]
            for index in range(num_quarters):
                boundary = final.position * (index + 1) / num_quarters
                mark = final
                for candidate in self._marks:
                    if candidate.position >= boundary:
                        mark = candidate
                        break
                stage_seconds = {
                    stage: mark.totals.get(stage, 0.0) - prev.totals.get(stage, 0.0)
                    for stage in stages
                }
                quarters.append(
                    PhaseQuarter(
                        index=index,
                        start_position=prev.position,
                        end_position=mark.position,
                        wall_seconds=mark.wall_seconds - prev.wall_seconds,
                        stage_seconds=stage_seconds,
                    )
                )
                prev = mark
        return PhaseBreakdown(
            stages=stages,
            quarters=quarters,
            wall_seconds=final.wall_seconds,
            stage_totals=dict(final.totals),
        )
