"""Command-line interface for the reproduction.

Six subcommands cover the typical workflow without writing any Python:

* ``repro-poi generate``  — generate a synthetic dataset (Beijing / China /
  custom-sized) and write it to JSON.
* ``repro-poi collect``   — simulate a Deployment-1 collection (N answers per
  task) over a dataset and write the answer log to JSON.
* ``repro-poi infer``     — run MV / EM / IM on a dataset + answer log and
  report the labelling accuracy of each requested method.
* ``repro-poi campaign``  — run the full online framework (Deployment 2) with a
  chosen assignment strategy and report the accuracy trajectory.
* ``repro-poi serve-sim`` — replay a simulated workload through the online
  serving subsystem (streaming ingestion, versioned snapshots, live
  assignment) and report ingestion/assignment statistics; the
  ``--holdback-workers`` / ``--holdback-tasks`` flags withhold part of the
  universe at startup and admit it mid-stream (open-world arrival).
* ``repro-poi compare``   — run the online framework once per assignment
  strategy (optionally fanned out over a process pool with ``--jobs``) and
  report the accuracy series side by side.

Example::

    repro-poi generate --dataset beijing --out beijing.json
    repro-poi collect  --dataset-file beijing.json --answers-per-task 5 --out answers.json
    repro-poi infer    --dataset-file beijing.json --answers-file answers.json --methods MV EM IM
    repro-poi campaign --dataset-file beijing.json --budget 300 --assigner accopt
    repro-poi serve-sim --dataset-file beijing.json --budget 300 --holdback-workers 0.3
    repro-poi compare  --dataset-file beijing.json --budget 300 --jobs 3
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.assign import ACCOPT_ENGINES, ASSIGNER_NAMES, build_assigner
from repro.baselines.dawid_skene import DawidSkeneInference
from repro.baselines.majority_vote import MajorityVoteInference
from repro.core.inference import LocationAwareInference
from repro.crowd.worker_pool import WorkerPoolSpec
from repro.data.generators import (
    DatasetSpec,
    generate_beijing_dataset,
    generate_china_dataset,
    generate_dataset,
)
from repro.data.io import load_answers, load_dataset, save_answers, save_dataset
from repro.framework.config import FrameworkConfig
from repro.framework.experiment import build_platform, build_worker_pool
from repro.framework.framework import PoiLabellingFramework
from repro.framework.scenarios import SCENARIO_NAMES
from repro.framework.metrics import labelling_accuracy
from repro.serving import IngestConfig, OnlineServingService, ServingConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-poi",
        description="Crowdsourced POI labelling (ICDE 2016) reproduction CLI",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument(
        "--dataset", choices=("beijing", "china", "synthetic"), default="beijing"
    )
    generate.add_argument("--num-tasks", type=int, default=200,
                          help="task count for --dataset synthetic")
    generate.add_argument("--labels-per-task", type=int, default=10)
    generate.add_argument("--seed", type=int, default=7)
    generate.add_argument("--out", required=True, help="output JSON path")

    collect = subparsers.add_parser(
        "collect", help="simulate a batch answer collection (Deployment 1)"
    )
    collect.add_argument("--dataset-file", required=True)
    collect.add_argument("--answers-per-task", type=int, default=5)
    collect.add_argument("--num-workers", type=int, default=60)
    collect.add_argument("--seed", type=int, default=42)
    collect.add_argument("--out", required=True, help="output JSON path for answers")

    infer = subparsers.add_parser("infer", help="run inference methods on an answer log")
    infer.add_argument("--dataset-file", required=True)
    infer.add_argument("--answers-file", required=True)
    infer.add_argument(
        "--methods", nargs="+", choices=("MV", "EM", "IM"), default=["MV", "EM", "IM"]
    )
    infer.add_argument("--num-workers", type=int, default=60,
                       help="size of the simulated worker pool used for IM's worker registry")
    infer.add_argument("--seed", type=int, default=42)

    campaign = subparsers.add_parser(
        "campaign", help="run the full online framework (Deployment 2)"
    )
    campaign.add_argument("--dataset-file", required=True)
    campaign.add_argument("--budget", type=int, default=300)
    campaign.add_argument("--tasks-per-worker", type=int, default=2)
    campaign.add_argument("--workers-per-round", type=int, default=5)
    campaign.add_argument("--num-workers", type=int, default=60)
    campaign.add_argument(
        "--assigner",
        choices=ASSIGNER_NAMES,
        default="accopt",
    )
    campaign.add_argument(
        "--assigner-engine",
        choices=ACCOPT_ENGINES,
        default="vectorized",
        help="AccOpt ΔAcc scoring path: batched kernels or the scalar reference",
    )
    campaign.add_argument(
        "--candidate-radius",
        type=float,
        default=None,
        help="candidate radius (raw coordinate units) for "
             "--assigner-engine sparse; omitted keeps the dense path",
    )
    campaign.add_argument("--seed", type=int, default=42)

    serve = subparsers.add_parser(
        "serve-sim",
        help="replay a simulated workload through the online serving subsystem",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        epilog=(
            "Crash recovery:\n"
            "  With --state-dir DIR every accepted answer is appended to a\n"
            "  checksummed write-ahead journal in DIR/journal before it is\n"
            "  applied, and (with --checkpoint-interval N > 0) the live model\n"
            "  state is checkpointed to DIR/checkpoints every N applied\n"
            "  answers; each checkpoint truncates the journal segments it\n"
            "  covers.  After a crash, rerun the same command with --resume:\n"
            "  the newest valid checkpoint is loaded (corrupt ones are\n"
            "  skipped), the journal tail is replayed through the ordinary\n"
            "  ingestion path (a torn final record is dropped), and serving\n"
            "  continues with a live estimate matching the uncrashed run.\n"
            "  Use the same --seed so the regenerated workload matches the\n"
            "  crashed session's."
        ),
    )
    serve.add_argument("--dataset-file", default=None,
                       help="dataset JSON; omitted -> a synthetic dataset is generated")
    serve.add_argument(
        "--scenario",
        choices=SCENARIO_NAMES,
        default=None,
        help="hostile-stream preset: generates the workload (pool, drift, "
             "arrivals) and turns on the reputation tracker; incompatible "
             "with --dataset-file",
    )
    serve.add_argument("--num-tasks", type=int, default=None,
                       help="task count when generating a synthetic dataset "
                            "(default 100, or the scenario's own default)")
    serve.add_argument("--budget", type=int, default=None,
                       help="assignment budget (default 300, or the "
                            "scenario's own default)")
    serve.add_argument("--tasks-per-worker", type=int, default=2)
    serve.add_argument("--workers-per-round", type=int, default=5)
    serve.add_argument("--num-workers", type=int, default=None,
                       help="worker pool size (default 60, or the scenario's "
                            "own default)")
    serve.add_argument("--stat-decay", type=float, default=None,
                       help="per-epoch exponential decay of the EM sufficient "
                            "statistics in (0, 1]; 1.0 = exact (default), "
                            "<1 forgets stale evidence; scenarios may set "
                            "their own default (drift uses 0.98)")
    serve.add_argument("--assigner", choices=ASSIGNER_NAMES, default="accopt")
    serve.add_argument(
        "--assigner-engine",
        choices=ACCOPT_ENGINES,
        default="vectorized",
        help="AccOpt ΔAcc scoring path: batched kernels or the scalar reference",
    )
    serve.add_argument(
        "--candidate-radius",
        type=float,
        default=None,
        help="candidate radius (raw coordinate units) for "
             "--assigner-engine sparse; omitted keeps the dense path",
    )
    serve.add_argument("--batch-answers", type=int, default=32,
                       help="micro-batch size (count trigger) of the ingestion layer")
    serve.add_argument("--batch-delay", type=float, default=5.0,
                       help="micro-batch window in simulated seconds (time trigger)")
    serve.add_argument("--full-refresh-interval", type=int, default=200,
                       help="answers between full EM re-fits")
    serve.add_argument("--pipeline", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="overlap full EM re-fits with ingest on a background "
                            "thread (--no-pipeline restores the blocking serial "
                            "loop)")
    serve.add_argument("--pipeline-lag", type=int, default=None, metavar="N",
                       help="answers applied after a background fit launches "
                            "before it is integrated (default: derived from the "
                            "batch size and refresh interval)")
    serve.add_argument("--holdback-workers", type=float, default=0.0,
                       help="fraction of workers withheld from the serving model at "
                            "startup and admitted on first arrival (open world)")
    serve.add_argument("--holdback-tasks", type=float, default=0.0,
                       help="fraction of tasks withheld at startup and released "
                            "gradually mid-stream (open world)")
    serve.add_argument("--tasks-released-per-round", type=int, default=1,
                       help="held-back tasks admitted per arrival round")
    serve.add_argument("--snapshot-out", default=None,
                       help="optional path to save the final parameter snapshot (.npz)")
    serve.add_argument("--state-dir", default=None,
                       help="directory for the durable answer journal and "
                            "checkpoints (omitted -> in-memory only)")
    serve.add_argument("--resume", action="store_true",
                       help="recover from --state-dir (checkpoint + journal "
                            "replay) before serving")
    serve.add_argument("--checkpoint-interval", type=int, default=0,
                       help="applied answers between checkpoints "
                            "(0 disables; requires --state-dir)")
    serve.add_argument("--journal-fsync", action="store_true",
                       help="fsync every journal append (power-loss safe, slower)")
    serve.add_argument("--guard", action="store_true",
                       help="validate events at intake and quarantine malformed "
                            "ones instead of failing the stream")
    serve.add_argument("--metrics-dir", default=None,
                       help="directory for telemetry exports: metrics.jsonl "
                            "snapshots plus a final Prometheus-style rendering")
    serve.add_argument("--metrics-interval", type=int, default=0,
                       help="rounds between periodic metrics.jsonl snapshots "
                            "(0 = final snapshot only; requires --metrics-dir)")
    serve.add_argument("--trace", action="store_true",
                       help="record a bounded span ring and export it as Chrome "
                            "trace_event JSON into --metrics-dir")
    serve.add_argument("--metrics-summary", action="store_true",
                       help="print the full phase-attributed breakdown and the "
                            "registry's key series after the run")
    serve.add_argument("--seed", type=int, default=42)

    compare = subparsers.add_parser(
        "compare",
        help="run the online framework once per assignment strategy and compare",
    )
    compare.add_argument("--dataset-file", required=True)
    compare.add_argument("--budget", type=int, default=300)
    compare.add_argument("--tasks-per-worker", type=int, default=2)
    compare.add_argument("--workers-per-round", type=int, default=5)
    compare.add_argument("--num-workers", type=int, default=60)
    compare.add_argument(
        "--strategies",
        nargs="+",
        choices=ASSIGNER_NAMES,
        default=["accopt", "random", "spatial"],
    )
    compare.add_argument(
        "--jobs", type=int, default=1,
        help="campaigns to run in parallel over a process pool (1 = serial)",
    )
    compare.add_argument("--seed", type=int, default=42)

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "beijing":
        dataset = generate_beijing_dataset(seed=args.seed)
    elif args.dataset == "china":
        dataset = generate_china_dataset(seed=args.seed)
    else:
        spec = DatasetSpec(
            name=f"Synthetic-{args.num_tasks}",
            num_tasks=args.num_tasks,
            labels_per_task=args.labels_per_task,
        )
        dataset = generate_dataset(spec, seed=args.seed)
    path = save_dataset(dataset, args.out)
    print(
        f"wrote {dataset.name}: {len(dataset)} tasks, "
        f"{dataset.total_correct_labels} correct / {dataset.total_incorrect_labels} "
        f"incorrect labels -> {path}"
    )
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset_file)
    pool = build_worker_pool(
        dataset, spec=WorkerPoolSpec(num_workers=args.num_workers), seed=args.seed
    )
    budget = args.answers_per_task * len(dataset.tasks)
    platform = build_platform(
        dataset, budget=budget, worker_pool=pool, seed=args.seed
    )
    answers = platform.collect_batch_answers(
        answers_per_task=args.answers_per_task, seed=args.seed
    )
    path = save_answers(answers, args.out)
    print(f"collected {len(answers)} simulated answers from {len(pool)} workers -> {path}")
    return 0


def _cmd_infer(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset_file)
    answers = load_answers(args.answers_file)
    pool = build_worker_pool(
        dataset, spec=WorkerPoolSpec(num_workers=args.num_workers), seed=args.seed
    )
    platform = build_platform(dataset, budget=1, worker_pool=pool, seed=args.seed)
    distance_model = platform.distance_model

    # IM needs a worker registry covering every worker id in the answer log; the
    # simulated pool uses deterministic ids, so regenerate it with the same seed
    # used at collection time (documented in the --help text).
    known_workers = {worker.worker_id for worker in pool.workers}
    missing = [w for w in answers.worker_ids() if w not in known_workers]
    if missing and "IM" in args.methods:
        print(
            "error: the answer log references workers not present in the regenerated "
            f"pool (e.g. {missing[:3]}); rerun with the --num-workers/--seed used at "
            "collection time",
            file=sys.stderr,
        )
        return 2

    for method in args.methods:
        if method == "MV":
            model = MajorityVoteInference(dataset.tasks)
        elif method == "EM":
            model = DawidSkeneInference(dataset.tasks)
        else:
            model = LocationAwareInference(dataset.tasks, pool.workers, distance_model)
        model.fit(answers)
        accuracy = labelling_accuracy(model.predict_all(), dataset.tasks)
        print(f"{method}: labelling accuracy = {accuracy:.3f}")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset_file)
    pool = build_worker_pool(
        dataset, spec=WorkerPoolSpec(num_workers=args.num_workers), seed=args.seed
    )
    platform = build_platform(
        dataset,
        budget=args.budget,
        worker_pool=pool,
        workers_per_round=args.workers_per_round,
        seed=args.seed,
    )
    distance_model = platform.distance_model
    checkpoints = tuple(
        sorted({max(1, args.budget // 2), max(1, 3 * args.budget // 4), args.budget})
    )
    config = FrameworkConfig(
        budget=args.budget,
        tasks_per_worker=args.tasks_per_worker,
        workers_per_round=args.workers_per_round,
        evaluation_checkpoints=checkpoints,
    )
    inference = LocationAwareInference(
        dataset.tasks, pool.workers, distance_model, config=config.inference
    )
    assigner = build_assigner(
        args.assigner,
        dataset.tasks,
        pool.workers,
        distance_model,
        seed=args.seed,
        engine=args.assigner_engine,
        candidate_radius=args.candidate_radius,
    )

    framework = PoiLabellingFramework(platform, inference, assigner, config=config)
    result = framework.run()
    print(f"campaign finished: {result.rounds} rounds, "
          f"{result.assignments_spent} assignments spent")
    for snapshot in result.snapshots:
        print(f"  after {snapshot.assignments_spent:>5} assignments: "
              f"accuracy = {snapshot.accuracy:.3f}")
    print(f"final accuracy ({args.assigner}): {result.final_accuracy:.3f}")
    return 0


def _metrics_digest(metrics) -> str:
    """One line per registered series: counters/gauges as values, histograms
    as count/p50/p95/max — the terminal view of ``--metrics-summary``."""
    lines = ["metrics:"]
    for entry in metrics.snapshot()["series"]:
        labels = entry["labels"]
        rendered = (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        name = f"{entry['name']}{rendered}"
        if entry["kind"] == "histogram":
            lines.append(
                f"  {name}: count={entry['count']} p50={entry['p50']:.6g} "
                f"p95={entry['p95']:.6g} max={entry['max']:.6g}"
            )
        else:
            lines.append(f"  {name}: {entry['value']:g}")
    return "\n".join(lines)


def _cmd_serve_sim(args: argparse.Namespace) -> int:
    scenario = None
    if args.scenario is not None:
        if args.dataset_file is not None:
            print("--scenario generates its own dataset; drop --dataset-file",
                  file=sys.stderr)
            return 2
        from repro.framework.scenarios import build_scenario

        overrides = {
            key: value
            for key, value in (
                ("num_tasks", args.num_tasks),
                ("num_workers", args.num_workers),
                ("budget", args.budget),
            )
            if value is not None
        }
        scenario = build_scenario(
            args.scenario,
            seed=args.seed,
            stat_decay=args.stat_decay,
            **overrides,
        )
        platform = scenario.platform
        dataset = platform.dataset
        budget = platform.budget.total
    else:
        num_tasks = args.num_tasks if args.num_tasks is not None else 100
        num_workers = args.num_workers if args.num_workers is not None else 60
        budget = args.budget if args.budget is not None else 300
        if args.dataset_file is not None:
            dataset = load_dataset(args.dataset_file)
        else:
            spec = DatasetSpec(name=f"ServeSim-{num_tasks}", num_tasks=num_tasks)
            dataset = generate_dataset(spec, seed=args.seed)
        pool = build_worker_pool(
            dataset, spec=WorkerPoolSpec(num_workers=num_workers), seed=args.seed
        )
        platform = build_platform(
            dataset,
            budget=budget,
            worker_pool=pool,
            workers_per_round=args.workers_per_round,
            seed=args.seed,
        )
    if args.checkpoint_interval and args.state_dir is None:
        print("--checkpoint-interval requires --state-dir", file=sys.stderr)
        return 2
    if args.resume and args.state_dir is None:
        print("--resume requires --state-dir", file=sys.stderr)
        return 2
    if args.metrics_interval and args.metrics_dir is None:
        print("--metrics-interval requires --metrics-dir", file=sys.stderr)
        return 2
    if args.trace and args.metrics_dir is None:
        print("--trace requires --metrics-dir to export into", file=sys.stderr)
        return 2
    from repro.serving import GuardConfig

    if scenario is not None:
        stat_decay = scenario.config.ingest.stat_decay
    elif args.stat_decay is not None:
        stat_decay = args.stat_decay
    else:
        stat_decay = 1.0
    config = ServingConfig(
        strategy=args.assigner,
        assigner_engine=args.assigner_engine,
        candidate_radius=args.candidate_radius,
        tasks_per_worker=args.tasks_per_worker,
        ingest=IngestConfig(
            max_batch_answers=args.batch_answers,
            max_batch_delay=args.batch_delay,
            full_refresh_interval=args.full_refresh_interval,
            checkpoint_interval=args.checkpoint_interval,
            pipeline=args.pipeline,
            pipeline_lag_answers=args.pipeline_lag,
            stat_decay=stat_decay,
        ),
        holdback_worker_fraction=args.holdback_workers,
        holdback_task_fraction=args.holdback_tasks,
        tasks_released_per_round=args.tasks_released_per_round,
        seed=args.seed,
        state_dir=args.state_dir,
        resume=args.resume,
        journal_fsync=args.journal_fsync,
        guard=GuardConfig() if args.guard else None,
        reputation=scenario.config.reputation if scenario is not None else None,
        diurnal=scenario.config.diurnal if scenario is not None else None,
        metrics_dir=args.metrics_dir,
        metrics_interval=args.metrics_interval,
        trace=args.trace,
    )
    service = OnlineServingService(platform, config=config)
    durable = " (durable)" if args.state_dir else ""
    if scenario is not None:
        print(f"scenario {scenario.name}: {scenario.description}")
    print(
        f"serving {dataset.name}: budget {budget}, strategy {args.assigner}, "
        f"micro-batch {args.batch_answers} answers / {args.batch_delay}s window"
        f"{durable}"
    )
    try:
        report = service.run()
    finally:
        service.close()
    print(report.summary())
    if args.metrics_summary:
        print(_metrics_digest(service.metrics))
    if args.metrics_dir:
        print(f"telemetry exported -> {args.metrics_dir}")
    if args.snapshot_out:
        saved = service.save_latest_snapshot(args.snapshot_out)
        if saved is not None:
            print(f"saved latest snapshot -> {saved}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.framework.experiment import (
        build_distance_model,
        compare_assigners,
    )

    dataset = load_dataset(args.dataset_file)
    pool = build_worker_pool(
        dataset, spec=WorkerPoolSpec(num_workers=args.num_workers), seed=args.seed
    )
    distance_model = build_distance_model(dataset)
    checkpoints = tuple(
        sorted({max(1, args.budget // 2), max(1, 3 * args.budget // 4), args.budget})
    )
    config = FrameworkConfig(
        budget=args.budget,
        tasks_per_worker=args.tasks_per_worker,
        workers_per_round=args.workers_per_round,
        evaluation_checkpoints=checkpoints,
    )
    tasks = dataset.tasks
    workers = pool.workers
    factories = {
        name: (
            lambda n=name: build_assigner(
                n, tasks, workers, distance_model, seed=args.seed
            )
        )
        for name in args.strategies
    }
    result = compare_assigners(
        dataset,
        config,
        assigner_factories=factories,
        worker_pool=pool,
        seed=args.seed,
        jobs=args.jobs,
    )
    mode = f"{args.jobs} parallel jobs" if args.jobs > 1 else "serial"
    print(
        f"compared {len(factories)} strategies over budget {args.budget} ({mode})"
    )
    for name in factories:
        series = ", ".join(
            f"{checkpoint}: {accuracy:.3f}"
            for checkpoint, accuracy in zip(result.checkpoints, result.accuracy[name])
        )
        print(f"  {name}: {series}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "collect": _cmd_collect,
    "infer": _cmd_infer,
    "campaign": _cmd_campaign,
    "serve-sim": _cmd_serve_sim,
    "compare": _cmd_compare,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
