"""Accuracy estimation for (hypothetical) task assignments.

Section IV-B of the paper derives how the inference accuracy of a label
``l_{t,k}`` changes when the task is assigned to additional workers:

* ``Acc_{t,k}`` (Equation 15) is ``P(z = 1)`` if the label is truly correct and
  ``P(z = 0)`` otherwise — since the truth is unknown, both branches are carried
  around as a pair;
* assigning the task to a single new worker ``w`` with estimated answer
  accuracy ``P(z = r_w)`` changes the pair according to Equation 18;
* Lemma 1 shows the result is independent of the order in which workers answer,
  and Lemma 2 turns the exponential enumeration over answer combinations into a
  linear-time recursion;
* the expected accuracy improvement ΔAcc (Equation 20) weights the two branches
  by the current ``P(z)``.

:class:`LabelAccuracy` is the per-label pair with its recursion;
:class:`AccuracyEstimator` wires it to the model parameters, the answer set and
the distance model so the assigner can ask "what do I gain by assigning task
``t`` to worker ``w`` (given who else already has it this round)?".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.core.params import ModelParameters
from repro.data.models import AnswerSet, Task, Worker
from repro.spatial.distance import DistanceModel


@dataclass(frozen=True)
class LabelAccuracy:
    """The accuracy pair of one label under both truth hypotheses.

    Attributes
    ----------
    p_z1:
        The current inference ``P(z_{t,k} = 1)``; stays fixed while hypothetical
        workers are added (it is the weight used by ΔAcc, Equation 20).
    acc_if_correct:
        Expected accuracy if the label is truly correct (``z ≡ 1``).
    acc_if_incorrect:
        Expected accuracy if the label is truly incorrect (``z ≡ 0``).
    effective_answers:
        ``|W(t)| + |Ŵ(t)|`` — real answers plus hypothetical workers added so far.
    """

    p_z1: float
    acc_if_correct: float
    acc_if_incorrect: float
    effective_answers: int

    @classmethod
    def from_current_inference(cls, p_z1: float, answer_count: int) -> "LabelAccuracy":
        """The baseline pair before any hypothetical assignment (Equation 15)."""
        if not 0.0 <= p_z1 <= 1.0:
            raise ValueError(f"p_z1 must be in [0, 1], got {p_z1}")
        if answer_count < 0:
            raise ValueError(f"answer_count must be non-negative, got {answer_count}")
        return cls(
            p_z1=p_z1,
            acc_if_correct=p_z1,
            acc_if_incorrect=1.0 - p_z1,
            effective_answers=answer_count,
        )

    def add_worker(self, answer_accuracy: float) -> "LabelAccuracy":
        """Apply Lemma 2's recursion for one additional worker.

        ``answer_accuracy`` is the estimated ``P(z = r_w)`` of the new worker on
        this task (Equation 9).
        """
        if not 0.0 <= answer_accuracy <= 1.0:
            raise ValueError(
                f"answer_accuracy must be in [0, 1], got {answer_accuracy}"
            )
        m = self.effective_answers
        pe = answer_accuracy
        new_correct = (
            (m * self.acc_if_correct + pe) / (m + 1) * pe
            + (m * self.acc_if_correct + (1.0 - pe)) / (m + 1) * (1.0 - pe)
        )
        new_incorrect = (
            (m * self.acc_if_incorrect + pe) / (m + 1) * pe
            + (m * self.acc_if_incorrect + (1.0 - pe)) / (m + 1) * (1.0 - pe)
        )
        return LabelAccuracy(
            p_z1=self.p_z1,
            acc_if_correct=new_correct,
            acc_if_incorrect=new_incorrect,
            effective_answers=m + 1,
        )

    def add_workers(self, answer_accuracies: Sequence[float]) -> "LabelAccuracy":
        """Apply the recursion for several additional workers (order irrelevant)."""
        state = self
        for accuracy in answer_accuracies:
            state = state.add_worker(accuracy)
        return state

    def expected_improvement_over(self, baseline: "LabelAccuracy") -> float:
        """ΔAcc relative to ``baseline`` (Equation 20)."""
        return self.p_z1 * (self.acc_if_correct - baseline.acc_if_correct) + (
            1.0 - self.p_z1
        ) * (self.acc_if_incorrect - baseline.acc_if_incorrect)

    @property
    def expected_accuracy(self) -> float:
        """The truth-weighted expected accuracy ``P(z=1)·Acc₁ + P(z=0)·Acc₀``."""
        return self.p_z1 * self.acc_if_correct + (1.0 - self.p_z1) * self.acc_if_incorrect


def enumerate_expected_accuracy(
    p_z1: float, answer_count: int, answer_accuracies: Sequence[float]
) -> LabelAccuracy:
    """Exponential-time reference computation of ``Acc_{t,k}(Ŵ(t))``.

    Enumerates every combination of agree/disagree answers from the
    hypothetical workers, exactly as the definition preceding Lemma 2 requires.
    Only used by tests to validate that :meth:`LabelAccuracy.add_workers`
    (the linear-time recursion) matches the definition.
    """
    baseline = LabelAccuracy.from_current_inference(p_z1, answer_count)
    n = len(answer_accuracies)
    if n == 0:
        return baseline

    total_correct = 0.0
    total_incorrect = 0.0
    for agreement in product((True, False), repeat=n):
        probability = 1.0
        contribution = 0.0
        for agrees, pe in zip(agreement, answer_accuracies):
            probability *= pe if agrees else (1.0 - pe)
            contribution += pe if agrees else (1.0 - pe)
        posterior_correct = (
            answer_count * baseline.acc_if_correct + contribution
        ) / (answer_count + n)
        posterior_incorrect = (
            answer_count * baseline.acc_if_incorrect + contribution
        ) / (answer_count + n)
        total_correct += probability * posterior_correct
        total_incorrect += probability * posterior_incorrect

    return LabelAccuracy(
        p_z1=p_z1,
        acc_if_correct=total_correct,
        acc_if_incorrect=total_incorrect,
        effective_answers=answer_count + n,
    )


class AccuracyEstimator:
    """Estimates answer accuracies and assignment gains from the current model.

    Combines the estimated :class:`~repro.core.params.ModelParameters`, the
    answer set (for ``|W(t)|``) and the distance model.  The paper's footnote 3
    is honoured through :class:`ModelParameters`: unseen workers and tasks get
    optimistic priors so they are explored early.
    """

    def __init__(
        self,
        tasks: dict[str, Task],
        workers: dict[str, Worker],
        distance_model: DistanceModel,
        parameters: ModelParameters,
        answers: AnswerSet,
    ) -> None:
        self._tasks = tasks
        self._workers = workers
        self._distance_model = distance_model
        self._parameters = parameters
        self._answers = answers

    @property
    def parameters(self) -> ModelParameters:
        return self._parameters

    def answer_accuracy(self, worker_id: str, task_id: str) -> float:
        """Estimated ``P(z = r)`` of ``worker_id`` on ``task_id`` (Equation 9)."""
        task = self._tasks[task_id]
        worker = self._workers[worker_id]
        distance = self._distance_model.worker_task_distance(
            worker.locations, task.location
        )
        return self._parameters.answer_accuracy(worker_id, task_id, distance)

    def current_label_accuracies(self, task_id: str) -> list[LabelAccuracy]:
        """Baseline accuracy pairs for every label of ``task_id``."""
        task = self._tasks[task_id]
        params = self._parameters.task(task_id, num_labels=task.num_labels)
        answer_count = self._answers.answer_count_of_task(task_id)
        return [
            LabelAccuracy.from_current_inference(float(p), answer_count)
            for p in params.label_probs
        ]

    def task_improvement(
        self,
        task_id: str,
        worker_id: str,
        current_states: Sequence[LabelAccuracy] | None = None,
        baselines: Sequence[LabelAccuracy] | None = None,
    ) -> tuple[float, list[LabelAccuracy]]:
        """Expected total ΔAcc of assigning ``task_id`` to ``worker_id``.

        ``current_states`` carries the accuracy pairs already reflecting other
        workers tentatively assigned to the task this round (the greedy
        algorithm's ``Ŵ(t)``); ``baselines`` are the pre-round pairs used as the
        reference point of the improvement.  Returns the summed improvement over
        the task's labels and the new per-label states.
        """
        if current_states is None:
            current_states = self.current_label_accuracies(task_id)
            if baselines is None:
                # Neither side supplied: the current state IS the baseline, so
                # share the pairs instead of recomputing them (LabelAccuracy is
                # frozen, making the aliasing safe).
                baselines = current_states
        elif baselines is None:
            baselines = self.current_label_accuracies(task_id)
        answer_accuracy = self.answer_accuracy(worker_id, task_id)
        new_states = [state.add_worker(answer_accuracy) for state in current_states]
        improvement = sum(
            new.expected_improvement_over(base)
            for new, base in zip(new_states, baselines)
        )
        return improvement, new_states
