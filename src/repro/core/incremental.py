"""Incremental EM updates between full re-runs (Section III-D of the paper).

Running full EM after every single answer submission would be wasteful, so the
paper refreshes the model in two tiers:

* a **full EM run** every ``full_refresh_interval`` submissions, and
* an **incremental update** (Neal & Hinton style partial EM) after each batch of
  new answers in between: only the parameters of the workers who submitted the
  answers and of the tasks they touched are re-estimated, using the current
  values of everything else.

:class:`IncrementalUpdater` implements the second tier on top of a
:class:`~repro.core.inference.LocationAwareInference` instance, and keeps a
counter so the framework knows when a full refresh is due.

The updater honours the inference model's configured EM engine.  With the
default ``engine="vectorized"`` it maintains a **live, incrementally grown**
:class:`~repro.core.em_kernel.AnswerTensor` spanning the whole answer log:
each micro-batch appends its new answer rows (registering workers and tasks
unseen at startup on first sight — the open-world arrival path), extends the
tensor's per-entity row indexes in place, and runs its localized sweeps with
:func:`repro.core.em_kernel.em_step_localized` directly against the live
tensor and a live row-aligned
:class:`~repro.core.params.ArrayParameterStore` — nothing is rebuilt per
batch, so the per-sweep cost is ``O(R · |L_t| · |F|)`` array work over the
``R`` relevant rows (gathered through the tensor's own indexes) regardless of
how long the stream has run.  ``engine="reference"`` keeps the original
per-record sweep for equivalence testing.

The refreshed estimate is still published copy-on-write — unaffected entities
share their parameter objects with the previous estimate — and
:meth:`IncrementalUpdater.publish_store` hands the serving layer a compact
array copy of the live store (plus any carried-over entities the log does not
cover, e.g. after a snapshot restore) without flattening a ``ModelParameters``
dict per publish.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.core import em_kernel
from repro.core.inference import LocationAwareInference, _AnswerRecord
from repro.core.params import (
    ArrayParameterStore,
    ModelParameters,
    TaskParameters,
    WorkerParameters,
    _trusted_task_parameters,
    _trusted_worker_parameters,
)
from repro.data.models import Answer, AnswerSet


@dataclass
class IncrementalUpdater:
    """Applies localized EM updates for freshly submitted answers.

    Parameters
    ----------
    inference:
        The underlying inference model (provides the E-step math, the distance
        model and the task/worker registries).
    full_refresh_interval:
        Number of answer submissions after which the caller should run full EM
        again (the paper suggests every 100 submissions).
    local_iterations:
        How many localized E/M sweeps to run per incremental update; one is the
        classic incremental-EM step, a couple more tightens the estimate at
        negligible cost because only the affected entities are touched.
    """

    inference: LocationAwareInference
    full_refresh_interval: int = 100
    local_iterations: int = 2
    answers_since_full_refresh: int = field(default=0, init=False)
    # Live incremental state of the vectorized engine: the growing tensor, the
    # row-aligned store, and the estimate object the store was last synced
    # with (identity-compared so an externally produced estimate — e.g. a full
    # re-fit — triggers a re-sync).
    _tensor: em_kernel.AnswerTensor | None = field(
        default=None, init=False, repr=False
    )
    _store: ArrayParameterStore | None = field(default=None, init=False, repr=False)
    _synced_params: ModelParameters | None = field(
        default=None, init=False, repr=False
    )
    # Carried-over entities the answer log does not cover (restored snapshots):
    # they ride along on every publish until the stream re-answers them.
    _extra_workers: dict[str, WorkerParameters] = field(
        default_factory=dict, init=False, repr=False
    )
    _extra_tasks: dict[str, TaskParameters] = field(
        default_factory=dict, init=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.full_refresh_interval <= 0:
            raise ValueError(
                f"full_refresh_interval must be positive, got {self.full_refresh_interval}"
            )
        if self.local_iterations <= 0:
            raise ValueError(
                f"local_iterations must be positive, got {self.local_iterations}"
            )

    @property
    def full_refresh_due(self) -> bool:
        """Whether enough answers have accumulated to warrant a full EM re-run."""
        return self.answers_since_full_refresh >= self.full_refresh_interval

    def notify_full_refresh(self) -> None:
        """Reset the counter after the caller has run full EM."""
        self.answers_since_full_refresh = 0

    def apply(
        self,
        answers: AnswerSet,
        new_answers: list[Answer],
        parameters: ModelParameters | ArrayParameterStore | None = None,
    ) -> ModelParameters:
        """Update parameters for the workers/tasks touched by ``new_answers``.

        ``answers`` must already contain ``new_answers``.  ``parameters`` may
        be a live :class:`~repro.core.params.ModelParameters` estimate or an
        :class:`~repro.core.params.ArrayParameterStore` snapshot to warm-start
        from (the serving path's restore case).  Returns the updated
        :class:`~repro.core.params.ModelParameters` (also stored on the
        underlying inference model so subsequent predictions reflect it).
        """
        if isinstance(parameters, ArrayParameterStore):
            parameters = parameters.to_model()
        if not new_answers:
            return parameters if parameters is not None else self.inference.parameters

        # No defensive copy: both update paths below build a fresh
        # ModelParameters and never mutate their input estimate.
        params = parameters or self.inference.parameters
        self.answers_since_full_refresh += len(new_answers)

        affected_workers = {answer.worker_id for answer in new_answers}
        affected_tasks = {answer.task_id for answer in new_answers}

        if self.inference.config.engine == "reference":
            # Answers relevant to the localized update: everything involving an
            # affected worker (to re-estimate that worker's quality) or an
            # affected task (to re-estimate its labels and influence),
            # gathered through the answer set's per-worker/per-task indexes.
            relevant = self._relevant_answers(
                answers, affected_workers, affected_tasks
            )
            records = self.inference._build_records(AnswerSet(relevant))
            for _ in range(self.local_iterations):
                params = self._local_maximisation(
                    records, params, affected_workers, affected_tasks
                )
        else:
            params = self._vectorized_update(
                answers, new_answers, params, affected_workers, affected_tasks
            )

        # Publish the refreshed estimate on the inference model.
        self.inference._parameters = params
        self.inference._fitted = True
        return params

    # -------------------------------------------------------------- live state
    @property
    def live_tensor(self) -> em_kernel.AnswerTensor | None:
        """The incrementally maintained tensor (``None`` before the first sync)."""
        return self._tensor

    @property
    def live_store(self) -> ArrayParameterStore | None:
        """The live row-aligned parameter store (``None`` before the first sync)."""
        return self._store

    def _sync(self, answers: AnswerSet, params: ModelParameters) -> None:
        """(Re)build the live tensor/store from scratch.

        Runs once at cold start and once after every externally produced
        estimate (a periodic full re-fit, a restored snapshot) — every
        micro-batch in between only appends.
        """
        tensor = self.inference._build_tensor(answers)
        tensor.enable_row_tracking()
        store = params.to_array_store(
            tensor.worker_ids, tensor.task_ids, tensor.num_labels
        )
        # Sticky carryover: entities the estimate (or an earlier restore)
        # knows but the log does not cover.  Entities now present in the
        # tensor are owned by the live store instead.
        seen_workers = set(tensor.worker_ids)
        seen_tasks = set(tensor.task_ids)
        for worker_id in list(self._extra_workers):
            if worker_id in seen_workers:
                del self._extra_workers[worker_id]
        for task_id in list(self._extra_tasks):
            if task_id in seen_tasks:
                del self._extra_tasks[task_id]
        for worker_id, worker in params.workers.items():
            if worker_id not in seen_workers:
                self._extra_workers[worker_id] = worker
        for task_id, task in params.tasks.items():
            if task_id not in seen_tasks:
                self._extra_tasks[task_id] = task
        self._tensor = tensor
        self._store = store
        self._synced_params = params

    def _admit_new_entities(self, result: em_kernel.TensorAppendResult) -> None:
        """Grow the live store in lock-step with entities the tensor admitted.

        First-seen entities carried over from a restored snapshot resume from
        their carried values; genuinely unseen ones receive the footnote-3
        trusted priors (the exact fallback ``ModelParameters.worker`` /
        ``ModelParameters.task`` would apply).
        """
        store = self._store
        for worker_id in result.new_worker_ids:
            carried = self._extra_workers.pop(worker_id, None)
            if carried is not None:
                store.add_worker(
                    worker_id, carried.p_qualified, carried.distance_weights.copy()
                )
            else:
                store.add_worker(worker_id)
        for task_id in result.new_task_ids:
            num_labels = self.inference._tasks[task_id].num_labels
            carried = self._extra_tasks.pop(task_id, None)
            if carried is not None and carried.num_labels == num_labels:
                store.add_task(
                    task_id,
                    num_labels,
                    carried.label_probs.copy(),
                    carried.influence_weights.copy(),
                )
            else:
                store.add_task(task_id, num_labels)

    def prime_carryover(
        self, parameters: ModelParameters | ArrayParameterStore
    ) -> None:
        """Seed the carryover set from a pre-existing estimate.

        Used by the serving layer after a snapshot restore: every entity of
        ``parameters`` rides along on publishes until the stream covers it
        (the next sync prunes entities the answer log re-acquires).
        """
        if isinstance(parameters, ArrayParameterStore):
            parameters = parameters.to_model()
        for worker_id, worker in parameters.workers.items():
            self._extra_workers.setdefault(worker_id, worker)
        for task_id, task in parameters.tasks.items():
            self._extra_tasks.setdefault(task_id, task)

    def publish_store(
        self,
        answers: AnswerSet,
        parameters: ModelParameters | ArrayParameterStore | None = None,
    ) -> ArrayParameterStore:
        """Snapshot-ready compact copy of the current estimate, array-first.

        Returns a fresh :class:`~repro.core.params.ArrayParameterStore`
        covering the live universe plus any carried-over entities, without
        flattening a ``ModelParameters`` dict — the serving layer's per-publish
        cost is one C-level array copy.  Re-syncs first if the inference
        model's estimate was replaced since the last micro-batch (e.g. by a
        periodic full re-fit).  With ``engine="reference"`` (which never
        maintains live state) the estimate is flattened directly instead —
        rebuilding the live tensor per publish would cost O(answer log) each
        time only to be discarded.
        """
        params = parameters
        if isinstance(params, ArrayParameterStore):
            params = params.to_model()
        if params is None:
            params = self.inference.parameters
        if self.inference.config.engine == "reference":
            return self._flatten_params(params)
        if self._tensor is None or self._synced_params is not params:
            self._sync(answers, params)
        out = self._store.copy()
        for worker_id in sorted(self._extra_workers):
            carried = self._extra_workers[worker_id]
            out.add_worker(
                worker_id, carried.p_qualified, carried.distance_weights.copy()
            )
        for task_id in sorted(self._extra_tasks):
            carried = self._extra_tasks[task_id]
            out.add_task(
                task_id,
                carried.num_labels,
                carried.label_probs.copy(),
                carried.influence_weights.copy(),
            )
        return out

    def _flatten_params(self, params: ModelParameters) -> ArrayParameterStore:
        """Flatten ``params`` (plus carryover) the dict way — reference path."""
        workers = dict(self._extra_workers)
        workers.update(params.workers)
        tasks = dict(self._extra_tasks)
        tasks.update(params.tasks)
        merged = ModelParameters(
            function_set=params.function_set,
            alpha=params.alpha,
            workers=workers,
            tasks=tasks,
        )
        task_ids = sorted(tasks)
        return merged.to_array_store(
            sorted(workers), task_ids, [tasks[task_id].num_labels for task_id in task_ids]
        )

    # ------------------------------------------------------------------ internal
    @staticmethod
    def _relevant_answers(
        answers: AnswerSet,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> list[Answer]:
        """Union of the affected workers' and tasks' answers, deduplicated.

        Deterministic regardless of submission order: affected workers in
        sorted order (each worker's answers sorted by task), then the affected
        tasks' remaining answers (sorted by worker).
        """
        seen: set[tuple[str, str]] = set()
        relevant: list[Answer] = []
        for worker_id in sorted(affected_workers):
            for answer in answers.answers_of_worker(worker_id):
                seen.add((answer.worker_id, answer.task_id))
                relevant.append(answer)
        for task_id in sorted(affected_tasks):
            for answer in answers.answers_of_task(task_id):
                key = (answer.worker_id, answer.task_id)
                if key not in seen:
                    seen.add(key)
                    relevant.append(answer)
        return relevant

    def _vectorized_update(
        self,
        answers: AnswerSet,
        new_answers: list[Answer],
        params: ModelParameters,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> ModelParameters:
        """Localized sweeps against the live tensor, masked to affected rows.

        The micro-batch is appended to the incrementally maintained tensor
        (admitting first-seen workers/tasks into the row-aligned live store),
        the relevant answer rows are gathered through the tensor's per-entity
        indexes, and each sweep runs
        :func:`repro.core.em_kernel.em_step_localized` in place — unaffected
        entities keep their current estimates, exactly like the per-record
        sweep that never accumulates sums for them.  Nothing is rebuilt per
        batch; a full rebuild only happens when the estimate was replaced
        outside this updater (cold start, full re-fit, snapshot restore).
        """
        if self._tensor is None or self._synced_params is not params:
            # ``answers`` already contains ``new_answers``; the rebuilt tensor
            # covers them, and the append below degenerates to in-place
            # response rewrites of their rows.
            self._sync(answers, params)
        tensor = self._tensor
        store = self._store
        result = tensor.append_answers(
            new_answers,
            self.inference._tasks,
            self.inference._workers,
            self.inference.distance_model,
            store.function_set,
        )
        self._admit_new_entities(result)

        affected_w = np.asarray(
            sorted(tensor.worker_row(w) for w in affected_workers), dtype=np.intp
        )
        affected_t = np.asarray(
            sorted(tensor.task_row(t) for t in affected_tasks), dtype=np.intp
        )
        offsets = store.label_offsets
        label_slots = np.concatenate(
            [
                np.arange(int(offsets[j]), int(offsets[j + 1]), dtype=np.intp)
                for j in affected_t
            ]
        )
        # Relevant rows: every answer of every affected worker (to re-estimate
        # that worker's quality) or affected task (labels and influence),
        # through the tensor's per-entity row indexes.
        relevant_rows = np.unique(
            np.fromiter(
                itertools.chain.from_iterable(
                    [tensor.rows_of_worker(int(i)) for i in affected_w]
                    + [tensor.rows_of_task(int(j)) for j in affected_t]
                ),
                dtype=np.intp,
            )
        )
        for _ in range(self.local_iterations):
            em_kernel.em_step_localized(
                tensor, store, relevant_rows, affected_w, affected_t, label_slots
            )

        # Copy-on-write publish: share the unaffected entities' parameter
        # objects (nothing in the system mutates them in place) and replace
        # only the affected entries.  A deep copy here costs a full
        # re-validation of every entity per micro-batch — it was the serving
        # path's dominant late-stream cost, far above the EM sweep itself.
        new_params = ModelParameters(
            function_set=params.function_set,
            alpha=params.alpha,
            workers=dict(params.workers),
            tasks=dict(params.tasks),
        )
        for worker_id in affected_workers:
            i = tensor.worker_row(worker_id)
            new_params.workers[worker_id] = _trusted_worker_parameters(
                float(store.p_qualified[i]), store.distance_weights[i].copy()
            )
        for task_id in affected_tasks:
            j = tensor.task_row(task_id)
            new_params.tasks[task_id] = _trusted_task_parameters(
                store.label_probs[store.task_label_slice(j)].copy(),
                store.influence_weights[j].copy(),
            )
        self._synced_params = new_params
        return new_params

    def _local_maximisation(
        self,
        records: list[_AnswerRecord],
        params: ModelParameters,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> ModelParameters:
        """One E+M sweep restricted to the affected workers and tasks."""
        function_count = len(self.inference.config.function_set)

        z_sums: dict[str, np.ndarray] = {}
        z_counts: dict[str, int] = {}
        dt_sums: dict[str, np.ndarray] = {}
        dt_counts: dict[str, int] = {}
        i_sums: dict[str, float] = {}
        i_counts: dict[str, int] = {}
        dw_sums: dict[str, np.ndarray] = {}

        for record in records:
            post_z1, post_i1, post_dw, post_dt, _ = self.inference._expectation(
                record, params
            )
            n_labels = record.responses.size

            if record.task_id in affected_tasks:
                if record.task_id not in z_sums:
                    z_sums[record.task_id] = np.zeros(n_labels)
                    z_counts[record.task_id] = 0
                    dt_sums[record.task_id] = np.zeros(function_count)
                    dt_counts[record.task_id] = 0
                z_sums[record.task_id] += post_z1
                z_counts[record.task_id] += 1
                dt_sums[record.task_id] += post_dt.sum(axis=0)
                dt_counts[record.task_id] += n_labels

            if record.worker_id in affected_workers:
                if record.worker_id not in i_sums:
                    i_sums[record.worker_id] = 0.0
                    i_counts[record.worker_id] = 0
                    dw_sums[record.worker_id] = np.zeros(function_count)
                i_sums[record.worker_id] += float(post_i1.sum())
                i_counts[record.worker_id] += n_labels
                dw_sums[record.worker_id] += post_dw.sum(axis=0)

        new_params = params.copy()
        for task_id in z_sums:
            count = max(1, z_counts[task_id])
            influence = dt_sums[task_id] / max(1, dt_counts[task_id])
            total = influence.sum()
            influence = (
                influence / total
                if total > 0
                else self.inference.config.function_set.uniform_weights()
            )
            new_params.tasks[task_id] = TaskParameters(
                label_probs=np.clip(z_sums[task_id] / count, 0.0, 1.0),
                influence_weights=influence,
            )
        for worker_id in i_sums:
            count = max(1, i_counts[worker_id])
            weights = dw_sums[worker_id] / count
            total = weights.sum()
            weights = (
                weights / total
                if total > 0
                else self.inference.config.function_set.uniform_weights()
            )
            new_params.workers[worker_id] = WorkerParameters(
                p_qualified=min(1.0, max(0.0, i_sums[worker_id] / count)),
                distance_weights=weights,
            )
        return new_params
