"""Incremental EM updates between full re-runs (Section III-D of the paper).

Running full EM after every single answer submission would be wasteful, so the
paper refreshes the model in two tiers:

* a **full EM run** every ``full_refresh_interval`` submissions, and
* an **incremental update** (Neal & Hinton style partial EM) after each batch of
  new answers in between: only the parameters of the workers who submitted the
  answers and of the tasks they touched are re-estimated, using the current
  values of everything else.

:class:`IncrementalUpdater` implements the second tier on top of a
:class:`~repro.core.inference.LocationAwareInference` instance, and keeps a
counter so the framework knows when a full refresh is due.

The updater honours the inference model's configured EM engine: with the
default ``engine="vectorized"`` the relevant answers are flattened into an
:class:`~repro.core.em_kernel.AnswerTensor` and each localized sweep runs the
same batched kernel as full EM (:func:`repro.core.em_kernel.em_step`), after
which only the rows of the affected workers/tasks are written back — cost per
sweep is ``O(R · |L_t| · |F|)`` array work, where ``R`` is the number of
relevant answers (typically a small neighbourhood of the new submissions),
instead of a Python loop over those records.  ``engine="reference"`` keeps the
original per-record sweep for equivalence testing.

The relevant answers are gathered through the answer set's per-worker and
per-task indexes (``T(w)`` / ``W(t)``, maintained on every append) rather than
a scan of the whole log, and the refreshed estimate is published copy-on-write
— unaffected entities share their parameter objects with the previous
estimate — so the per-batch cost tracks the affected neighbourhood, not the
total stream length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import em_kernel
from repro.core.inference import LocationAwareInference, _AnswerRecord
from repro.core.params import (
    ArrayParameterStore,
    ModelParameters,
    TaskParameters,
    WorkerParameters,
    _trusted_task_parameters,
    _trusted_worker_parameters,
)
from repro.data.models import Answer, AnswerSet


@dataclass
class IncrementalUpdater:
    """Applies localized EM updates for freshly submitted answers.

    Parameters
    ----------
    inference:
        The underlying inference model (provides the E-step math, the distance
        model and the task/worker registries).
    full_refresh_interval:
        Number of answer submissions after which the caller should run full EM
        again (the paper suggests every 100 submissions).
    local_iterations:
        How many localized E/M sweeps to run per incremental update; one is the
        classic incremental-EM step, a couple more tightens the estimate at
        negligible cost because only the affected entities are touched.
    """

    inference: LocationAwareInference
    full_refresh_interval: int = 100
    local_iterations: int = 2
    answers_since_full_refresh: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.full_refresh_interval <= 0:
            raise ValueError(
                f"full_refresh_interval must be positive, got {self.full_refresh_interval}"
            )
        if self.local_iterations <= 0:
            raise ValueError(
                f"local_iterations must be positive, got {self.local_iterations}"
            )

    @property
    def full_refresh_due(self) -> bool:
        """Whether enough answers have accumulated to warrant a full EM re-run."""
        return self.answers_since_full_refresh >= self.full_refresh_interval

    def notify_full_refresh(self) -> None:
        """Reset the counter after the caller has run full EM."""
        self.answers_since_full_refresh = 0

    def apply(
        self,
        answers: AnswerSet,
        new_answers: list[Answer],
        parameters: ModelParameters | ArrayParameterStore | None = None,
    ) -> ModelParameters:
        """Update parameters for the workers/tasks touched by ``new_answers``.

        ``answers`` must already contain ``new_answers``.  ``parameters`` may
        be a live :class:`~repro.core.params.ModelParameters` estimate or an
        :class:`~repro.core.params.ArrayParameterStore` snapshot to warm-start
        from (the serving path's restore case).  Returns the updated
        :class:`~repro.core.params.ModelParameters` (also stored on the
        underlying inference model so subsequent predictions reflect it).
        """
        if isinstance(parameters, ArrayParameterStore):
            parameters = parameters.to_model()
        if not new_answers:
            return parameters if parameters is not None else self.inference.parameters

        # No defensive copy: both update paths below build a fresh
        # ModelParameters and never mutate their input estimate.
        params = parameters or self.inference.parameters
        self.answers_since_full_refresh += len(new_answers)

        affected_workers = {answer.worker_id for answer in new_answers}
        affected_tasks = {answer.task_id for answer in new_answers}

        # Answers relevant to the localized update: everything involving an
        # affected worker (to re-estimate that worker's quality) or an affected
        # task (to re-estimate its labels and influence).  Gathered through the
        # answer set's per-worker/per-task indexes (maintained on append by
        # AnswerSet.add) so the cost is O(relevant) instead of a scan over the
        # whole, ever-growing answer log per micro-batch.
        relevant = self._relevant_answers(answers, affected_workers, affected_tasks)
        if self.inference.config.engine == "reference":
            records = self.inference._build_records(AnswerSet(relevant))
            for _ in range(self.local_iterations):
                params = self._local_maximisation(
                    records, params, affected_workers, affected_tasks
                )
        else:
            params = self._vectorized_update(
                AnswerSet(relevant), params, affected_workers, affected_tasks
            )

        # Publish the refreshed estimate on the inference model.
        self.inference._parameters = params
        self.inference._fitted = True
        return params

    # ------------------------------------------------------------------ internal
    @staticmethod
    def _relevant_answers(
        answers: AnswerSet,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> list[Answer]:
        """Union of the affected workers' and tasks' answers, deduplicated.

        Deterministic regardless of submission order: affected workers in
        sorted order (each worker's answers sorted by task), then the affected
        tasks' remaining answers (sorted by worker).
        """
        seen: set[tuple[str, str]] = set()
        relevant: list[Answer] = []
        for worker_id in sorted(affected_workers):
            for answer in answers.answers_of_worker(worker_id):
                seen.add((answer.worker_id, answer.task_id))
                relevant.append(answer)
        for task_id in sorted(affected_tasks):
            for answer in answers.answers_of_task(task_id):
                key = (answer.worker_id, answer.task_id)
                if key not in seen:
                    seen.add(key)
                    relevant.append(answer)
        return relevant

    def _vectorized_update(
        self,
        relevant: AnswerSet,
        params: ModelParameters,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> ModelParameters:
        """Localized sweeps on the batched kernel, masked to affected indices.

        Every new answer is part of ``relevant``, so every affected worker and
        task owns at least one tensor row.  Each sweep runs the full-tensor
        E+M step and then copies only the affected rows into the live store —
        unaffected entities keep their current estimates, exactly like the
        per-record sweep that never accumulates sums for them.
        """
        tensor = self.inference._build_tensor(relevant)
        store = params.to_array_store(
            tensor.worker_ids, tensor.task_ids, tensor.num_labels
        )
        worker_rows = {worker_id: i for i, worker_id in enumerate(tensor.worker_ids)}
        task_rows = {task_id: j for j, task_id in enumerate(tensor.task_ids)}
        affected_w = np.asarray(
            sorted(worker_rows[w] for w in affected_workers), dtype=np.intp
        )
        affected_t = np.asarray(
            sorted(task_rows[t] for t in affected_tasks), dtype=np.intp
        )
        label_mask = np.zeros(int(tensor.label_offsets[-1]), dtype=bool)
        for j in affected_t:
            label_mask[tensor.label_offsets[j] : tensor.label_offsets[j + 1]] = True

        for _ in range(self.local_iterations):
            new_store, _ = em_kernel.em_step(tensor, store)
            store.p_qualified[affected_w] = new_store.p_qualified[affected_w]
            store.distance_weights[affected_w] = new_store.distance_weights[affected_w]
            store.influence_weights[affected_t] = new_store.influence_weights[affected_t]
            store.label_probs[label_mask] = new_store.label_probs[label_mask]

        # Copy-on-write publish: share the unaffected entities' parameter
        # objects (nothing in the system mutates them in place) and replace
        # only the affected entries.  A deep copy here costs a full
        # re-validation of every entity per micro-batch — it was the serving
        # path's dominant late-stream cost, far above the EM sweep itself.
        new_params = ModelParameters(
            function_set=params.function_set,
            alpha=params.alpha,
            workers=dict(params.workers),
            tasks=dict(params.tasks),
        )
        for worker_id in affected_workers:
            i = worker_rows[worker_id]
            new_params.workers[worker_id] = _trusted_worker_parameters(
                float(store.p_qualified[i]), store.distance_weights[i].copy()
            )
        for task_id in affected_tasks:
            j = task_rows[task_id]
            new_params.tasks[task_id] = _trusted_task_parameters(
                store.label_probs[store.task_label_slice(j)].copy(),
                store.influence_weights[j].copy(),
            )
        return new_params

    def _local_maximisation(
        self,
        records: list[_AnswerRecord],
        params: ModelParameters,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> ModelParameters:
        """One E+M sweep restricted to the affected workers and tasks."""
        function_count = len(self.inference.config.function_set)

        z_sums: dict[str, np.ndarray] = {}
        z_counts: dict[str, int] = {}
        dt_sums: dict[str, np.ndarray] = {}
        dt_counts: dict[str, int] = {}
        i_sums: dict[str, float] = {}
        i_counts: dict[str, int] = {}
        dw_sums: dict[str, np.ndarray] = {}

        for record in records:
            post_z1, post_i1, post_dw, post_dt, _ = self.inference._expectation(
                record, params
            )
            n_labels = record.responses.size

            if record.task_id in affected_tasks:
                if record.task_id not in z_sums:
                    z_sums[record.task_id] = np.zeros(n_labels)
                    z_counts[record.task_id] = 0
                    dt_sums[record.task_id] = np.zeros(function_count)
                    dt_counts[record.task_id] = 0
                z_sums[record.task_id] += post_z1
                z_counts[record.task_id] += 1
                dt_sums[record.task_id] += post_dt.sum(axis=0)
                dt_counts[record.task_id] += n_labels

            if record.worker_id in affected_workers:
                if record.worker_id not in i_sums:
                    i_sums[record.worker_id] = 0.0
                    i_counts[record.worker_id] = 0
                    dw_sums[record.worker_id] = np.zeros(function_count)
                i_sums[record.worker_id] += float(post_i1.sum())
                i_counts[record.worker_id] += n_labels
                dw_sums[record.worker_id] += post_dw.sum(axis=0)

        new_params = params.copy()
        for task_id in z_sums:
            count = max(1, z_counts[task_id])
            influence = dt_sums[task_id] / max(1, dt_counts[task_id])
            total = influence.sum()
            influence = (
                influence / total
                if total > 0
                else self.inference.config.function_set.uniform_weights()
            )
            new_params.tasks[task_id] = TaskParameters(
                label_probs=np.clip(z_sums[task_id] / count, 0.0, 1.0),
                influence_weights=influence,
            )
        for worker_id in i_sums:
            count = max(1, i_counts[worker_id])
            weights = dw_sums[worker_id] / count
            total = weights.sum()
            weights = (
                weights / total
                if total > 0
                else self.inference.config.function_set.uniform_weights()
            )
            new_params.workers[worker_id] = WorkerParameters(
                p_qualified=min(1.0, max(0.0, i_sums[worker_id] / count)),
                distance_weights=weights,
            )
        return new_params
