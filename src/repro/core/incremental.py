"""Incremental EM updates between full re-runs (Section III-D of the paper).

Running full EM after every single answer submission would be wasteful, so the
paper refreshes the model in two tiers:

* a **full EM run** every ``full_refresh_interval`` submissions, and
* an **incremental update** (Neal & Hinton style partial EM) after each batch of
  new answers in between: only the parameters of the workers who submitted the
  answers and of the tasks they touched are re-estimated, using the current
  values of everything else.

:class:`IncrementalUpdater` implements **both** tiers on top of a
:class:`~repro.core.inference.LocationAwareInference` instance, and the whole
update path is O(changed work), never O(stream history):

* With the default ``engine="vectorized"`` the updater maintains a **live,
  incrementally grown** :class:`~repro.core.em_kernel.AnswerTensor` spanning
  the whole answer log plus a row-aligned live
  :class:`~repro.core.params.ArrayParameterStore`.  Each micro-batch
  (:meth:`IncrementalUpdater.apply`) appends its new answer rows (registering
  workers and tasks unseen at startup on first sight — the open-world arrival
  path) and runs localized sweeps with
  :func:`repro.core.em_kernel.localized_sweeps` directly against the live
  state; with a positive :attr:`IncrementalUpdater.early_exit_threshold`,
  affected entities whose parameters stop moving drop out of the remaining
  sweeps, so settled neighbourhoods stop burning iterations.
* The periodic **full refresh** (:meth:`IncrementalUpdater.full_refresh`) runs
  the vectorised EM *directly against the live tensor* via
  :meth:`~repro.core.inference.LocationAwareInference.fit_from_tensor` — no
  ``AnswerSet`` re-flatten, no tensor rebuild, and on warm starts not even a
  dict→array gather (the live store is handed in as the initial estimate).
  The fit's final store is adopted back as the live store, closing the loop
  without ever materialising per-entity containers on the hot path.  The
  answer log is therefore only *required* by ``engine="reference"`` (the
  original per-record sweep, kept for equivalence testing) and by callers
  that re-fit the inference model behind the updater's back.
* Publishes are **dirty-row shaped**: the updater tracks which worker/task
  rows changed since the last publish and
  :meth:`IncrementalUpdater.collect_publish_delta` emits a
  :class:`~repro.core.params.StoreDelta` carrying only those rows, which the
  serving snapshot layer applies onto the previous snapshot's immutable base
  (copy-on-write at row granularity).  :meth:`IncrementalUpdater.publish_store`
  remains the full-copy fallback — used for the first publish, after full
  refreshes, universe growth, or carryover changes (restored snapshots'
  entities ride along on every publish until the stream re-answers them).

The refreshed estimate is still published copy-on-write at the
``ModelParameters`` level too — unaffected entities share their parameter
objects with the previous estimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Callable

from repro.core import em_kernel
from repro.core.inference import LocationAwareInference, _AnswerRecord
from repro.core.params import (
    ArrayParameterStore,
    ModelParameters,
    StoreDelta,
    TaskParameters,
    WorkerParameters,
    _trusted_task_parameters,
    _trusted_worker_parameters,
)
from repro.data.models import Answer, AnswerSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


@dataclass
class IncrementalUpdater:
    """Applies localized EM updates for freshly submitted answers.

    Parameters
    ----------
    inference:
        The underlying inference model (provides the E-step math, the distance
        model and the task/worker registries).
    full_refresh_interval:
        Number of answer submissions after which the caller should run full EM
        again (the paper suggests every 100 submissions).
    local_iterations:
        How many localized E/M sweeps to run per incremental update; one is the
        classic incremental-EM step, a couple more tightens the estimate at
        negligible cost because only the affected entities are touched.
    early_exit_threshold:
        Per-entity convergence early-exit for the localized sweeps: affected
        entities whose parameters all moved at most this much in a sweep are
        dropped from the remaining sweeps.  ``0.0`` (the default) disables the
        exit, which keeps the vectorized sweeps bit-equivalent to the
        reference engine's ``local_iterations`` sweeps; the serving layer
        enables it with the EM convergence threshold, accepting drift no
        larger than what the convergence criterion already tolerates (and
        undone by the periodic full refreshes).
    """

    inference: LocationAwareInference
    full_refresh_interval: int = 100
    local_iterations: int = 2
    early_exit_threshold: float = 0.0
    #: Run micro-batch sweeps off a :class:`~repro.core.em_kernel.SufficientStatCache`
    #: instead of re-gathering whole entity histories: each sweep folds only
    #: the batch's own label rows into cached per-entity totals, making
    #: :meth:`apply` O(batch) rather than O(entity-history).  Requires a
    #: positive :attr:`early_exit_threshold` (the cache's incremental-EM
    #: semantics already accept convergence-threshold-sized drift; with a
    #: zero threshold the exact reference-equivalent path is kept).
    sufficient_stats: bool = False
    #: After the cached sweeps report an entity settled, skip re-estimating
    #: it for this many subsequent batches it appears in — its statistics
    #: keep folding, only the M-step write is deferred.  ``0`` disables.
    settle_defer_batches: int = 0
    #: Exponential forgetting factor for the answer history.  Every applied
    #: micro-batch advances one *decay epoch*; an answer whose batch is ``k``
    #: epochs old contributes ``stat_decay ** k`` of its weight to both the
    #: sufficient-stat cache (via :meth:`~repro.core.em_kernel.SufficientStatCache.decay_step`)
    #: and the periodic full refreshes (via weighted
    #: :func:`~repro.core.em_kernel.em_step`).  ``1.0`` (the default)
    #: disables decay and keeps every path bit-equal to the undecayed
    #: updater.  The epoch count is a pure function of the applied batch
    #: stream, so crash-recovery replays age answers identically.  Requires
    #: the vectorized engine.
    stat_decay: float = 1.0
    #: Optional per-worker trust weight provider (``worker_id -> weight``),
    #: consulted when building full-refresh weights so distrusted workers'
    #: historical answers are down-weighted.  Returning ``1.0`` for every
    #: worker keeps the refresh on the exact unweighted path.  Vectorized
    #: engine only.
    trust_weight_fn: "Callable[[str], float] | None" = None
    #: Admission prior for workers first seen on the live stream.  ``None``
    #: keeps the footnote-3 trusted seed (``p_qualified = 1.0``) — the
    #: historical, bit-identical behaviour — but that seed is numerically
    #: *absorbing* under the E-step's probability clip: a worker admitted at
    #: exactly 1.0 can never be demoted by warm EM, no matter how wrong its
    #: answers are.  Trust-aware serving therefore sets a learnable prior
    #: (e.g. the cold-start ``initial_p_qualified``) so the posterior can
    #: move in both directions and the reputation tracker has a real signal.
    #: The assigners' own footnote-3 optimism (new workers prioritised) is
    #: unaffected — this knob only changes the *estimation* seed.
    admission_p_qualified: float | None = None
    #: Optional registry the EM work accounting (sweeps run, entities settled
    #: by the early exit, refresh iterations/convergence) is reported into.
    metrics: "MetricsRegistry | None" = None
    answers_since_full_refresh: int = field(default=0, init=False)
    #: AnswerSet → tensor flattens performed so far (0 on a pure live-tensor
    #: stream; the serving benchmark pins it there).
    tensor_rebuilds: int = field(default=0, init=False)
    # Live incremental state of the vectorized engine: the growing tensor, the
    # row-aligned store, and the estimate object the store was last synced
    # with (identity-compared so an externally produced estimate — e.g. a full
    # re-fit — triggers a re-sync).
    _tensor: em_kernel.AnswerTensor | None = field(
        default=None, init=False, repr=False
    )
    _store: ArrayParameterStore | None = field(default=None, init=False, repr=False)
    _synced_params: ModelParameters | None = field(
        default=None, init=False, repr=False
    )
    # Carried-over entities the answer log does not cover (restored snapshots):
    # they ride along on every publish until the stream re-answers them.
    _extra_workers: dict[str, WorkerParameters] = field(
        default_factory=dict, init=False, repr=False
    )
    _extra_tasks: dict[str, TaskParameters] = field(
        default_factory=dict, init=False, repr=False
    )
    # Publish bookkeeping: store rows touched since the last publish, and
    # whether the next publish must be a full copy (first publish, full
    # refresh, universe growth, carryover or sync changes).
    _dirty_workers: set[int] = field(default_factory=set, init=False, repr=False)
    _dirty_tasks: set[int] = field(default_factory=set, init=False, repr=False)
    _publish_full: bool = field(default=True, init=False, repr=False)
    # Sufficient-statistic state: the cache bound to the current live
    # tensor/store pair, and per-store-row defer credits of settled entities.
    _stat_cache: "em_kernel.SufficientStatCache | None" = field(
        default=None, init=False, repr=False
    )
    _worker_defer: dict[int, int] = field(default_factory=dict, init=False, repr=False)
    _task_defer: dict[int, int] = field(default_factory=dict, init=False, repr=False)
    # Decay bookkeeping: epochs elapsed (one per applied non-empty batch when
    # stat_decay < 1) and the capacity-doubled per-answer-row arrival stamps.
    _decay_epoch: int = field(default=0, init=False)
    _arrival_epochs: np.ndarray | None = field(default=None, init=False, repr=False)
    _arrival_len: int = field(default=0, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.full_refresh_interval <= 0:
            raise ValueError(
                f"full_refresh_interval must be positive, got {self.full_refresh_interval}"
            )
        if self.admission_p_qualified is not None and not (
            0.0 < self.admission_p_qualified < 1.0
        ):
            raise ValueError(
                "admission_p_qualified must lie strictly inside (0, 1), got "
                f"{self.admission_p_qualified}"
            )
        if self.local_iterations <= 0:
            raise ValueError(
                f"local_iterations must be positive, got {self.local_iterations}"
            )
        if self.early_exit_threshold < 0:
            raise ValueError(
                f"early_exit_threshold must be non-negative, "
                f"got {self.early_exit_threshold}"
            )
        if self.settle_defer_batches < 0:
            raise ValueError(
                f"settle_defer_batches must be non-negative, "
                f"got {self.settle_defer_batches}"
            )
        if not 0.0 < self.stat_decay <= 1.0:
            raise ValueError(
                f"stat_decay must be in (0, 1], got {self.stat_decay}"
            )
        if (
            self.inference.config.engine == "reference"
            and (self.stat_decay < 1.0 or self.trust_weight_fn is not None)
        ):
            raise ValueError(
                "stat_decay < 1 and trust weights require the vectorized "
                "engine; the reference engine has no weighted M-step"
            )

    @property
    def full_refresh_due(self) -> bool:
        """Whether enough answers have accumulated to warrant a full EM re-run."""
        return self.answers_since_full_refresh >= self.full_refresh_interval

    def notify_full_refresh(self) -> None:
        """Reset the counter after the caller has run full EM."""
        self.answers_since_full_refresh = 0

    def apply(
        self,
        answers: AnswerSet | None,
        new_answers: list[Answer],
        parameters: ModelParameters | ArrayParameterStore | None = None,
    ) -> ModelParameters:
        """Update parameters for the workers/tasks touched by ``new_answers``.

        ``answers``, when provided, must already contain ``new_answers``; with
        the vectorized engine it is only consulted to (re)build the live
        tensor when the updater joins an existing stream or the log diverged
        from the tensor (an external fit), so a log-free caller may pass
        ``None`` and the live tensor is trusted outright.  The reference
        engine gathers the affected neighbourhood through the answer set's
        indexes and therefore requires it.  ``parameters`` may be a live
        :class:`~repro.core.params.ModelParameters` estimate or an
        :class:`~repro.core.params.ArrayParameterStore` snapshot to warm-start
        from (the serving path's restore case).  Returns the updated
        :class:`~repro.core.params.ModelParameters` (also stored on the
        underlying inference model so subsequent predictions reflect it).
        """
        if isinstance(parameters, ArrayParameterStore):
            parameters = parameters.to_model()
        if not new_answers:
            return parameters if parameters is not None else self.inference.parameters

        # No defensive copy: both update paths below build a fresh
        # ModelParameters and never mutate their input estimate.
        params = parameters or self.inference.parameters
        self.answers_since_full_refresh += len(new_answers)

        affected_workers = {answer.worker_id for answer in new_answers}
        affected_tasks = {answer.task_id for answer in new_answers}

        if self.inference.config.engine == "reference":
            if answers is None:
                raise RuntimeError(
                    "the reference engine gathers the affected neighbourhood "
                    "through the answer log; pass the AnswerSet"
                )
            # Answers relevant to the localized update: everything involving an
            # affected worker (to re-estimate that worker's quality) or an
            # affected task (to re-estimate its labels and influence),
            # gathered through the answer set's per-worker/per-task indexes.
            relevant = self._relevant_answers(
                answers, affected_workers, affected_tasks
            )
            records = self.inference._build_records(AnswerSet(relevant))
            for _ in range(self.local_iterations):
                params = self._local_maximisation(
                    records, params, affected_workers, affected_tasks
                )
        else:
            params = self._vectorized_update(
                answers, new_answers, params, affected_workers, affected_tasks
            )

        # Publish the refreshed estimate on the inference model.
        self.inference._parameters = params
        self.inference._fitted = True
        return params

    def full_refresh(
        self,
        new_answers: list[Answer],
        answers: AnswerSet | None = None,
        warm: bool = True,
    ) -> ModelParameters:
        """Run the periodic full EM re-fit against the live tensor.

        ``new_answers`` is the micro-batch that triggered the refresh (may be
        empty for a forced re-fit); it is appended to the live tensor first,
        then :meth:`~repro.core.inference.LocationAwareInference.fit_from_tensor`
        runs the vectorised EM with zero ``AnswerSet`` → tensor flattens.
        ``warm=True`` starts from the current estimate (handing the live
        row-aligned store straight in); ``warm=False`` is a cold start whose
        result is identical to an offline fit on the same answer log — the
        live tensor is maintained bit-equal to a from-scratch flatten.
        ``answers``, when provided, must already contain ``new_answers`` and
        is only consulted to recover from a log/tensor divergence (an
        external fit bypassed this updater); the reference engine requires it.
        Resets the refresh counter and flags the next publish as a full copy.
        """
        inference = self.inference
        if inference.config.engine == "reference":
            if answers is None:
                raise RuntimeError(
                    "reference-engine full refreshes re-fit from the answer "
                    "log; pass the AnswerSet"
                )
            if self.trust_weight_fn is not None:
                raise RuntimeError(
                    "the reference engine has no weighted refresh; trust "
                    "weights require the vectorized engine"
                )
            initial = (
                inference.parameters if warm and inference.is_fitted else None
            )
            inference.fit(answers, initial=initial)
        else:
            params = inference.parameters if inference.is_fitted else None
            warm = warm and params is not None
            chain_intact = (
                self._tensor is not None and self._synced_params is params
            )
            if self._tensor is None:
                self._rebuild_tensor(answers)
            if warm:
                self._ensure_store(params)
            else:
                # A cold re-fit ignores the current estimate entirely; the
                # fitted store below replaces whatever live store existed.
                self._store = None
                self._synced_params = None
            if new_answers:
                if self.stat_decay < 1.0:
                    self._decay_epoch += 1
                result = self._tensor.append_answers(
                    new_answers,
                    inference._tasks,
                    inference._workers,
                    inference.distance_model,
                    inference.config.function_set,
                )
                self._stamp_arrivals(
                    self._tensor.num_answers - self._arrival_len
                )
                if self._store is not None:
                    self._admit_new_entities(result)
            self._recover_if_diverged(
                answers, params if warm else None, chain_intact
            )
            inference.fit_from_tensor(
                self._tensor,
                initial=params if warm else None,
                initial_store=self._store if warm else None,
                answer_weights=self._refresh_weights(),
            )
            # Adopt the fit's final store as the live store: it is row-aligned
            # with the tensor by construction and freshly allocated by the EM
            # loop, so the updater owns it outright.
            self._store = inference.last_result.store
            self._synced_params = inference.parameters
            self._prune_carryover()
            self._reset_sufficient_stats()
            if self.metrics is not None:
                result = inference.last_result
                self.metrics.histogram("em_refresh_iterations").observe(
                    float(result.iterations)
                )
                if result.convergence_trace:
                    self.metrics.histogram("em_refresh_final_delta").observe(
                        float(result.convergence_trace[-1])
                    )
        self._publish_full = True
        self._dirty_workers.clear()
        self._dirty_tasks.clear()
        self.notify_full_refresh()
        return inference.parameters

    # ------------------------------------------------------ pipelined refresh
    def capture_refresh_state(
        self, warm: bool = True
    ) -> tuple[
        em_kernel.AnswerTensor,
        ModelParameters | None,
        ArrayParameterStore | None,
        np.ndarray | None,
    ]:
        """Frozen copies of the live state for an off-thread full fit.

        Returns ``(tensor, initial, initial_store, answer_weights)`` ready to
        hand to
        :meth:`~repro.core.inference.LocationAwareInference.run_em_detached`:
        a :meth:`~repro.core.em_kernel.AnswerTensor.snapshot` of the live
        tensor and, on warm starts, the current estimate plus a copy of the
        live store (copied because the ingest thread's localized sweeps keep
        mutating the original while the background fit runs).
        ``answer_weights`` is the decay × trust weighting of the snapshot's
        rows frozen at capture time (``None`` on the exact unweighted path) —
        batches applied mid-fit advance the live decay epoch without
        disturbing the captured fit.  The live state itself is not touched —
        batches keep applying against it.
        """
        inference = self.inference
        if inference.config.engine == "reference":
            raise RuntimeError(
                "pipelined refreshes fit from the live tensor; the reference "
                "engine has no tensor form"
            )
        if self._tensor is None:
            from repro.serving import LiveStateError

            raise LiveStateError(
                "cannot capture refresh state before the live tensor exists; "
                "apply at least one batch (or run a blocking full_refresh) first"
            )
        params = inference.parameters if inference.is_fitted else None
        warm = warm and params is not None
        tensor = self._tensor.snapshot()
        store = None
        if warm and self._store is not None and self._synced_params is params:
            store = self._store.copy()
        return tensor, (params if warm else None), store, self._refresh_weights()

    def integrate_refresh_result(
        self,
        result: "object",
        reconcile_workers: set[str],
        reconcile_tasks: set[str],
    ) -> ModelParameters:
        """Adopt a detached fit's store, reconciling answers that arrived mid-fit.

        ``result`` is the :class:`~repro.core.inference.InferenceResult` of a
        :meth:`~repro.core.inference.LocationAwareInference.run_em_detached`
        call on a tensor captured by :meth:`capture_refresh_state`;
        ``reconcile_workers`` / ``reconcile_tasks`` are the entities touched
        by every batch applied since that capture.  The fitted store is grown
        to the live universe (entities admitted mid-fit copy their current
        live estimates), the mid-fit answers are replayed as localized sweeps
        against the live tensor, and the reconciled result is installed on the
        inference model — after which the next publish is a full copy, exactly
        like a blocking :meth:`full_refresh`.  The refresh counter is **not**
        reset here: the caller reset it at launch so the refresh schedule is a
        pure function of applied-answer counts (crash-recovery replay then
        re-launches at the same batch boundaries).
        """
        inference = self.inference
        fitted: ArrayParameterStore = result.store
        live = self._tensor
        old_store = self._store
        # Entities admitted after the snapshot was cut: the fitted store must
        # span the live universe again before it can serve.  Copy their
        # current live estimates (carryover-seeded, locally swept) when the
        # old live store has them; fall back to the footnote-3 priors.
        for i in range(fitted.num_workers, live.num_workers):
            worker_id = live.worker_ids[i]
            if old_store is not None and i < old_store.num_workers:
                fitted.add_worker(
                    worker_id,
                    float(old_store.p_qualified[i]),
                    old_store.distance_weights[i].copy(),
                )
            elif self.admission_p_qualified is not None:
                fitted.add_worker(worker_id, p_qualified=self.admission_p_qualified)
            else:
                fitted.add_worker(worker_id)
        for j in range(fitted.num_tasks, live.num_tasks):
            task_id = live.task_ids[j]
            num_labels = inference._tasks[task_id].num_labels
            if old_store is not None and j < old_store.num_tasks:
                fitted.add_task(
                    task_id,
                    num_labels,
                    old_store.label_probs[old_store.task_label_slice(j)].copy(),
                    old_store.influence_weights[j].copy(),
                )
            else:
                fitted.add_task(task_id, num_labels)
        # Replay the mid-fit neighbourhood: the same localized sweeps those
        # batches ran against the old store, now against the fresh fit.
        if reconcile_workers or reconcile_tasks:
            affected_w = np.asarray(
                sorted(live.worker_row(w) for w in reconcile_workers),
                dtype=np.intp,
            )
            affected_t = np.asarray(
                sorted(live.task_row(t) for t in reconcile_tasks), dtype=np.intp
            )
            label_slots = em_kernel.label_slots_of_tasks(
                fitted.label_offsets, affected_t
            )
            rows = em_kernel.gather_affected_rows(live, affected_w, affected_t)
            em_kernel.localized_sweeps(
                live,
                fitted,
                rows,
                affected_w,
                affected_t,
                label_slots,
                iterations=self.local_iterations,
                early_exit_threshold=self.early_exit_threshold,
            )
        params = fitted.to_model()
        inference.adopt_result(replace(result, parameters=params, store=fitted))
        self._store = fitted
        self._synced_params = params
        self._prune_carryover()
        self._reset_sufficient_stats()
        if self.metrics is not None:
            self.metrics.histogram("em_refresh_iterations").observe(
                float(result.iterations)
            )
            if result.convergence_trace:
                self.metrics.histogram("em_refresh_final_delta").observe(
                    float(result.convergence_trace[-1])
                )
        self._publish_full = True
        self._dirty_workers.clear()
        self._dirty_tasks.clear()
        return params

    def _reset_sufficient_stats(self) -> None:
        """Drop the cache and defer credits (the store they index was replaced)."""
        self._stat_cache = None
        self._worker_defer.clear()
        self._task_defer.clear()

    def reset_sufficient_stats(self) -> None:
        """Drop the sufficient-stat cache and settle-defer credits.

        The cache is path-dependent (each row's contribution is frozen at the
        parameters current when it was last folded), so a run replayed from a
        checkpoint cannot reproduce it.  The ingest layer therefore calls
        this at every checkpoint boundary: both the original run and any
        replayed run re-seed the cache at the same applied-answer counts,
        keeping recovery bit-equal.  The next batch pays one full E-step to
        rebuild.
        """
        self._reset_sufficient_stats()

    # ----------------------------------------------------------- decayed stats
    @property
    def decay_epoch(self) -> int:
        """Decay epochs elapsed so far (one per applied non-empty batch)."""
        return self._decay_epoch

    def _stamp_arrivals(self, count: int) -> None:
        """Stamp ``count`` freshly appended answer rows at the current epoch.

        Re-answers rewrite their tensor row in place, so ``count`` (the
        tensor's row growth) may be smaller than the batch; rewritten rows
        keep their original arrival epoch — the rewritten response simply
        inherits the age of the answer it replaced.
        """
        if count <= 0:
            return
        needed = self._arrival_len + count
        buffer = self._arrival_epochs
        if buffer is None or needed > buffer.size:
            capacity = max(needed, 2 * (buffer.size if buffer is not None else 0), 64)
            grown = np.zeros(capacity, dtype=np.int64)
            if buffer is not None and self._arrival_len:
                grown[: self._arrival_len] = buffer[: self._arrival_len]
            self._arrival_epochs = grown
            buffer = grown
        buffer[self._arrival_len : needed] = self._decay_epoch
        self._arrival_len = needed

    def _reset_arrival_epochs(self) -> None:
        """Re-stamp the whole tensor at the current epoch (rebuilds lose ages)."""
        self._arrival_len = 0
        if self._tensor is not None:
            self._stamp_arrivals(self._tensor.num_answers)

    def _answer_ages(self) -> np.ndarray:
        """Per-answer-row ages in decay epochs, aligned with the live tensor."""
        if self._tensor is None or self._arrival_epochs is None:
            return np.zeros(0, dtype=np.int64)
        return self._decay_epoch - self._arrival_epochs[: self._tensor.num_answers]

    def _refresh_weights(self) -> np.ndarray | None:
        """Per-answer weights for a full refresh, or ``None`` for the exact path.

        The product of the decay aging (``stat_decay ** age``) and the
        per-worker trust weights.  ``None`` whenever every weight is exactly
        1.0, which keeps the refresh on the bit-identical unweighted path.
        """
        tensor = self._tensor
        if tensor is None:
            return None
        weights: np.ndarray | None = None
        if self.stat_decay < 1.0:
            ages = self._answer_ages().astype(np.float64)
            weights = np.power(self.stat_decay, ages)
        if self.trust_weight_fn is not None and tensor.num_workers:
            per_worker = np.fromiter(
                (float(self.trust_weight_fn(w)) for w in tensor.worker_ids),
                dtype=np.float64,
                count=tensor.num_workers,
            )
            if np.any(per_worker != 1.0):
                trust = per_worker[tensor.a_worker]
                weights = trust if weights is None else weights * trust
        return weights

    def export_decay_state(self) -> tuple[int, np.ndarray]:
        """The decay epoch and per-answer arrival epochs (checkpoint form).

        The arrival stamps are row-aligned with :meth:`export_answers`, so a
        checkpoint carrying both restores the exact aging the crashed run
        had via :meth:`restore_decay_state`.
        """
        count = self._tensor.num_answers if self._tensor is not None else 0
        if self._arrival_epochs is None or count == 0:
            arrivals = np.zeros(count, dtype=np.int64)
        else:
            arrivals = self._arrival_epochs[:count].copy()
        return self._decay_epoch, arrivals

    def restore_decay_state(
        self, decay_epoch: int, arrival_epochs: np.ndarray
    ) -> None:
        """Restore checkpointed aging over an already-rebuilt live tensor.

        Call after :meth:`restore_live_state`: ``arrival_epochs`` must be
        row-aligned with the restored tensor (the :meth:`export_decay_state`
        contract).
        """
        if self._tensor is None:
            raise RuntimeError(
                "restore the live tensor before restoring decay state"
            )
        arrivals = np.asarray(arrival_epochs, dtype=np.int64)
        if arrivals.shape != (self._tensor.num_answers,):
            raise ValueError(
                f"arrival_epochs has shape {arrivals.shape}, expected "
                f"({self._tensor.num_answers},) to match the live tensor"
            )
        self._decay_epoch = int(decay_epoch)
        self._arrival_len = 0
        self._stamp_arrivals(arrivals.size)
        if arrivals.size:
            self._arrival_epochs[: arrivals.size] = arrivals

    # -------------------------------------------------------------- live state
    @property
    def live_tensor(self) -> em_kernel.AnswerTensor | None:
        """The incrementally maintained tensor (``None`` before the first sync)."""
        return self._tensor

    @property
    def live_store(self) -> ArrayParameterStore | None:
        """The live row-aligned parameter store (``None`` before the first sync)."""
        return self._store

    def _rebuild_tensor(self, answers: AnswerSet | None) -> None:
        """(Re)flatten the log into a fresh live tensor (or start empty).

        Runs once at cold start (O(0) when the updater starts with the
        stream) and once per external estate change that left the tensor
        stale — never on the steady-state serving path, which only appends.
        """
        if (
            answers is None
            and self.inference.is_fitted
            and not (self._extra_workers or self._extra_tasks)
        ):
            # The model carries an estimate this updater never saw, and there
            # is no log to rebuild from: silently fitting on the micro-batch
            # alone would discard that history.  (A snapshot restore is the
            # legitimate log-less case; prime_carryover marks it.)
            from repro.serving import LiveStateError

            raise LiveStateError(
                "cannot rebuild the live answer tensor: the inference model "
                "was fitted outside this updater and no answer log was "
                "provided, so the estimate's history is unrecoverable here. "
                "Pass the full `answers` log to this call, or — after a "
                "snapshot restore — call prime_carryover(parameters) so the "
                "restored entities ride along without a log."
            )
        source = answers if answers is not None else AnswerSet()
        if len(source):
            self.tensor_rebuilds += 1
        tensor = self.inference._build_tensor(source)
        tensor.enable_row_tracking()
        self._tensor = tensor
        self._store = None
        self._synced_params = None
        self._publish_full = True
        self._reset_sufficient_stats()
        # A reflatten cannot recover per-row ages (the log carries no epochs),
        # so the rebuilt history restarts at the current epoch: every answer
        # is weighted 1.0 until batches age it again.  The checkpoint path
        # restores exact ages afterwards via restore_decay_state.
        self._reset_arrival_epochs()

    def export_answers(self) -> list[Answer]:
        """The live tensor's answer log in row order (empty before any sync).

        Row order equals the stream's insertion order with re-answers
        rewritten in place, so rebuilding a tensor from these answers
        reproduces the live tensor bit for bit — the checkpoint path's
        durable form of the answer history.
        """
        if self._tensor is None:
            return []
        return self._tensor.export_answers()

    def restore_live_state(
        self,
        answers: AnswerSet,
        answers_since_full_refresh: int = 0,
    ) -> None:
        """Rebuild the live tensor/store from a checkpointed answer log.

        The crash-recovery path: ``answers`` is the log a checkpoint exported
        (via :meth:`export_answers`) and the inference model has already been
        re-fitted/warm-started to the checkpointed estimate.  The tensor is
        rebuilt in the same row order the crashed run maintained (bit-equal
        per the export contract), the live store is force-gathered from the
        current estimate over that universe, and the refresh counter resumes
        where the crashed run left it.  Unlike :meth:`_rebuild_tensor` this
        does **not** count toward :attr:`tensor_rebuilds` — recovery is a
        restart, not a serving-path log flatten (the throughput gate pins
        steady-state flattens at zero).
        """
        tensor = self.inference._build_tensor(answers)
        tensor.enable_row_tracking()
        self._tensor = tensor
        self._store = None
        self._synced_params = None
        self._reset_sufficient_stats()
        self._reset_arrival_epochs()
        self._ensure_store(self.inference.parameters, force=True)
        self.answers_since_full_refresh = answers_since_full_refresh

    def _ensure_store(self, params: ModelParameters, force: bool = False) -> None:
        """Gather ``params`` into a store row-aligned with the live tensor.

        Skipped when the live store is already synced with this exact
        estimate object; the gather is O(entities), never O(answers) — the
        tensor itself does not depend on the estimate and is left untouched.
        """
        if not force and self._store is not None and self._synced_params is params:
            return
        tensor = self._tensor
        self._store = params.to_array_store(
            tensor.worker_ids, tensor.task_ids, tensor.num_labels
        )
        if self.admission_p_qualified is not None:
            # Workers the estimate has never judged took the footnote-3 seed
            # in the gather; replace it with the learnable admission prior.
            known = params.workers
            for row, worker_id in enumerate(tensor.worker_ids):
                if worker_id not in known:
                    self._store.p_qualified[row] = self.admission_p_qualified
        self._refresh_carryover(params)
        self._synced_params = params
        self._publish_full = True

    def _refresh_carryover(self, params: ModelParameters) -> None:
        """Reconcile the carryover set against the tensor and ``params``.

        Sticky carryover: entities the estimate (or an earlier restore) knows
        but the log does not cover keep riding along on publishes; entities
        now present in the tensor are owned by the live store instead.
        """
        self._prune_carryover()
        seen_workers = set(self._tensor.worker_ids)
        seen_tasks = set(self._tensor.task_ids)
        for worker_id, worker in params.workers.items():
            if worker_id not in seen_workers:
                self._extra_workers[worker_id] = worker
        for task_id, task in params.tasks.items():
            if task_id not in seen_tasks:
                self._extra_tasks[task_id] = task

    def _prune_carryover(self) -> None:
        """Drop carried-over entities the live tensor has since acquired."""
        if not self._extra_workers and not self._extra_tasks:
            return
        seen_workers = set(self._tensor.worker_ids)
        seen_tasks = set(self._tensor.task_ids)
        for worker_id in list(self._extra_workers):
            if worker_id in seen_workers:
                del self._extra_workers[worker_id]
        for task_id in list(self._extra_tasks):
            if task_id in seen_tasks:
                del self._extra_tasks[task_id]

    def _recover_if_diverged(
        self,
        answers: AnswerSet | None,
        params: ModelParameters | None,
        chain_intact: bool,
    ) -> bool:
        """Rebuild the live state if the log diverged from the tensor.

        The estimate chain being intact (``params`` is exactly what this
        updater last produced or synced to) means the live tensor saw every
        answer the estimate consumed, so it is trusted outright — a shared
        answer log may legitimately run *ahead* of the micro-batch buffer
        (answers collected but not yet submitted) without being a
        divergence.  Only a chain broken by an external fit combined with a
        count mismatch means the tensor missed answers; then the tensor is
        reflattened from ``answers`` (which, per the callers' contracts,
        already covers any in-flight batch) and, when ``params`` is given,
        the store is force re-gathered over the rebuilt universe.
        """
        if (
            chain_intact
            or answers is None
            or len(answers) == self._tensor.num_answers
        ):
            return False
        self._rebuild_tensor(answers)
        if params is not None:
            self._ensure_store(params, force=True)
        return True

    def _admit_new_entities(self, result: em_kernel.TensorAppendResult) -> None:
        """Grow the live store in lock-step with entities the tensor admitted.

        First-seen entities carried over from a restored snapshot resume from
        their carried values; genuinely unseen ones receive the footnote-3
        trusted priors (the exact fallback ``ModelParameters.worker`` /
        ``ModelParameters.task`` would apply).  Any growth invalidates the
        row-aligned publish base, so the next publish is a full copy.
        """
        if not result.new_worker_ids and not result.new_task_ids:
            return
        store = self._store
        for worker_id in result.new_worker_ids:
            carried = self._extra_workers.pop(worker_id, None)
            if carried is not None:
                store.add_worker(
                    worker_id, carried.p_qualified, carried.distance_weights.copy()
                )
            elif self.admission_p_qualified is not None:
                store.add_worker(worker_id, p_qualified=self.admission_p_qualified)
            else:
                store.add_worker(worker_id)
        for task_id in result.new_task_ids:
            num_labels = self.inference._tasks[task_id].num_labels
            carried = self._extra_tasks.pop(task_id, None)
            if carried is not None and carried.num_labels == num_labels:
                store.add_task(
                    task_id,
                    num_labels,
                    carried.label_probs.copy(),
                    carried.influence_weights.copy(),
                )
            else:
                store.add_task(task_id, num_labels)
        self._publish_full = True

    def prime_carryover(
        self, parameters: ModelParameters | ArrayParameterStore
    ) -> None:
        """Seed the carryover set from a pre-existing estimate.

        Used by the serving layer after a snapshot restore: every entity of
        ``parameters`` rides along on publishes until the stream covers it
        (the next sync prunes entities the answer log re-acquires).
        """
        if isinstance(parameters, ArrayParameterStore):
            parameters = parameters.to_model()
        for worker_id, worker in parameters.workers.items():
            self._extra_workers.setdefault(worker_id, worker)
        for task_id, task in parameters.tasks.items():
            self._extra_tasks.setdefault(task_id, task)
        self._publish_full = True

    # ------------------------------------------------------------- publishing
    def publish_store(
        self,
        answers: AnswerSet | None = None,
        parameters: ModelParameters | ArrayParameterStore | None = None,
    ) -> ArrayParameterStore:
        """Snapshot-ready compact copy of the current estimate, array-first.

        Returns a fresh :class:`~repro.core.params.ArrayParameterStore`
        covering the live universe plus any carried-over entities, without
        flattening a ``ModelParameters`` dict — the full-publish cost is one
        C-level array copy.  This is the fallback of the O(changed) publish
        protocol: steady-state micro-batches publish through
        :meth:`collect_publish_delta` instead.  ``answers`` is only needed to
        (re)build the live tensor when the updater has none yet or the log
        diverged; with ``engine="reference"`` (which never maintains live
        state) the estimate is flattened directly instead.
        """
        params = parameters
        if isinstance(params, ArrayParameterStore):
            params = params.to_model()
        if params is None:
            params = self.inference.parameters
        if self.inference.config.engine == "reference":
            return self._flatten_params(params)
        chain_intact = self._tensor is not None and self._synced_params is params
        if self._tensor is None:
            self._rebuild_tensor(answers)
        else:
            self._recover_if_diverged(answers, None, chain_intact)
        self._ensure_store(params)
        out = self._store.copy()
        for worker_id in sorted(self._extra_workers):
            carried = self._extra_workers[worker_id]
            out.add_worker(
                worker_id, carried.p_qualified, carried.distance_weights.copy()
            )
        for task_id in sorted(self._extra_tasks):
            carried = self._extra_tasks[task_id]
            out.add_task(
                task_id,
                carried.num_labels,
                carried.label_probs.copy(),
                carried.influence_weights.copy(),
            )
        self.mark_published()
        return out

    def collect_publish_delta(self) -> StoreDelta | None:
        """The dirty rows since the last publish, or ``None`` if a full copy is due.

        Returns a :class:`~repro.core.params.StoreDelta` covering exactly the
        worker/task rows the localized sweeps touched since the previous
        publish — O(changed) gathered values the snapshot layer applies onto
        the previous snapshot's immutable base.  ``None`` means the caller
        must take the :meth:`publish_store` full-copy path: first publish,
        reference engine, a full refresh or re-sync happened, the entity
        universe grew (row alignment with the base broke), or the estimate
        was replaced outside this updater.  Collecting does **not** consume
        the dirty state — call :meth:`mark_published` once the delta has
        actually been published.
        """
        if (
            self.inference.config.engine == "reference"
            or self._store is None
            or self._publish_full
            or self._synced_params is not self.inference.parameters
        ):
            return None
        store = self._store
        worker_rows = np.fromiter(
            sorted(self._dirty_workers), dtype=np.intp, count=len(self._dirty_workers)
        )
        task_rows = np.fromiter(
            sorted(self._dirty_tasks), dtype=np.intp, count=len(self._dirty_tasks)
        )
        label_slots = em_kernel.label_slots_of_tasks(store.label_offsets, task_rows)
        return StoreDelta(
            worker_rows=worker_rows,
            p_qualified=store.p_qualified[worker_rows],
            distance_weights=store.distance_weights[worker_rows],
            task_rows=task_rows,
            influence_weights=store.influence_weights[task_rows],
            label_slots=label_slots,
            label_probs=store.label_probs[label_slots],
            num_workers=store.num_workers + len(self._extra_workers),
            num_tasks=store.num_tasks + len(self._extra_tasks),
        )

    def mark_published(self) -> None:
        """Reset the dirty tracking: the next publish diffs against this point.

        Call exactly when a publish actually happened — after a collected
        delta was applied to the snapshot layer.  (:meth:`publish_store`
        marks internally.)  A delta that was collected but then dropped must
        NOT be marked, or its rows would silently go stale in every
        subsequent delta publish until the next full refresh.
        """
        self._dirty_workers.clear()
        self._dirty_tasks.clear()
        self._publish_full = False

    def _flatten_params(self, params: ModelParameters) -> ArrayParameterStore:
        """Flatten ``params`` (plus carryover) the dict way — reference path."""
        workers = dict(self._extra_workers)
        workers.update(params.workers)
        tasks = dict(self._extra_tasks)
        tasks.update(params.tasks)
        merged = ModelParameters(
            function_set=params.function_set,
            alpha=params.alpha,
            workers=workers,
            tasks=tasks,
        )
        task_ids = sorted(tasks)
        return merged.to_array_store(
            sorted(workers), task_ids, [tasks[task_id].num_labels for task_id in task_ids]
        )

    # ------------------------------------------------------------------ internal
    @staticmethod
    def _relevant_answers(
        answers: AnswerSet,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> list[Answer]:
        """Union of the affected workers' and tasks' answers, deduplicated.

        Deterministic regardless of submission order: affected workers in
        sorted order (each worker's answers sorted by task), then the affected
        tasks' remaining answers (sorted by worker).
        """
        seen: set[tuple[str, str]] = set()
        relevant: list[Answer] = []
        for worker_id in sorted(affected_workers):
            for answer in answers.answers_of_worker(worker_id):
                seen.add((answer.worker_id, answer.task_id))
                relevant.append(answer)
        for task_id in sorted(affected_tasks):
            for answer in answers.answers_of_task(task_id):
                key = (answer.worker_id, answer.task_id)
                if key not in seen:
                    seen.add(key)
                    relevant.append(answer)
        return relevant

    def _vectorized_update(
        self,
        answers: AnswerSet | None,
        new_answers: list[Answer],
        params: ModelParameters,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> ModelParameters:
        """Localized sweeps against the live tensor, masked to affected rows.

        The micro-batch is appended to the incrementally maintained tensor
        (admitting first-seen workers/tasks into the row-aligned live store),
        the relevant answer rows are gathered through the tensor's per-entity
        indexes, and the sweeps run
        :func:`repro.core.em_kernel.localized_sweeps` in place — unaffected
        entities keep their current estimates, exactly like the per-record
        sweep that never accumulates sums for them.  Nothing is rebuilt per
        batch; a tensor rebuild only happens when the updater joins an
        existing stream cold or the log diverged from the tensor (an external
        fit), and an estimate replaced outside this updater costs only an
        O(entities) store re-gather.
        """
        inference = self.inference
        chain_intact = self._tensor is not None and self._synced_params is params
        if self._tensor is None:
            # ``answers`` (when given) already contains ``new_answers``; the
            # rebuilt tensor covers them, and the append below degenerates to
            # in-place response rewrites of their rows.
            self._rebuild_tensor(answers)
        self._ensure_store(params)
        tensor = self._tensor
        store = self._store
        if self.stat_decay < 1.0:
            # One epoch per applied batch, bumped before the batch's rows are
            # stamped so they enter at age 0 — a pure function of the applied
            # batch count, hence identical on crash-recovery replays.
            self._decay_epoch += 1
        result = tensor.append_answers(
            new_answers,
            inference._tasks,
            inference._workers,
            inference.distance_model,
            store.function_set,
        )
        self._stamp_arrivals(tensor.num_answers - self._arrival_len)
        self._admit_new_entities(result)
        if self._recover_if_diverged(answers, params, chain_intact):
            # The rebuild covers the batch, so no second append is needed.
            tensor = self._tensor
            store = self._store

        affected_w = np.asarray(
            sorted(tensor.worker_row(w) for w in affected_workers), dtype=np.intp
        )
        affected_t = np.asarray(
            sorted(tensor.task_row(t) for t in affected_tasks), dtype=np.intp
        )
        if self.sufficient_stats and self.early_exit_threshold > 0.0:
            cache = self._stat_cache
            if cache is None or not cache.in_sync_with(tensor, store):
                # One full E-step pass seeds the cache; every full refresh
                # replaces the store and so pays this once per interval.
                # With decay, the seed weights each row by its current age so
                # the rebuilt totals match the aged totals a surviving cache
                # would carry.
                cache = em_kernel.SufficientStatCache(
                    tensor,
                    store,
                    decay=self.stat_decay,
                    row_ages=(
                        self._answer_ages() if self.stat_decay < 1.0 else None
                    ),
                )
                self._stat_cache = cache
                self._worker_defer.clear()
                self._task_defer.clear()
                if self.metrics is not None:
                    self.metrics.counter("em_statcache_rebuilds_total").inc()
            else:
                if self.stat_decay < 1.0:
                    cache.decay_step()
                cache.sync_growth()
            est_w, est_t = self._defer_filter(affected_w, affected_t)
            label_slots = em_kernel.label_slots_of_tasks(store.label_offsets, est_t)
            sweep_report = em_kernel.cached_sweeps(
                cache,
                np.unique(result.rows),
                est_w,
                est_t,
                label_slots,
                iterations=self.local_iterations,
                early_exit_threshold=self.early_exit_threshold,
            )
            self._note_settled(sweep_report)
        else:
            est_w, est_t = affected_w, affected_t
            label_slots = em_kernel.label_slots_of_tasks(store.label_offsets, est_t)
            relevant_rows = em_kernel.gather_affected_rows(tensor, est_w, est_t)
            sweep_report = em_kernel.localized_sweeps(
                tensor,
                store,
                relevant_rows,
                est_w,
                est_t,
                label_slots,
                iterations=self.local_iterations,
                early_exit_threshold=self.early_exit_threshold,
            )
        if self.metrics is not None:
            self.metrics.counter("em_localized_sweeps_total").inc(
                sweep_report.sweeps_run
            )
            self.metrics.counter("em_entities_settled_total", kind="worker").inc(
                sweep_report.workers_settled
            )
            self.metrics.counter("em_entities_settled_total", kind="task").inc(
                sweep_report.tasks_settled
            )
        self._dirty_workers.update(int(i) for i in est_w)
        self._dirty_tasks.update(int(j) for j in est_t)

        # Copy-on-write publish: share the unaffected entities' parameter
        # objects (nothing in the system mutates them in place) and replace
        # only the re-estimated entries.  A deep copy here costs a full
        # re-validation of every entity per micro-batch — it was the serving
        # path's dominant late-stream cost, far above the EM sweep itself.
        new_params = ModelParameters(
            function_set=params.function_set,
            alpha=params.alpha,
            workers=dict(params.workers),
            tasks=dict(params.tasks),
        )
        for i in est_w:
            worker_id = tensor.worker_ids[int(i)]
            new_params.workers[worker_id] = _trusted_worker_parameters(
                float(store.p_qualified[i]), store.distance_weights[i].copy()
            )
        for j in est_t:
            task_id = tensor.task_ids[int(j)]
            new_params.tasks[task_id] = _trusted_task_parameters(
                store.label_probs[store.task_label_slice(j)].copy(),
                store.influence_weights[j].copy(),
            )
        self._synced_params = new_params
        return new_params

    def _defer_filter(
        self, affected_w: np.ndarray, affected_t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop entities holding settle-defer credit, spending one credit each."""
        if self.settle_defer_batches <= 0 or not (
            self._worker_defer or self._task_defer
        ):
            return affected_w, affected_t

        def spend(rows: np.ndarray, credits: dict[int, int]) -> np.ndarray:
            if not credits:
                return rows
            kept: list[int] = []
            for row in rows:
                row = int(row)
                credit = credits.get(row, 0)
                if credit > 0:
                    if credit == 1:
                        del credits[row]
                    else:
                        credits[row] = credit - 1
                else:
                    kept.append(row)
            if len(kept) == rows.size:
                return rows
            return np.asarray(kept, dtype=np.intp)

        return spend(affected_w, self._worker_defer), spend(
            affected_t, self._task_defer
        )

    def _note_settled(self, report: em_kernel.SweepReport) -> None:
        """Grant defer credit to the entities the cached sweeps settled."""
        if self.settle_defer_batches <= 0:
            return
        if report.settled_worker_rows is not None:
            for row in report.settled_worker_rows:
                self._worker_defer[int(row)] = self.settle_defer_batches
        if report.settled_task_rows is not None:
            for row in report.settled_task_rows:
                self._task_defer[int(row)] = self.settle_defer_batches

    def _local_maximisation(
        self,
        records: list[_AnswerRecord],
        params: ModelParameters,
        affected_workers: set[str],
        affected_tasks: set[str],
    ) -> ModelParameters:
        """One E+M sweep restricted to the affected workers and tasks."""
        function_count = len(self.inference.config.function_set)

        z_sums: dict[str, np.ndarray] = {}
        z_counts: dict[str, int] = {}
        dt_sums: dict[str, np.ndarray] = {}
        dt_counts: dict[str, int] = {}
        i_sums: dict[str, float] = {}
        i_counts: dict[str, int] = {}
        dw_sums: dict[str, np.ndarray] = {}

        for record in records:
            post_z1, post_i1, post_dw, post_dt, _ = self.inference._expectation(
                record, params
            )
            n_labels = record.responses.size

            if record.task_id in affected_tasks:
                if record.task_id not in z_sums:
                    z_sums[record.task_id] = np.zeros(n_labels)
                    z_counts[record.task_id] = 0
                    dt_sums[record.task_id] = np.zeros(function_count)
                    dt_counts[record.task_id] = 0
                z_sums[record.task_id] += post_z1
                z_counts[record.task_id] += 1
                dt_sums[record.task_id] += post_dt.sum(axis=0)
                dt_counts[record.task_id] += n_labels

            if record.worker_id in affected_workers:
                if record.worker_id not in i_sums:
                    i_sums[record.worker_id] = 0.0
                    i_counts[record.worker_id] = 0
                    dw_sums[record.worker_id] = np.zeros(function_count)
                i_sums[record.worker_id] += float(post_i1.sum())
                i_counts[record.worker_id] += n_labels
                dw_sums[record.worker_id] += post_dw.sum(axis=0)

        new_params = params.copy()
        for task_id in z_sums:
            count = max(1, z_counts[task_id])
            influence = dt_sums[task_id] / max(1, dt_counts[task_id])
            total = influence.sum()
            influence = (
                influence / total
                if total > 0
                else self.inference.config.function_set.uniform_weights()
            )
            new_params.tasks[task_id] = TaskParameters(
                label_probs=np.clip(z_sums[task_id] / count, 0.0, 1.0),
                influence_weights=influence,
            )
        for worker_id in i_sums:
            count = max(1, i_counts[worker_id])
            weights = dw_sums[worker_id] / count
            total = weights.sum()
            weights = (
                weights / total
                if total > 0
                else self.inference.config.function_set.uniform_weights()
            )
            new_params.workers[worker_id] = WorkerParameters(
                p_qualified=min(1.0, max(0.0, i_sums[worker_id] / count)),
                distance_weights=weights,
            )
        return new_params
