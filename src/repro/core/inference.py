"""The location-aware inference model (IM) and its EM parameter estimation.

Section III of the paper defines a graphical model in which every observed
answer ``r_{w,t,k}`` is generated from four latent variables: the label truth
``z_{t,k}``, the worker's inherent quality ``i_w``, the worker's distance
profile ``d_w`` and the POI's influence profile ``d_t``.  The likelihood of an
answer is

* ``P(r = z | i_w = 0) = 0.5``                       (unqualified ⇒ random), and
* ``P(r = z | i_w = 1, d_w, d_t) = q(d_w, d_t)``     with
  ``q = α · f_{d_w}(d) + (1 - α) · f_{d_t}(d)``       (Equation 8),

where ``d`` is the normalised worker-to-POI distance.  Parameters are estimated
by EM (Equations 12 and 14).  The E-step posterior factorises enough that all
marginals needed by the M-step have closed forms of cost ``O(|F|)`` per answer,
which is what :meth:`LocationAwareInference._expectation` computes; the overall
cost per iteration is ``O(B · |L_t| · |F|)`` matching the paper's complexity
analysis.

Two EM engines implement that iteration:

* ``engine="vectorized"`` (the default) flattens the answer log once per fit
  into an :class:`~repro.core.em_kernel.AnswerTensor` and runs every iteration
  as batched NumPy kernels over all answers at once
  (:func:`repro.core.em_kernel.em_step`), with parameters held in a flat
  :class:`~repro.core.params.ArrayParameterStore`.  Same asymptotics, but the
  per-iteration constant drops from a Python interpreter step per answer to a
  few C-level array passes — this is what makes the paper's 50k-assignment
  scalability runs (Figures 12–13) tractable.
* ``engine="reference"`` is the original per-record loop
  (:meth:`LocationAwareInference._expectation` per ``(worker, task)`` pair with
  dict-based scatter-adds in the M-step).  It is kept as the executable
  specification the vectorised engine is equivalence-tested against
  (``tests/test_em_equivalence.py``), and as a fallback for debugging.
* ``engine="sparse"`` runs the same vectorised iteration but sources the
  per-answer distances from a :class:`~repro.spatial.candidates.CandidateIndex`
  (the CSR candidate structure shared with the sparse AccOpt engine) instead
  of exact per-pair geometry: observed pairs within
  :attr:`InferenceConfig.candidate_radius` get their cached exact normalised
  distance, pruned pairs the maximal distance ``1.0``.  The EM iteration was
  already O(answers) — never dense W×T — so what this buys is a fit whose
  *distance* work is O(nnz) and shared with assignment; with a radius
  covering the whole universe it is bit-identical to ``"vectorized"``.

The class implements the common :class:`~repro.baselines.base.LabelInferenceModel`
interface so the experiment harness can compare it directly against MV and
Dawid–Skene.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.base import LabelInferenceModel
from repro.core.distance_functions import DistanceFunctionSet, PAPER_FUNCTION_SET
from repro.core import em_kernel
from repro.core.em_kernel import AnswerTensor
from repro.core.params import (
    ArrayParameterStore,
    ModelParameters,
    TaskParameters,
    WorkerParameters,
)
from repro.data.models import AnswerSet, Task, Worker
from repro.spatial.candidates import CandidateIndex
from repro.spatial.distance import DistanceModel
from repro.utils.validation import clamp_probability

#: Valid values of :attr:`InferenceConfig.engine`.
EM_ENGINES = ("vectorized", "sparse", "reference")


@dataclass
class InferenceConfig:
    """Hyper-parameters of the location-aware inference model.

    Defaults follow the paper's experimental setup: ``α = 0.5``,
    ``F = {f_0.1, f_10, f_100}`` and a convergence threshold of 0.005 on the
    maximum parameter change.

    ``engine`` selects the EM implementation: ``"vectorized"`` (default) runs
    the batched array kernel of :mod:`repro.core.em_kernel`; ``"sparse"``
    runs the same kernels but gathers per-answer distances from the CSR
    candidate structure bounded by ``candidate_radius`` (raw coordinate
    units; required for this engine, ``inf`` keeps every pair in radius);
    ``"reference"`` runs the original per-record loop, kept for equivalence
    testing.
    """

    function_set: DistanceFunctionSet = field(default_factory=lambda: PAPER_FUNCTION_SET)
    alpha: float = 0.5
    max_iterations: int = 100
    convergence_threshold: float = 0.005
    initial_p_qualified: float = 0.8
    engine: str = "vectorized"
    candidate_radius: float | None = None

    def __post_init__(self) -> None:
        if self.engine not in EM_ENGINES:
            raise ValueError(
                f"engine must be one of {EM_ENGINES}, got {self.engine!r}"
            )
        if self.engine == "sparse" and self.candidate_radius is None:
            raise ValueError(
                "engine='sparse' needs a candidate_radius (raw coordinate "
                "units; use inf to keep every pair a candidate)"
            )
        if self.candidate_radius is not None and not self.candidate_radius > 0:
            raise ValueError(
                f"candidate_radius must be positive, got {self.candidate_radius}"
            )
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")
        if self.max_iterations <= 0:
            raise ValueError(
                f"max_iterations must be positive, got {self.max_iterations}"
            )
        if self.convergence_threshold < 0:
            raise ValueError(
                f"convergence_threshold must be non-negative, got "
                f"{self.convergence_threshold}"
            )
        if not 0.0 < self.initial_p_qualified < 1.0:
            raise ValueError(
                f"initial_p_qualified must lie strictly inside (0, 1), got "
                f"{self.initial_p_qualified}"
            )


@dataclass
class InferenceResult:
    """Outcome of one EM run.

    ``store`` is the vectorised engine's final row-aligned
    :class:`~repro.core.params.ArrayParameterStore` (``None`` on the reference
    engine).  The serving path's incremental updater adopts it as its live
    store after a full refresh, so the refresh hands back array state without
    a dict round-trip.
    """

    parameters: ModelParameters
    iterations: int
    converged: bool
    convergence_trace: list[float]
    log_likelihood_trace: list[float]
    store: ArrayParameterStore | None = None

    @property
    def final_log_likelihood(self) -> float:
        return self.log_likelihood_trace[-1] if self.log_likelihood_trace else float("nan")


@dataclass
class _AnswerRecord:
    """Internal flattened view of one (worker, task) answer used by the E-step."""

    worker_id: str
    task_id: str
    responses: np.ndarray
    distance: float
    f_values: np.ndarray  # the function set evaluated at `distance`


class LocationAwareInference(LabelInferenceModel):
    """The paper's inference model (IM).

    Parameters
    ----------
    tasks:
        Every task that may appear in the answer set.
    workers:
        Every worker that may appear in the answer set (their locations are
        needed to compute distances).
    distance_model:
        Shared normalised-distance computer.
    config:
        EM hyper-parameters; defaults reproduce the paper's setting.
    """

    def __init__(
        self,
        tasks: list[Task],
        workers: list[Worker],
        distance_model: DistanceModel,
        config: InferenceConfig | None = None,
    ) -> None:
        super().__init__(tasks)
        if not workers:
            raise ValueError("the inference model needs at least one worker")
        self._workers = {worker.worker_id: worker for worker in workers}
        if len(self._workers) != len(workers):
            raise ValueError("worker ids must be unique")
        self._distance_model = distance_model
        self._config = config or InferenceConfig()
        self._parameters = ModelParameters(
            function_set=self._config.function_set, alpha=self._config.alpha
        )
        self._last_result: InferenceResult | None = None
        # Sparse-engine candidate structure, built lazily on the first fit and
        # topped up with tasks registered afterwards.
        self._candidate_index: CandidateIndex | None = None
        self._candidate_synced = 0

    # ------------------------------------------------------------------ props
    @property
    def config(self) -> InferenceConfig:
        return self._config

    @property
    def parameters(self) -> ModelParameters:
        return self._parameters

    @property
    def distance_model(self) -> DistanceModel:
        return self._distance_model

    @property
    def workers(self) -> dict[str, Worker]:
        return dict(self._workers)

    @property
    def last_result(self) -> InferenceResult | None:
        return self._last_result

    # -------------------------------------------------------------- interface
    def fit(
        self,
        answers: AnswerSet,
        initial: ModelParameters | ArrayParameterStore | None = None,
    ) -> "LocationAwareInference":
        """Run full EM on ``answers`` (Section III-C).

        ``initial`` warm-starts the run from a previous estimate — either a
        live :class:`~repro.core.params.ModelParameters` or a (possibly
        restored) :class:`~repro.core.params.ArrayParameterStore` snapshot, as
        published by the online serving subsystem (:mod:`repro.serving`).
        """
        self._last_result = self.run_em(answers, initial=initial)
        self._parameters = self._last_result.parameters
        self._fitted = True
        return self

    def fit_from_tensor(
        self,
        tensor: AnswerTensor,
        initial: ModelParameters | ArrayParameterStore | None = None,
        initial_store: ArrayParameterStore | None = None,
        answer_weights: "np.ndarray | None" = None,
    ) -> "LocationAwareInference":
        """Run full EM directly against a prebuilt (live) :class:`AnswerTensor`.

        This is the serving path's log-free full refresh: the incremental
        updater maintains the tensor across micro-batches, so the periodic
        re-fit skips the ``AnswerSet`` → tensor flatten entirely and costs
        only the EM iterations themselves.  ``initial`` warm-starts exactly
        like :meth:`fit`; ``initial_store`` optionally supplies the *same*
        estimate already gathered into a store row-aligned with ``tensor``
        (the updater's live store), skipping the dict→array gather too.
        Vectorised engine only — the reference engine has no tensor form.
        ``answer_weights`` (one weight per tensor answer row) runs a weighted
        EM — the decayed/trust-aware refresh; ``None`` is the exact kernel.
        """
        self._last_result = self.run_em(
            None,
            initial=initial,
            tensor=tensor,
            initial_store=initial_store,
            answer_weights=answer_weights,
        )
        self._parameters = self._last_result.parameters
        self._fitted = True
        return self

    def run_em_detached(
        self,
        tensor: AnswerTensor,
        initial: ModelParameters | None = None,
        initial_store: ArrayParameterStore | None = None,
        answer_weights: "np.ndarray | None" = None,
    ) -> InferenceResult:
        """Run the vectorised EM loop **without mutating this model**.

        The pipelined serving refresh calls this from a background thread
        against a frozen :meth:`AnswerTensor.snapshot` while the ingest thread
        keeps using the model for localized applies: the loop reads only the
        immutable :class:`InferenceConfig`, so concurrent detached runs are
        safe.  The caller makes the result current later (after reconciling
        answers that arrived mid-fit) via :meth:`adopt_result`.
        """
        return self._run_em_vectorized(
            None,
            initial,
            tensor=tensor,
            initial_store=initial_store,
            answer_weights=answer_weights,
        )

    def adopt_result(self, result: InferenceResult) -> "LocationAwareInference":
        """Install a detached EM result as the model's current fit.

        The atomic publish step of a pipelined refresh: after the background
        fit finished and its store was reconciled with mid-fit answers, this
        makes the result visible exactly as :meth:`fit_from_tensor` would
        have.
        """
        self._last_result = result
        self._parameters = result.parameters
        self._fitted = True
        return self

    def label_probabilities(self, task_id: str) -> np.ndarray:
        self._require_fitted()
        task = self._require_task(task_id)
        return self._parameters.task(task_id, num_labels=task.num_labels).label_probs.copy()

    def add_worker(self, worker: Worker) -> bool:
        """Register a worker that joined after construction (open-world growth).

        Returns ``True`` if the worker was new.  Until the worker's answers
        are fitted, predictions about them fall back to the footnote-3 prior —
        the same cold-start treatment the paper gives brand-new workers.
        """
        existing = self._workers.get(worker.worker_id)
        if existing is not None:
            if existing is not worker and existing != worker:
                raise ValueError(
                    f"worker id {worker.worker_id!r} is already registered with "
                    "different content"
                )
            return False
        self._workers[worker.worker_id] = worker
        return True

    def warm_start(
        self, parameters: ModelParameters | ArrayParameterStore
    ) -> "LocationAwareInference":
        """Adopt an existing estimate without running EM.

        Used by the serving subsystem to resume from a restored snapshot: the
        model becomes immediately queryable (predictions, incremental updates)
        and the next :meth:`fit` naturally warm-starts from these values.
        """
        if isinstance(parameters, ArrayParameterStore):
            parameters = parameters.to_model()
        self._parameters = parameters
        self._fitted = True
        return self

    # ------------------------------------------------------------------- EM
    def run_em(
        self,
        answers: AnswerSet | None,
        initial: ModelParameters | ArrayParameterStore | None = None,
        tensor: AnswerTensor | None = None,
        initial_store: ArrayParameterStore | None = None,
        answer_weights: "np.ndarray | None" = None,
    ) -> InferenceResult:
        """Run EM to convergence and return the full trace.

        ``initial`` allows warm-starting from previous parameters, which is how
        the framework re-runs the model as new answers arrive; an
        :class:`~repro.core.params.ArrayParameterStore` (e.g. a serving
        snapshot restored from disk) is accepted directly and expanded through
        the same footnote-3 priors as a live estimate.  Dispatches to the
        engine selected by :attr:`InferenceConfig.engine`.

        ``tensor`` runs the vectorised engine against a prebuilt (live)
        :class:`~repro.core.em_kernel.AnswerTensor` instead of flattening
        ``answers`` — the log-free serving refresh.  ``initial_store``
        optionally provides the warm-start estimate pre-gathered into a store
        row-aligned with that tensor (it is only honoured when its row order
        matches; results are identical either way).
        """
        if isinstance(initial, ArrayParameterStore):
            initial = initial.to_model()
        if self._config.engine == "reference":
            if tensor is not None:
                raise ValueError(
                    "the reference engine runs per-record and cannot fit from "
                    "a prebuilt tensor; pass the AnswerSet instead"
                )
            if answer_weights is not None:
                raise ValueError(
                    "the reference engine has no weighted M-step; weighted "
                    "refreshes are vectorised-only"
                )
            return self._run_em_reference(answers, initial)
        return self._run_em_vectorized(
            answers,
            initial,
            tensor=tensor,
            initial_store=initial_store,
            answer_weights=answer_weights,
        )

    def _run_em_vectorized(
        self,
        answers: AnswerSet | None,
        initial: ModelParameters | None = None,
        tensor: AnswerTensor | None = None,
        initial_store: ArrayParameterStore | None = None,
        answer_weights: "np.ndarray | None" = None,
    ) -> InferenceResult:
        """Batched EM: build (or adopt) the answer tensor, then iterate kernels."""
        if tensor is None:
            if answers is None:
                raise ValueError("run_em needs an AnswerSet or a prebuilt tensor")
            tensor = self._build_tensor(answers)
        if (
            initial is not None
            and initial_store is not None
            and initial_store.worker_ids == tensor.worker_ids
            and initial_store.task_ids == tensor.task_ids
        ):
            # The caller's live store already holds exactly the warm-start
            # values this fit would gather from ``initial`` — use it directly.
            store = initial_store
            first_extra_delta = em_kernel.warm_start_extra_delta(initial, tensor)
        elif initial is not None:
            store = initial.to_array_store(
                tensor.worker_ids, tensor.task_ids, tensor.num_labels
            )
            first_extra_delta = em_kernel.warm_start_extra_delta(initial, tensor)
        else:
            store = em_kernel.initial_store(
                tensor,
                self._config.function_set,
                self._config.alpha,
                self._config.initial_p_qualified,
            )
            first_extra_delta = 0.0

        convergence_trace: list[float] = []
        likelihood_trace: list[float] = []
        converged = False
        iterations = 0

        for iteration in range(self._config.max_iterations):
            iterations = iteration + 1
            new_store, log_likelihood = em_kernel.em_step(
                tensor, store, answer_weights=answer_weights
            )
            # The M-step emits parameters under the *config's* alpha and
            # function set, exactly like the reference `_em_iteration`; only
            # the first E-step sees the warm-start's own values.
            new_store.alpha = self._config.alpha
            new_store.function_set = self._config.function_set
            delta = new_store.max_difference(store)
            if iteration == 0:
                delta = max(delta, first_extra_delta)
            store = new_store
            convergence_trace.append(delta)
            likelihood_trace.append(log_likelihood)
            if delta <= self._config.convergence_threshold:
                converged = True
                break

        return InferenceResult(
            parameters=store.to_model(),
            iterations=iterations,
            converged=converged,
            convergence_trace=convergence_trace,
            log_likelihood_trace=likelihood_trace,
            store=store,
        )

    def _run_em_reference(
        self, answers: AnswerSet, initial: ModelParameters | None = None
    ) -> InferenceResult:
        """The original per-record EM loop (the executable specification)."""
        records = self._build_records(answers)
        params = initial.copy() if initial is not None else self._initial_parameters(records)

        convergence_trace: list[float] = []
        likelihood_trace: list[float] = []
        converged = False
        iterations = 0

        for iteration in range(self._config.max_iterations):
            iterations = iteration + 1
            new_params, log_likelihood = self._em_iteration(records, params)
            delta = new_params.max_difference(params)
            params = new_params
            convergence_trace.append(delta)
            likelihood_trace.append(log_likelihood)
            if delta <= self._config.convergence_threshold:
                converged = True
                break

        return InferenceResult(
            parameters=params,
            iterations=iterations,
            converged=converged,
            convergence_trace=convergence_trace,
            log_likelihood_trace=likelihood_trace,
        )

    # ----------------------------------------------------------- EM internals
    def _pair_distance_fn(self) -> "em_kernel.PairDistanceFn":
        """The sparse engine's per-answer distance source.

        Syncs the :class:`CandidateIndex` with tasks registered since the
        last fit, then returns the closure the tensor build calls: observed
        pairs inside the candidate radius reuse the cached exact distance,
        pruned pairs fall back to the maximal normalised distance 1.0.
        """
        assert self._config.candidate_radius is not None
        task_list = list(self._tasks.values())
        if self._candidate_index is None:
            self._candidate_index = CandidateIndex(
                task_list,
                self._distance_model,
                self._config.candidate_radius,
            )
        else:
            for task in task_list[self._candidate_synced :]:
                self._candidate_index.add_task(task)
        self._candidate_synced = len(task_list)
        index = self._candidate_index

        def pair_distances(worker_ids, task_ids):
            return index.pair_distances(worker_ids, task_ids, self._workers)

        return pair_distances

    def _build_tensor(self, answers: AnswerSet) -> AnswerTensor:
        """Flatten ``answers`` into the vectorised engine's index arrays."""
        return AnswerTensor.build(
            answers,
            self._tasks,
            self._workers,
            self._distance_model,
            self._config.function_set,
            pair_distance_fn=(
                self._pair_distance_fn()
                if self._config.engine == "sparse"
                else None
            ),
        )

    def _build_records(self, answers: AnswerSet) -> list[_AnswerRecord]:
        records: list[_AnswerRecord] = []
        for answer in answers:
            task = self._tasks.get(answer.task_id)
            if task is None:
                raise KeyError(f"answer references unknown task {answer.task_id!r}")
            worker = self._workers.get(answer.worker_id)
            if worker is None:
                raise KeyError(f"answer references unknown worker {answer.worker_id!r}")
            if answer.num_labels != task.num_labels:
                raise ValueError(
                    f"answer for task {task.task_id!r} has {answer.num_labels} labels, "
                    f"task has {task.num_labels}"
                )
            distance = self._distance_model.worker_task_distance(
                worker.locations, task.location
            )
            records.append(
                _AnswerRecord(
                    worker_id=answer.worker_id,
                    task_id=answer.task_id,
                    responses=np.asarray(answer.responses, dtype=int),
                    distance=distance,
                    f_values=self._config.function_set.evaluate(distance),
                )
            )
        return records

    def _initial_parameters(self, records: list[_AnswerRecord]) -> ModelParameters:
        """Initialise: soft majority vote for labels, optimistic priors elsewhere."""
        function_set = self._config.function_set
        uniform = function_set.uniform_weights()

        vote_sums: dict[str, np.ndarray] = {}
        vote_counts: dict[str, int] = {}
        worker_ids: set[str] = set()
        for record in records:
            worker_ids.add(record.worker_id)
            if record.task_id not in vote_sums:
                vote_sums[record.task_id] = np.zeros(record.responses.size)
                vote_counts[record.task_id] = 0
            vote_sums[record.task_id] += record.responses
            vote_counts[record.task_id] += 1

        tasks = {}
        for task_id, sums in vote_sums.items():
            count = vote_counts[task_id]
            probs = np.clip(sums / count, 0.02, 0.98) if count else np.full(sums.size, 0.5)
            tasks[task_id] = TaskParameters(
                label_probs=probs, influence_weights=uniform.copy()
            )

        workers = {
            worker_id: WorkerParameters(
                p_qualified=self._config.initial_p_qualified,
                distance_weights=uniform.copy(),
            )
            for worker_id in sorted(worker_ids)
        }
        return ModelParameters(
            function_set=function_set,
            alpha=self._config.alpha,
            workers=workers,
            tasks=tasks,
        )

    def _expectation(
        self, record: _AnswerRecord, params: ModelParameters
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, float]:
        """Closed-form E-step marginals for one answer vector.

        Returns ``(post_z1, post_i1, post_dw, post_dt, log_likelihood)`` where
        ``post_z1`` and ``post_i1`` are per-label vectors, ``post_dw`` and
        ``post_dt`` are per-label × |F| matrices, and ``log_likelihood`` is the
        summed log of the answer probabilities ``P(r_{w,t,k})``.
        """
        alpha = params.alpha
        worker = params.worker(record.worker_id)
        task = params.task(record.task_id, num_labels=record.responses.size)

        f_values = record.f_values
        p_qualified = clamp_probability(worker.p_qualified)
        p_unqualified = 1.0 - p_qualified
        dw = worker.distance_weights
        dt = task.influence_weights

        worker_quality = float(np.dot(dw, f_values))          # DQ_w at this distance
        poi_quality = float(np.dot(dt, f_values))              # IQ_t at this distance
        s_q = alpha * worker_quality + (1.0 - alpha) * poi_quality
        s_q = clamp_probability(s_q)
        # Per-function rows/columns of q(d_w, d_t) marginalised over the other
        # variable's current weights.
        q_row = alpha * f_values + (1.0 - alpha) * poi_quality     # varies with d_w
        q_col = alpha * worker_quality + (1.0 - alpha) * f_values  # varies with d_t

        responses = record.responses
        pz1 = np.clip(task.label_probs, 1e-9, 1.0 - 1e-9)
        pz_equal_r = np.where(responses == 1, pz1, 1.0 - pz1)      # P(z = r)
        pz_not_r = 1.0 - pz_equal_r

        # P(r) per label: the normaliser of the joint posterior.
        evidence = 0.5 * p_unqualified + p_qualified * (
            pz_equal_r * s_q + pz_not_r * (1.0 - s_q)
        )
        evidence = np.clip(evidence, 1e-12, None)

        # P(z = 1 | r): the z=1 branch uses s_q when r=1 and (1-s_q) when r=0.
        agree_factor = np.where(responses == 1, s_q, 1.0 - s_q)
        post_z1 = pz1 * (0.5 * p_unqualified + p_qualified * agree_factor) / evidence

        post_i1 = p_qualified * (pz_equal_r * s_q + pz_not_r * (1.0 - s_q)) / evidence

        # P(d_w = a | r) per label: (labels x |F|).
        agree_dw = pz_equal_r[:, None] * q_row[None, :] + pz_not_r[:, None] * (
            1.0 - q_row[None, :]
        )
        post_dw = dw[None, :] * (0.5 * p_unqualified + p_qualified * agree_dw)
        post_dw /= evidence[:, None]

        agree_dt = pz_equal_r[:, None] * q_col[None, :] + pz_not_r[:, None] * (
            1.0 - q_col[None, :]
        )
        post_dt = dt[None, :] * (0.5 * p_unqualified + p_qualified * agree_dt)
        post_dt /= evidence[:, None]

        log_likelihood = float(np.sum(np.log(evidence)))
        return post_z1, post_i1, post_dw, post_dt, log_likelihood

    def _em_iteration(
        self, records: list[_AnswerRecord], params: ModelParameters
    ) -> tuple[ModelParameters, float]:
        """One combined E+M step (Equations 12 and 14)."""
        function_count = len(self._config.function_set)

        z_sums: dict[str, np.ndarray] = {}
        z_counts: dict[str, int] = {}
        dt_sums: dict[str, np.ndarray] = {}
        dt_counts: dict[str, int] = {}
        i_sums: dict[str, float] = {}
        i_counts: dict[str, int] = {}
        dw_sums: dict[str, np.ndarray] = {}

        total_log_likelihood = 0.0
        for record in records:
            post_z1, post_i1, post_dw, post_dt, log_likelihood = self._expectation(
                record, params
            )
            total_log_likelihood += log_likelihood
            n_labels = record.responses.size

            if record.task_id not in z_sums:
                z_sums[record.task_id] = np.zeros(n_labels)
                z_counts[record.task_id] = 0
                dt_sums[record.task_id] = np.zeros(function_count)
                dt_counts[record.task_id] = 0
            z_sums[record.task_id] += post_z1
            z_counts[record.task_id] += 1
            dt_sums[record.task_id] += post_dt.sum(axis=0)
            dt_counts[record.task_id] += n_labels

            if record.worker_id not in i_sums:
                i_sums[record.worker_id] = 0.0
                i_counts[record.worker_id] = 0
                dw_sums[record.worker_id] = np.zeros(function_count)
            i_sums[record.worker_id] += float(post_i1.sum())
            i_counts[record.worker_id] += n_labels
            dw_sums[record.worker_id] += post_dw.sum(axis=0)

        new_tasks: dict[str, TaskParameters] = {}
        for task_id, sums in z_sums.items():
            count = max(1, z_counts[task_id])
            label_probs = np.clip(sums / count, 0.0, 1.0)
            influence = dt_sums[task_id] / max(1, dt_counts[task_id])
            influence_total = influence.sum()
            if influence_total <= 0:
                influence = self._config.function_set.uniform_weights()
            else:
                influence = influence / influence_total
            new_tasks[task_id] = TaskParameters(
                label_probs=label_probs, influence_weights=influence
            )

        new_workers: dict[str, WorkerParameters] = {}
        for worker_id, total in i_sums.items():
            count = max(1, i_counts[worker_id])
            p_qualified = min(1.0, max(0.0, total / count))
            weights = dw_sums[worker_id] / count
            weights_total = weights.sum()
            if weights_total <= 0:
                weights = self._config.function_set.uniform_weights()
            else:
                weights = weights / weights_total
            new_workers[worker_id] = WorkerParameters(
                p_qualified=p_qualified, distance_weights=weights
            )

        new_params = ModelParameters(
            function_set=self._config.function_set,
            alpha=self._config.alpha,
            workers=new_workers,
            tasks=new_tasks,
        )
        return new_params, total_log_likelihood

    # ----------------------------------------------------------- convenience
    def answer_accuracy(self, worker_id: str, task_id: str) -> float:
        """Estimated ``P(r = z)`` for ``worker_id`` answering ``task_id`` (Eq. 9)."""
        task = self._require_task(task_id)
        worker = self._workers.get(worker_id)
        if worker is None:
            raise KeyError(f"unknown worker {worker_id!r}")
        distance = self._distance_model.worker_task_distance(
            worker.locations, task.location
        )
        return self._parameters.answer_accuracy(worker_id, task_id, distance)
