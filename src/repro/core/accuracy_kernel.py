"""Vectorised ΔAcc scoring kernels for the AccOpt assigner.

:mod:`repro.core.accuracy` carries Section IV-B's math one label at a time:
:class:`~repro.core.accuracy.LabelAccuracy` pairs, Lemma 2's recursion and the
Equation 20 improvement, all driven through scalar ``ModelParameters`` lookups.
This module is the array-backed twin the vectorised
:class:`~repro.assign.accopt.AccOptAssigner` engine runs on — the assignment
counterpart of :mod:`repro.core.em_kernel`:

* :func:`answer_accuracy_matrix` evaluates Equation 9 for **every** candidate
  (worker, task) pair in one batch, reading the flat arrays of an
  :class:`~repro.core.params.ArrayParameterStore` against a precomputed
  normalised-distance matrix (``DistanceModel.worker_task_distances`` /
  :func:`~repro.spatial.distance.normalised_distance_matrix`);
* :class:`BatchAccuracyState` stores the Equation 15 accuracy pairs of every
  label of every task as flat ragged arrays (the exact layout of
  ``ArrayParameterStore.label_probs``), mirroring one
  :class:`~repro.core.accuracy.LabelAccuracy` list per task;
* :func:`marginal_gains` scores the marginal ΔAcc of every candidate pair in
  one ``(|W|, |T|)`` array operation, and :func:`add_worker` commits a greedy
  pick by re-scoring only the chosen task (Algorithm 1's incremental update).

The closed form behind :func:`marginal_gains`: Lemma 2's recursion

``Acc' = (m·Acc + p_e)/(m+1)·p_e + (m·Acc + (1−p_e))/(m+1)·(1−p_e)``

collapses algebraically to ``Acc' = (m·Acc + s)/(m+1)`` with
``s = p_e² + (1−p_e)²``, identically for the ``z ≡ 1`` and ``z ≡ 0`` branches.
The Equation 20 marginal improvement of adding one worker therefore sums over
the task's labels to ``(|L_t|·s − E_t)/(m_t+1)``, where
``E_t = Σ_k [p_k·Acc¹_k + (1−p_k)·Acc⁰_k]`` is the task's current expected
accuracy mass — a quantity that only changes when the task itself receives a
new tentative worker.  That is what turns the initial scoring into one fused
``(|W|, |T|)`` kernel and each greedy re-score into an O(|W|) column update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.params import ArrayParameterStore


def answer_accuracy_matrix(
    store: ArrayParameterStore, distances: np.ndarray
) -> np.ndarray:
    """Equation 9 — ``P(r_{w,t,k} = z_{t,k})`` — for every (worker, task) pair.

    ``distances`` is the ``(|W|, |T|)`` matrix of normalised worker-to-task
    distances over the store's orderings.  Returns the same-shape matrix of
    estimated answer accuracies: the batched counterpart of
    :meth:`repro.core.params.ModelParameters.answer_accuracy`.
    """
    distances = np.asarray(distances, dtype=float)
    expected_shape = (store.num_workers, store.num_tasks)
    if distances.shape != expected_shape:
        raise ValueError(
            f"distances must have shape {expected_shape}, got {distances.shape}"
        )
    squared = distances * distances
    distance_quality = np.zeros(expected_shape)
    influence_quality = np.zeros(expected_shape)
    # |F| is tiny (three functions in the paper), so one fused (W, T) pass per
    # function beats materialising the (F, W, T) tensor.
    for index, lam in enumerate(store.function_set.lambdas):
        quality = (1.0 + np.exp(-lam * squared)) / 2.0
        distance_quality += store.distance_weights[:, index, None] * quality
        influence_quality += store.influence_weights[None, :, index] * quality
    qualified = (
        store.alpha * distance_quality + (1.0 - store.alpha) * influence_quality
    )
    p_qualified = store.p_qualified[:, None]
    return p_qualified * qualified + (1.0 - p_qualified) * 0.5


def answer_accuracy_csr(
    store: ArrayParameterStore,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
) -> np.ndarray:
    """Equation 9 for the candidate pairs of a CSR structure only.

    Sparse twin of :func:`answer_accuracy_matrix`: ``indptr``/``indices``
    describe per worker row (in the store's worker order) the candidate task
    columns, ``data`` their normalised distances, and the result is the
    ``(nnz,)`` vector of answer accuracies aligned with ``indices``.  The
    accumulation order over the function set matches the dense kernel exactly
    (one fused pass per function), so a candidate pair's accuracy is
    bit-identical to the dense matrix entry — which is what lets the sparse
    AccOpt engine reproduce the dense greedy pick sequence when the radius
    covers the whole universe.
    """
    indptr = np.asarray(indptr, dtype=np.intp)
    indices = np.asarray(indices, dtype=np.intp)
    data = np.asarray(data, dtype=float)
    if indptr.size != store.num_workers + 1:
        raise ValueError(
            f"indptr must have {store.num_workers + 1} entries, got {indptr.size}"
        )
    if indices.size != data.size or indices.size != int(indptr[-1]):
        raise ValueError("indices and data must both hold indptr[-1] entries")
    rows = np.repeat(np.arange(store.num_workers, dtype=np.intp), np.diff(indptr))
    squared = data * data
    distance_quality = np.zeros(data.size)
    influence_quality = np.zeros(data.size)
    for index, lam in enumerate(store.function_set.lambdas):
        quality = (1.0 + np.exp(-lam * squared)) / 2.0
        distance_quality += store.distance_weights[rows, index] * quality
        influence_quality += store.influence_weights[indices, index] * quality
    qualified = (
        store.alpha * distance_quality + (1.0 - store.alpha) * influence_quality
    )
    p_qualified = store.p_qualified[rows]
    return p_qualified * qualified + (1.0 - p_qualified) * 0.5


def far_field_accuracy(
    store: ArrayParameterStore, far_distance: float = 1.0
) -> float:
    """The shared closed-form Equation 9 accuracy of an out-of-radius pair.

    Beyond the candidate radius a worker is "maximally far" from the task
    (normalised distance clipped to ``far_distance = 1.0``), and the pair
    carries no fitted signal worth an O(W·T) slot, so the sparse engines
    score **every** far pair with one shared scalar: Equation 9 evaluated at
    the far distance with the uniform function weights (the EM
    initialisation, hence the natural zero-information prior for both the
    worker's distance weights and the task's influence weights) and the batch
    mean qualification probability.  Because the scalar is shared, far-field
    marginal gains collapse to per-task values independent of the worker,
    which is what keeps the sparse greedy loop's bookkeeping O(T) instead of
    O(W·T).
    """
    lambdas = np.asarray(store.function_set.lambdas, dtype=float)
    quality = (1.0 + np.exp(-lambdas * far_distance * far_distance)) / 2.0
    mixed = float(store.function_set.uniform_weights() @ quality)
    p_qualified = (
        float(store.p_qualified.mean()) if store.num_workers else 0.0
    )
    return p_qualified * mixed + (1.0 - p_qualified) * 0.5


def _segment_sums(values: np.ndarray, label_offsets: np.ndarray) -> np.ndarray:
    """Per-task sums of a flat per-label array (tasks always own ≥ 1 label)."""
    return np.add.reduceat(values, label_offsets[:-1])


@dataclass
class BatchAccuracyState:
    """Accuracy pairs of every label of every task, as flat ragged arrays.

    The array counterpart of one :class:`~repro.core.accuracy.LabelAccuracy`
    list per task: slot ``s`` of the flat arrays is label ``s`` in the
    ``label_offsets`` ragged layout (task ``j`` owns
    ``[label_offsets[j], label_offsets[j+1])``), exactly as
    :attr:`~repro.core.params.ArrayParameterStore.label_probs` stores them.

    ``expected_sum[j]`` caches ``E_j = Σ_k [p_k·Acc¹_k + (1−p_k)·Acc⁰_k]`` so
    :func:`marginal_gains` never touches the per-label arrays; it is refreshed
    by :func:`add_worker` for the one task a greedy pick changes.
    """

    label_offsets: np.ndarray  # (|T| + 1,) intp — ragged bounds into the slots
    num_labels: np.ndarray  # (|T|,) float — |L_t| per task
    p_z1: np.ndarray  # (S,) — the fixed ΔAcc weights (Equation 20)
    acc_correct: np.ndarray  # (S,) — Acc if the label is truly correct
    acc_incorrect: np.ndarray  # (S,) — Acc if the label is truly incorrect
    effective_answers: np.ndarray  # (|T|,) float — m_t = |W(t)| + |Ŵ(t)|
    expected_sum: np.ndarray  # (|T|,) — E_t, maintained by add_worker

    @property
    def num_tasks(self) -> int:
        return int(self.num_labels.size)

    def task_slice(self, task_index: int) -> slice:
        """Slice of the flat label arrays owned by task ``task_index``."""
        return slice(
            int(self.label_offsets[task_index]),
            int(self.label_offsets[task_index + 1]),
        )


def baseline_state(
    label_probs: np.ndarray,
    label_offsets: np.ndarray,
    answer_counts: Sequence[int] | np.ndarray,
) -> BatchAccuracyState:
    """Equation 15 baselines for every task at once.

    ``label_probs`` is the flat ragged ``P(z = 1)`` storage (the
    ``ArrayParameterStore`` layout), ``answer_counts`` the per-task ``|W(t)|``.
    Batched counterpart of
    :meth:`repro.core.accuracy.AccuracyEstimator.current_label_accuracies`.
    """
    p_z1 = np.array(label_probs, dtype=float)
    offsets = np.asarray(label_offsets, dtype=np.intp)
    counts = np.asarray(answer_counts, dtype=float)
    if offsets.ndim != 1 or offsets.size == 0 or int(offsets[-1]) != p_z1.size:
        raise ValueError(
            f"label_offsets must be ragged bounds over {p_z1.size} label slots"
        )
    if counts.shape != (offsets.size - 1,):
        raise ValueError(
            f"answer_counts must align with tasks: {counts.shape} vs {offsets.size - 1}"
        )
    if np.any(counts < 0):
        raise ValueError("answer counts must be non-negative")
    acc_correct = p_z1.copy()
    acc_incorrect = 1.0 - p_z1
    expected = _segment_sums(
        p_z1 * acc_correct + (1.0 - p_z1) * acc_incorrect, offsets
    )
    return BatchAccuracyState(
        label_offsets=offsets,
        num_labels=np.diff(offsets).astype(float),
        p_z1=p_z1,
        acc_correct=acc_correct,
        acc_incorrect=acc_incorrect,
        effective_answers=counts,
        expected_sum=expected,
    )


def _agreement_mass(answer_accuracy: np.ndarray | float) -> np.ndarray | float:
    """``s = p_e² + (1 − p_e)²`` — the only way ``p_e`` enters the recursion."""
    return answer_accuracy * answer_accuracy + (1.0 - answer_accuracy) * (
        1.0 - answer_accuracy
    )


def marginal_gains(
    state: BatchAccuracyState, answer_accuracies: np.ndarray
) -> np.ndarray:
    """Marginal ΔAcc of assigning each worker to each task, in one batch.

    ``answer_accuracies`` is the ``(|W|, |T|)`` Equation 9 matrix from
    :func:`answer_accuracy_matrix`.  Entry ``(i, j)`` equals the scalar path's
    ``gain − already`` for that pair (Algorithm 1 line 19): the summed
    Equation 20 improvement of the task's labels relative to the *current*
    tentative state ``Ŵ(t)``, using the ``(|L_t|·s − E_t)/(m_t+1)`` closed form
    derived in the module docstring.
    """
    s = _agreement_mass(np.asarray(answer_accuracies, dtype=float))
    return (state.num_labels[None, :] * s - state.expected_sum[None, :]) / (
        state.effective_answers[None, :] + 1.0
    )


def marginal_gains_csr(
    state: BatchAccuracyState,
    indices: np.ndarray,
    answer_accuracies: np.ndarray,
) -> np.ndarray:
    """Marginal ΔAcc for candidate pairs only — the sparse twin of
    :func:`marginal_gains`.

    ``indices`` are the task columns of the CSR candidate structure and
    ``answer_accuracies`` the aligned Equation 9 values from
    :func:`answer_accuracy_csr`; entry ``i`` equals the dense matrix entry
    ``(row_of(i), indices[i])`` bit-for-bit, since the
    ``(|L_t|·s − E_t)/(m_t+1)`` closed form involves only per-task state and
    the pair's own accuracy.
    """
    s = _agreement_mass(np.asarray(answer_accuracies, dtype=float))
    return (state.num_labels[indices] * s - state.expected_sum[indices]) / (
        state.effective_answers[indices] + 1.0
    )


def far_field_gains(
    state: BatchAccuracyState, far_accuracy: float
) -> np.ndarray:
    """Per-task marginal ΔAcc of adding one *far* worker to each task.

    With the shared :func:`far_field_accuracy` scalar, the Lemma 2 closed
    form no longer depends on which worker is added, so the far side of the
    sparse greedy loop needs only this ``(|T|,)`` vector — recomputed per
    task in O(1) after a pick, with ``max()`` acting as the admissible upper
    bound that decides whether a far assignment can beat the best candidate.
    """
    s = _agreement_mass(float(far_accuracy))
    return (state.num_labels * s - state.expected_sum) / (
        state.effective_answers + 1.0
    )


def marginal_gains_for_task(
    state: BatchAccuracyState, task_index: int, answer_accuracies: np.ndarray
) -> np.ndarray:
    """One column of :func:`marginal_gains` — the greedy loop's re-score."""
    s = _agreement_mass(np.asarray(answer_accuracies, dtype=float))
    return (
        state.num_labels[task_index] * s - state.expected_sum[task_index]
    ) / (state.effective_answers[task_index] + 1.0)


def add_worker(
    state: BatchAccuracyState, task_index: int, answer_accuracy: float
) -> None:
    """Commit one hypothetical worker onto ``task_index`` (Lemma 2, in place).

    Updates the task's accuracy pairs, its effective answer count and its
    cached ``E_t``; every other task's state is untouched, so the caller only
    needs to re-score this task's column.
    """
    sl = state.task_slice(task_index)
    m = state.effective_answers[task_index]
    s = _agreement_mass(float(answer_accuracy))
    state.acc_correct[sl] = (m * state.acc_correct[sl] + s) / (m + 1.0)
    state.acc_incorrect[sl] = (m * state.acc_incorrect[sl] + s) / (m + 1.0)
    state.effective_answers[task_index] = m + 1.0
    p = state.p_z1[sl]
    state.expected_sum[task_index] = float(
        np.sum(p * state.acc_correct[sl] + (1.0 - p) * state.acc_incorrect[sl])
    )


def add_workers(
    p_z1: np.ndarray,
    answer_count: int,
    answer_accuracies: Sequence[float],
) -> tuple[np.ndarray, np.ndarray]:
    """Lemma 2's recursion for one task's whole label vector.

    The batched twin of :meth:`repro.core.accuracy.LabelAccuracy.add_workers`:
    starts from the Equation 15 baselines of ``p_z1`` (one entry per label) and
    applies each hypothetical worker's Equation 9 accuracy in turn.  Returns
    the final ``(acc_if_correct, acc_if_incorrect)`` vectors; the equivalence
    tests hold these against the scalar recursion and the exponential
    :func:`repro.core.accuracy.enumerate_expected_accuracy` definition.
    """
    acc_correct = np.array(p_z1, dtype=float)
    acc_incorrect = 1.0 - acc_correct
    m = float(answer_count)
    for accuracy in answer_accuracies:
        s = _agreement_mass(float(accuracy))
        acc_correct = (m * acc_correct + s) / (m + 1.0)
        acc_incorrect = (m * acc_incorrect + s) / (m + 1.0)
        m += 1.0
    return acc_correct, acc_incorrect


def expected_improvement(
    p_z1: np.ndarray,
    acc_correct: np.ndarray,
    acc_incorrect: np.ndarray,
    baseline_correct: np.ndarray,
    baseline_incorrect: np.ndarray,
) -> np.ndarray:
    """Equation 20 per label, as arrays — ΔAcc of a state over its baseline."""
    return np.asarray(p_z1, dtype=float) * (
        np.asarray(acc_correct, dtype=float) - np.asarray(baseline_correct, dtype=float)
    ) + (1.0 - np.asarray(p_z1, dtype=float)) * (
        np.asarray(acc_incorrect, dtype=float)
        - np.asarray(baseline_incorrect, dtype=float)
    )
