"""Containers for the inference model's parameters.

The graphical model of Section III has four groups of parameters:

* ``P(z_{t,k} = 1)`` — per task ``t`` and label index ``k``, the probability the
  label is a correct label of the POI (:class:`TaskParameters.label_probs`);
* ``P(d_t)``        — per task, the multinomial weights over the
  distance-function set representing the POI's influence
  (:class:`TaskParameters.influence_weights`);
* ``P(i_w = 1)``    — per worker, the probability the worker is qualified
  (:class:`WorkerParameters.p_qualified`);
* ``P(d_w)``        — per worker, the multinomial weights representing the
  worker's distance sensitivity (:class:`WorkerParameters.distance_weights`).

:class:`ModelParameters` bundles them with the distance-function set and offers
the derived quantities every consumer needs: the distance-aware quality
(Definition 5), the POI influence quality (Definition 6) and the answer
accuracy ``P(r_{w,t,k} = z_{t,k})`` (Equation 9).

:class:`ArrayParameterStore` is the flat, array-backed twin used by the
vectorised EM engine (:mod:`repro.core.em_kernel`): the same four parameter
groups stored as contiguous NumPy arrays over integer worker/task indices, with
lossless conversion to and from :class:`ModelParameters` at the fit boundary so
every existing consumer keeps the dict-of-dataclasses API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.distance_functions import DistanceFunctionSet, PAPER_FUNCTION_SET
from repro.utils.validation import check_probability, check_probability_vector


@dataclass
class WorkerParameters:
    """Estimated parameters of one worker: ``P(i_w = 1)`` and ``P(d_w)``."""

    p_qualified: float
    distance_weights: np.ndarray

    def __post_init__(self) -> None:
        self.p_qualified = check_probability(self.p_qualified, "p_qualified")
        self.distance_weights = check_probability_vector(
            self.distance_weights, "distance_weights"
        )

    def copy(self) -> "WorkerParameters":
        return WorkerParameters(self.p_qualified, self.distance_weights.copy())


@dataclass
class TaskParameters:
    """Estimated parameters of one task: ``P(z_{t,k} = 1)`` per label and ``P(d_t)``."""

    label_probs: np.ndarray
    influence_weights: np.ndarray

    def __post_init__(self) -> None:
        self.label_probs = np.asarray(self.label_probs, dtype=float)
        if self.label_probs.ndim != 1 or self.label_probs.size == 0:
            raise ValueError(
                f"label_probs must be a non-empty vector, got shape {self.label_probs.shape}"
            )
        if np.any(self.label_probs < -1e-9) or np.any(self.label_probs > 1.0 + 1e-9):
            raise ValueError("label_probs must lie in [0, 1]")
        self.label_probs = np.clip(self.label_probs, 0.0, 1.0)
        self.influence_weights = check_probability_vector(
            self.influence_weights, "influence_weights"
        )

    @property
    def num_labels(self) -> int:
        return int(self.label_probs.size)

    def inferred_labels(self, threshold: float = 0.5) -> np.ndarray:
        """Binary decision per label: correct iff ``P(z=1) >= threshold``."""
        return (self.label_probs >= threshold).astype(int)

    def copy(self) -> "TaskParameters":
        return TaskParameters(self.label_probs.copy(), self.influence_weights.copy())


def _trusted_worker_parameters(
    p_qualified: float, distance_weights: np.ndarray
) -> WorkerParameters:
    """Build :class:`WorkerParameters` without re-validating the inputs.

    Only for values that already satisfy the invariants by construction (the
    EM kernels clip probabilities and renormalise weight rows); skipping
    ``__post_init__`` keeps the array→dict conversion out of the profile when
    a fit materialises thousands of entities.
    """
    params = object.__new__(WorkerParameters)
    params.p_qualified = float(p_qualified)
    params.distance_weights = distance_weights
    return params


def _trusted_task_parameters(
    label_probs: np.ndarray, influence_weights: np.ndarray
) -> TaskParameters:
    """Build :class:`TaskParameters` without re-validating the inputs."""
    params = object.__new__(TaskParameters)
    params.label_probs = label_probs
    params.influence_weights = influence_weights
    return params


@dataclass
class ModelParameters:
    """All estimated parameters of the location-aware inference model."""

    function_set: DistanceFunctionSet = field(default_factory=lambda: PAPER_FUNCTION_SET)
    alpha: float = 0.5
    workers: dict[str, WorkerParameters] = field(default_factory=dict)
    tasks: dict[str, TaskParameters] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {self.alpha}")

    # --------------------------------------------------------------- accessors
    def worker(self, worker_id: str) -> WorkerParameters:
        """Parameters of ``worker_id``; unseen workers get the footnote-3 prior.

        A brand-new worker is optimistically assumed to be fully qualified with
        all mass on the flattest distance function, so that the assigner
        prioritises them and their real quality is learned quickly.
        """
        params = self.workers.get(worker_id)
        if params is not None:
            return params
        return WorkerParameters(
            p_qualified=1.0,
            distance_weights=self.function_set.best_quality_weights(),
        )

    def task(self, task_id: str, num_labels: int | None = None) -> TaskParameters:
        """Parameters of ``task_id``; unseen tasks get uninformative labels and
        the footnote-3 best-influence prior."""
        params = self.tasks.get(task_id)
        if params is not None:
            return params
        if num_labels is None:
            raise KeyError(
                f"task {task_id!r} has no estimated parameters and num_labels was "
                "not provided to build a prior"
            )
        return TaskParameters(
            label_probs=np.full(num_labels, 0.5),
            influence_weights=self.function_set.best_quality_weights(),
        )

    def has_worker(self, worker_id: str) -> bool:
        return worker_id in self.workers

    def has_task(self, task_id: str) -> bool:
        return task_id in self.tasks

    # ------------------------------------------------------- derived quantities
    def worker_distance_quality(self, worker_id: str, distance: float) -> float:
        """Distance-aware quality ``DQ_w`` at ``distance`` (Definition 5)."""
        params = self.worker(worker_id)
        return self.function_set.weighted_quality(params.distance_weights, distance)

    def poi_influence_quality(self, task_id: str, distance: float) -> float:
        """POI-influence quality ``IQ_t`` at ``distance`` (Definition 6)."""
        params = self.task(task_id, num_labels=1)
        return self.function_set.weighted_quality(params.influence_weights, distance)

    def qualified_answer_accuracy(
        self, worker_id: str, task_id: str, distance: float
    ) -> float:
        """``P(r = z | i_w = 1)`` — Equation 8's linear combination."""
        return (
            self.alpha * self.worker_distance_quality(worker_id, distance)
            + (1.0 - self.alpha) * self.poi_influence_quality(task_id, distance)
        )

    def answer_accuracy(self, worker_id: str, task_id: str, distance: float) -> float:
        """``P(r_{w,t,k} = z_{t,k})`` — Equation 9.

        The probability that the worker's answer on any label of the task
        agrees with the (unknown) truth, marginalised over the worker being
        qualified or not.
        """
        p_qualified = self.worker(worker_id).p_qualified
        qualified = self.qualified_answer_accuracy(worker_id, task_id, distance)
        return p_qualified * qualified + (1.0 - p_qualified) * 0.5

    # ------------------------------------------------------------------- misc
    def copy(self) -> "ModelParameters":
        return ModelParameters(
            function_set=self.function_set,
            alpha=self.alpha,
            workers={wid: params.copy() for wid, params in self.workers.items()},
            tasks={tid: params.copy() for tid, params in self.tasks.items()},
        )

    def to_array_store(
        self,
        worker_ids: Sequence[str],
        task_ids: Sequence[str],
        num_labels: Sequence[int],
    ) -> "ArrayParameterStore":
        """Flatten into an :class:`ArrayParameterStore` over the given index maps.

        Entities missing from this estimate receive the same footnote-3 priors
        that :meth:`worker` and :meth:`task` fall back to, so the array view is
        exactly what the per-record EM engine would read through the accessors.
        """
        return ArrayParameterStore.from_model(self, worker_ids, task_ids, num_labels)

    def max_difference(self, other: "ModelParameters") -> float:
        """Maximum absolute parameter change between two estimates.

        This is the "maximum variance of parameters" convergence criterion the
        paper plots in Figure 10.  Workers or tasks present in only one of the
        two estimates contribute their full parameter magnitude.
        """
        worst = 0.0
        worker_ids = set(self.workers) | set(other.workers)
        for worker_id in worker_ids:
            a = self.worker(worker_id)
            b = other.worker(worker_id)
            worst = max(worst, abs(a.p_qualified - b.p_qualified))
            worst = max(worst, float(np.max(np.abs(a.distance_weights - b.distance_weights))))
        task_ids = set(self.tasks) | set(other.tasks)
        for task_id in task_ids:
            if task_id in self.tasks and task_id in other.tasks:
                a_t = self.tasks[task_id]
                b_t = other.tasks[task_id]
                if a_t.num_labels == b_t.num_labels:
                    worst = max(worst, float(np.max(np.abs(a_t.label_probs - b_t.label_probs))))
                else:
                    worst = 1.0
                worst = max(
                    worst,
                    float(np.max(np.abs(a_t.influence_weights - b_t.influence_weights))),
                )
            else:
                worst = 1.0
        return worst


@dataclass(frozen=True)
class StoreDelta:
    """The dirty rows of an :class:`ArrayParameterStore` since a known base.

    A delta captures copies of only the worker/task rows (and the tasks' flat
    label slots) that changed between two versions of a store over the *same*
    entity universe — the serving layer's O(changed) publish currency:
    instead of copying the full store per snapshot, the incremental updater
    emits one delta per micro-batch and the snapshot layer applies it onto the
    previous version's immutable base (copy-on-write at row granularity).
    ``num_workers`` / ``num_tasks`` stamp the universe the delta belongs to so
    an application onto a mismatched base fails loudly.
    """

    worker_rows: np.ndarray
    p_qualified: np.ndarray
    distance_weights: np.ndarray
    task_rows: np.ndarray
    influence_weights: np.ndarray
    label_slots: np.ndarray
    label_probs: np.ndarray
    num_workers: int
    num_tasks: int

    @property
    def changed_rows(self) -> int:
        """Total dirty rows carried (worker rows + task rows)."""
        return int(self.worker_rows.size + self.task_rows.size)

    def apply(self, store: "ArrayParameterStore") -> "ArrayParameterStore":
        """Patch the dirty rows into ``store`` (unfrozen, same universe).

        Validates row/slot bounds and carried-array shapes against the base
        before touching it, so a delta recorded against a different store (a
        corrupted or mis-sequenced chain) fails loudly instead of scribbling
        over the wrong rows.
        """
        if store.num_workers != self.num_workers or store.num_tasks != self.num_tasks:
            raise ValueError(
                f"delta over {self.num_workers} workers / {self.num_tasks} tasks "
                f"cannot apply to a store with {store.num_workers} / {store.num_tasks}"
            )
        if self.worker_rows.size and (
            int(self.worker_rows.min()) < 0
            or int(self.worker_rows.max()) >= store.num_workers
        ):
            raise ValueError(
                f"delta worker rows {self.worker_rows.min()}..{self.worker_rows.max()} "
                f"fall outside the base store's {store.num_workers} worker rows"
            )
        if self.task_rows.size and (
            int(self.task_rows.min()) < 0
            or int(self.task_rows.max()) >= store.num_tasks
        ):
            raise ValueError(
                f"delta task rows {self.task_rows.min()}..{self.task_rows.max()} "
                f"fall outside the base store's {store.num_tasks} task rows"
            )
        if self.label_slots.size and (
            int(self.label_slots.min()) < 0
            or int(self.label_slots.max()) >= store.num_label_slots
        ):
            raise ValueError(
                f"delta label slots {self.label_slots.min()}..{self.label_slots.max()} "
                f"fall outside the base store's {store.num_label_slots} label slots"
            )
        if (
            self.p_qualified.shape != self.worker_rows.shape
            or self.distance_weights.shape[:1] != self.worker_rows.shape
            or self.influence_weights.shape[:1] != self.task_rows.shape
            or self.label_probs.shape != self.label_slots.shape
        ):
            raise ValueError(
                "delta value arrays do not align with their row/slot indexes "
                f"(workers {self.worker_rows.shape[0]}, "
                f"p_qualified {self.p_qualified.shape[0]}, "
                f"distance_weights {self.distance_weights.shape[0]}; "
                f"tasks {self.task_rows.shape[0]}, "
                f"influence_weights {self.influence_weights.shape[0]}; "
                f"label slots {self.label_slots.shape[0]}, "
                f"label_probs {self.label_probs.shape[0]})"
            )
        store.p_qualified[self.worker_rows] = self.p_qualified
        store.distance_weights[self.worker_rows] = self.distance_weights
        store.influence_weights[self.task_rows] = self.influence_weights
        store.label_probs[self.label_slots] = self.label_probs
        return store


def _grown_buffer(buffer: np.ndarray, needed: int) -> np.ndarray:
    """Return ``buffer`` or a capacity-doubled replacement holding ``needed`` rows.

    The logical prefix is copied over; trailing capacity is uninitialised.
    Doubling keeps a sequence of appends amortized O(1) per appended row.
    """
    capacity = buffer.shape[0]
    if needed <= capacity:
        return buffer
    new_capacity = max(needed, 2 * capacity, 8)
    grown = np.empty((new_capacity,) + buffer.shape[1:], dtype=buffer.dtype)
    grown[:capacity] = buffer
    return grown


class ArrayParameterStore:
    """Flat array-backed storage of all model parameters.

    The vectorised EM engine works on integer indices instead of id strings:
    worker ``i`` of :attr:`worker_ids` owns row ``i`` of :attr:`p_qualified`
    and :attr:`distance_weights`, task ``j`` owns row ``j`` of
    :attr:`influence_weights` and the slice
    ``label_probs[label_offsets[j]:label_offsets[j + 1]]`` of the ragged label
    storage.  All arrays are dense ``float64`` so one EM iteration is a handful
    of fused NumPy kernels rather than a Python loop.

    The store is **open-world**: :meth:`add_worker` and :meth:`add_task` admit
    entities unseen at construction time in amortized O(1), backed by
    capacity-doubling buffers (the array attributes are views of the logical
    prefix, so every consumer keeps seeing exactly-sized arrays).  Unless
    explicit values are supplied, admitted entities receive the paper's
    footnote-3 trusted priors — the same fallback
    :meth:`ModelParameters.worker` / :meth:`ModelParameters.task` apply.
    """

    def __init__(
        self,
        function_set: DistanceFunctionSet,
        alpha: float,
        worker_ids: Sequence[str],
        task_ids: Sequence[str],
        label_offsets: np.ndarray,
        p_qualified: np.ndarray,
        distance_weights: np.ndarray,
        influence_weights: np.ndarray,
        label_probs: np.ndarray,
    ) -> None:
        self.function_set = function_set
        self.alpha = alpha
        self._worker_ids = list(worker_ids)
        self._task_ids = list(task_ids)
        self._label_offsets = np.asarray(label_offsets)
        self._p_qualified = np.asarray(p_qualified)
        self._distance_weights = np.asarray(distance_weights)
        self._influence_weights = np.asarray(influence_weights)
        self._label_probs = np.asarray(label_probs)
        self._num_label_slots = int(self._label_offsets[-1]) if self._label_offsets.size else 0
        # Lazy caches: id tuples and id -> index maps, rebuilt on demand.
        self._worker_ids_cache: tuple[str, ...] | None = None
        self._task_ids_cache: tuple[str, ...] | None = None
        self._worker_index: dict[str, int] | None = None
        self._task_index: dict[str, int] | None = None
        self._frozen = False

    def __repr__(self) -> str:
        return (
            f"ArrayParameterStore(workers={self.num_workers}, "
            f"tasks={self.num_tasks}, label_slots={self.num_label_slots})"
        )

    # ------------------------------------------------------------- properties
    @property
    def worker_ids(self) -> tuple[str, ...]:
        if self._worker_ids_cache is None:
            self._worker_ids_cache = tuple(self._worker_ids)
        return self._worker_ids_cache

    @property
    def task_ids(self) -> tuple[str, ...]:
        if self._task_ids_cache is None:
            self._task_ids_cache = tuple(self._task_ids)
        return self._task_ids_cache

    @property
    def label_offsets(self) -> np.ndarray:
        return self._label_offsets[: len(self._task_ids) + 1]

    @property
    def p_qualified(self) -> np.ndarray:
        return self._p_qualified[: len(self._worker_ids)]

    @property
    def distance_weights(self) -> np.ndarray:
        return self._distance_weights[: len(self._worker_ids)]

    @property
    def influence_weights(self) -> np.ndarray:
        return self._influence_weights[: len(self._task_ids)]

    @property
    def label_probs(self) -> np.ndarray:
        return self._label_probs[: self._num_label_slots]

    @property
    def num_workers(self) -> int:
        return len(self._worker_ids)

    @property
    def num_tasks(self) -> int:
        return len(self._task_ids)

    @property
    def num_label_slots(self) -> int:
        return self._num_label_slots

    @property
    def frozen(self) -> bool:
        return self._frozen

    # ----------------------------------------------------------- id lookups
    def index_of_worker(self, worker_id: str) -> int:
        """Row of ``worker_id`` (``KeyError`` if the worker is unknown)."""
        if self._worker_index is None:
            self._worker_index = {w: i for i, w in enumerate(self._worker_ids)}
        return self._worker_index[worker_id]

    def index_of_task(self, task_id: str) -> int:
        """Row of ``task_id`` (``KeyError`` if the task is unknown)."""
        if self._task_index is None:
            self._task_index = {t: j for j, t in enumerate(self._task_ids)}
        return self._task_index[task_id]

    def has_worker(self, worker_id: str) -> bool:
        try:
            self.index_of_worker(worker_id)
        except KeyError:
            return False
        return True

    def has_task(self, task_id: str) -> bool:
        try:
            self.index_of_task(task_id)
        except KeyError:
            return False
        return True

    # ------------------------------------------------------- open-world growth
    def add_worker(
        self,
        worker_id: str,
        p_qualified: float = 1.0,
        distance_weights: np.ndarray | None = None,
    ) -> int:
        """Admit an unseen worker and return its new row (amortized O(1)).

        Defaults are the footnote-3 trusted prior: fully qualified with all
        mass on the flattest distance function, so a brand-new worker is
        prioritised by the assigner and its real quality learned quickly.
        """
        if self._frozen:
            raise ValueError("cannot add a worker to a frozen store")
        if self.has_worker(worker_id):
            raise ValueError(f"worker {worker_id!r} is already in the store")
        if distance_weights is None:
            distance_weights = self.function_set.best_quality_weights()
        row = len(self._worker_ids)
        self._p_qualified = _grown_buffer(self._p_qualified, row + 1)
        self._distance_weights = _grown_buffer(self._distance_weights, row + 1)
        self._p_qualified[row] = float(p_qualified)
        self._distance_weights[row] = distance_weights
        self._worker_ids.append(worker_id)
        self._worker_ids_cache = None
        if self._worker_index is not None:
            self._worker_index[worker_id] = row
        return row

    def add_task(
        self,
        task_id: str,
        num_labels: int,
        label_probs: np.ndarray | None = None,
        influence_weights: np.ndarray | None = None,
    ) -> int:
        """Admit an unseen task and return its new row (amortized O(1)).

        Defaults are the footnote-3 trusted prior: uninformative 0.5 label
        probabilities and all influence mass on the flattest function.
        """
        if self._frozen:
            raise ValueError("cannot add a task to a frozen store")
        if self.has_task(task_id):
            raise ValueError(f"task {task_id!r} is already in the store")
        if num_labels <= 0:
            raise ValueError(f"num_labels must be positive, got {num_labels}")
        if influence_weights is None:
            influence_weights = self.function_set.best_quality_weights()
        if label_probs is None:
            label_probs = np.full(num_labels, 0.5)
        elif len(label_probs) != num_labels:
            raise ValueError(
                f"label_probs has {len(label_probs)} entries, expected {num_labels}"
            )
        row = len(self._task_ids)
        slots = self._num_label_slots
        self._label_offsets = _grown_buffer(self._label_offsets, row + 2)
        self._influence_weights = _grown_buffer(self._influence_weights, row + 1)
        self._label_probs = _grown_buffer(self._label_probs, slots + num_labels)
        self._label_offsets[row + 1] = slots + num_labels
        self._influence_weights[row] = influence_weights
        self._label_probs[slots : slots + num_labels] = label_probs
        self._num_label_slots = slots + num_labels
        self._task_ids.append(task_id)
        self._task_ids_cache = None
        if self._task_index is not None:
            self._task_index[task_id] = row
        return row

    def task_label_slice(self, task_index: int) -> slice:
        """Slice of :attr:`label_probs` holding the labels of task ``task_index``."""
        return slice(
            int(self.label_offsets[task_index]), int(self.label_offsets[task_index + 1])
        )

    # ------------------------------------------------------------ conversions
    @classmethod
    def from_model(
        cls,
        params: ModelParameters,
        worker_ids: Sequence[str],
        task_ids: Sequence[str],
        num_labels: Sequence[int],
    ) -> "ArrayParameterStore":
        """Gather ``params`` into arrays over the given worker/task orderings.

        Uses the :meth:`ModelParameters.worker` / :meth:`ModelParameters.task`
        accessors, so entities absent from ``params`` (e.g. when warm-starting
        from a smaller corpus) are seeded with the same footnote-3 priors the
        per-record engine would see.
        """
        function_count = len(params.function_set)
        worker_count = len(worker_ids)
        task_count = len(task_ids)
        counts = np.asarray(num_labels, dtype=np.intp)
        if counts.shape != (task_count,):
            raise ValueError(
                f"num_labels must align with task_ids: {counts.shape} vs {task_count}"
            )
        label_offsets = np.concatenate(([0], np.cumsum(counts)))

        p_qualified = np.empty(worker_count, dtype=float)
        distance_weights = np.empty((worker_count, function_count), dtype=float)
        for i, worker_id in enumerate(worker_ids):
            worker = params.worker(worker_id)
            p_qualified[i] = worker.p_qualified
            distance_weights[i] = worker.distance_weights

        influence_weights = np.empty((task_count, function_count), dtype=float)
        label_probs = np.empty(int(label_offsets[-1]), dtype=float)
        for j, task_id in enumerate(task_ids):
            task = params.task(task_id, num_labels=int(counts[j]))
            if task.num_labels != counts[j]:
                raise ValueError(
                    f"task {task_id!r} has {task.num_labels} estimated labels, "
                    f"expected {int(counts[j])}"
                )
            influence_weights[j] = task.influence_weights
            label_probs[label_offsets[j] : label_offsets[j + 1]] = task.label_probs

        return cls(
            function_set=params.function_set,
            alpha=params.alpha,
            worker_ids=tuple(worker_ids),
            task_ids=tuple(task_ids),
            label_offsets=label_offsets,
            p_qualified=p_qualified,
            distance_weights=distance_weights,
            influence_weights=influence_weights,
            label_probs=label_probs,
        )

    def to_model(self) -> ModelParameters:
        """Expand back into the dict-of-dataclasses :class:`ModelParameters` view.

        The store's invariants (probabilities in [0, 1], weight rows summing to
        one) are maintained by the EM kernels and the ``from_model`` gather, so
        the per-entity containers are built through the trusted constructors
        instead of re-validating thousands of small arrays.
        """
        workers = {
            worker_id: _trusted_worker_parameters(
                self.p_qualified[i], self.distance_weights[i].copy()
            )
            for i, worker_id in enumerate(self.worker_ids)
        }
        tasks = {
            task_id: _trusted_task_parameters(
                self.label_probs[self.task_label_slice(j)].copy(),
                self.influence_weights[j].copy(),
            )
            for j, task_id in enumerate(self.task_ids)
        }
        return ModelParameters(
            function_set=self.function_set,
            alpha=self.alpha,
            workers=workers,
            tasks=tasks,
        )

    # ------------------------------------------------------------------- misc
    def copy(self) -> "ArrayParameterStore":
        return ArrayParameterStore(
            function_set=self.function_set,
            alpha=self.alpha,
            worker_ids=self.worker_ids,
            task_ids=self.task_ids,
            label_offsets=self.label_offsets.copy(),
            p_qualified=self.p_qualified.copy(),
            distance_weights=self.distance_weights.copy(),
            influence_weights=self.influence_weights.copy(),
            label_probs=self.label_probs.copy(),
        )

    def freeze(self) -> "ArrayParameterStore":
        """Mark every parameter array read-only (in place) and return ``self``.

        Published snapshots are frozen so that no consumer can mutate a version
        other readers are concurrently working against; attempting to write
        raises ``ValueError`` at the NumPy level, and :meth:`add_worker` /
        :meth:`add_task` refuse to grow the store.  The flags are set on the
        backing buffers, so every view handed out afterwards is read-only too.
        """
        for array in (
            self._label_offsets,
            self._p_qualified,
            self._distance_weights,
            self._influence_weights,
            self._label_probs,
        ):
            array.setflags(write=False)
        self._frozen = True
        return self

    # ------------------------------------------------------------ persistence
    def to_npz_dict(self) -> dict[str, np.ndarray]:
        """Flatten the store into plain arrays suitable for ``np.savez``.

        Everything — including the function set's lambdas and the id tuples
        (as unicode arrays) — round-trips through :meth:`from_npz_dict`
        bit-exactly, without pickling.
        """
        return {
            "lambdas": np.asarray(self.function_set.lambdas, dtype=float),
            "alpha": np.asarray(self.alpha, dtype=float),
            "worker_ids": np.asarray(self.worker_ids, dtype=np.str_),
            "task_ids": np.asarray(self.task_ids, dtype=np.str_),
            "label_offsets": np.asarray(self.label_offsets, dtype=np.int64),
            "p_qualified": self.p_qualified,
            "distance_weights": self.distance_weights,
            "influence_weights": self.influence_weights,
            "label_probs": self.label_probs,
        }

    @classmethod
    def from_npz_dict(cls, data: Mapping[str, np.ndarray]) -> "ArrayParameterStore":
        """Rebuild a store from the arrays produced by :meth:`to_npz_dict`."""
        return cls(
            function_set=DistanceFunctionSet(tuple(np.asarray(data["lambdas"], dtype=float))),
            alpha=float(np.asarray(data["alpha"])),
            worker_ids=tuple(str(w) for w in np.asarray(data["worker_ids"])),
            task_ids=tuple(str(t) for t in np.asarray(data["task_ids"])),
            label_offsets=np.asarray(data["label_offsets"], dtype=np.intp),
            p_qualified=np.asarray(data["p_qualified"], dtype=float),
            distance_weights=np.asarray(data["distance_weights"], dtype=float),
            influence_weights=np.asarray(data["influence_weights"], dtype=float),
            label_probs=np.asarray(data["label_probs"], dtype=float),
        )

    def save_npz(self, path: str | Path) -> Path:
        """Persist the store to ``path`` as an uncompressed ``.npz`` archive."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            np.savez(handle, **self.to_npz_dict())
        return path

    @classmethod
    def load_npz(cls, path: str | Path) -> "ArrayParameterStore":
        """Restore a store previously written with :meth:`save_npz`."""
        with np.load(Path(path), allow_pickle=False) as data:
            return cls.from_npz_dict(data)

    def validate(self) -> "ArrayParameterStore":
        """Structural integrity check; raises ``ValueError`` on any violation.

        Used when a store re-enters the process from disk (snapshot /
        checkpoint restore): verifies the ragged label layout is coherent
        (offsets start at 0, are non-decreasing, and the flat storage matches
        their total), row counts align across the worker- and task-side
        arrays, and every probability is finite and within [0, 1].  Returns
        ``self`` so it chains.
        """
        offsets = self.label_offsets
        if offsets.size != self.num_tasks + 1:
            raise ValueError(
                f"label_offsets has {offsets.size} entries for {self.num_tasks} tasks"
            )
        if offsets.size and int(offsets[0]) != 0:
            raise ValueError(f"label_offsets must start at 0, got {int(offsets[0])}")
        if offsets.size > 1 and bool(np.any(np.diff(offsets) <= 0)):
            raise ValueError("label_offsets must be strictly increasing")
        expected_slots = int(offsets[-1]) if offsets.size else 0
        if self.label_probs.size != expected_slots:
            raise ValueError(
                f"label_probs holds {self.label_probs.size} slots, "
                f"label_offsets expect {expected_slots}"
            )
        if self.p_qualified.shape != (self.num_workers,):
            raise ValueError(
                f"p_qualified shape {self.p_qualified.shape} does not match "
                f"{self.num_workers} workers"
            )
        if self.distance_weights.shape != (self.num_workers, len(self.function_set)):
            raise ValueError(
                f"distance_weights shape {self.distance_weights.shape} does not "
                f"match {self.num_workers} workers × {len(self.function_set)} functions"
            )
        if self.influence_weights.shape != (self.num_tasks, len(self.function_set)):
            raise ValueError(
                f"influence_weights shape {self.influence_weights.shape} does not "
                f"match {self.num_tasks} tasks × {len(self.function_set)} functions"
            )
        for name in ("p_qualified", "label_probs"):
            values = getattr(self, name)
            if values.size and (
                not np.all(np.isfinite(values))
                or float(values.min()) < 0.0
                or float(values.max()) > 1.0
            ):
                raise ValueError(f"{name} contains values outside [0, 1] or non-finite")
        for name in ("distance_weights", "influence_weights"):
            values = getattr(self, name)
            if values.size and not np.all(np.isfinite(values)):
                raise ValueError(f"{name} contains non-finite values")
        return self

    def max_difference(self, other: "ArrayParameterStore") -> float:
        """Maximum absolute parameter change versus ``other``.

        Array counterpart of :meth:`ModelParameters.max_difference` for two
        stores over the *same* worker/task orderings (the situation inside one
        EM run, where the entity sets never change between iterations).
        """
        if self.worker_ids != other.worker_ids or self.task_ids != other.task_ids:
            raise ValueError("stores must share worker/task orderings")
        worst = 0.0
        if self.p_qualified.size:
            worst = max(worst, float(np.abs(self.p_qualified - other.p_qualified).max()))
            worst = max(
                worst, float(np.abs(self.distance_weights - other.distance_weights).max())
            )
        if self.influence_weights.size:
            worst = max(
                worst,
                float(np.abs(self.influence_weights - other.influence_weights).max()),
            )
        if self.label_probs.size:
            worst = max(worst, float(np.abs(self.label_probs - other.label_probs).max()))
        return worst
