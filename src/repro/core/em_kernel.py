"""Vectorised EM kernel for the location-aware inference model.

This module is the batched twin of the per-record E/M code in
:mod:`repro.core.inference`.  The whole answer log is flattened **once** per
fit into an :class:`AnswerTensor` — integer worker/task/label index arrays, a
precomputed ``(N, |F|)`` matrix of the distance-function set evaluated at every
answer's distance, and a flat 0/1 response vector — after which one EM
iteration is a fixed number of NumPy kernels:

* the E-step posteriors of *all* answers are computed as array expressions
  mirroring ``LocationAwareInference._expectation`` term by term, and
* the M-step scatter-adds (``z_sums``, ``dt_sums``, ``i_sums``, ``dw_sums``)
  become segment sums via ``np.bincount`` over the index arrays.

Per-bin accumulation order under ``np.bincount`` equals the answer-log order
the per-record loop uses, so the two engines agree to floating-point noise
(well below the ``1e-9`` tolerance the equivalence tests enforce).  Cost per
iteration is still the paper's ``O(B · |L_t| · |F|)`` — only the constant
factor changes, from a Python interpreter step per answer to a handful of
C-level passes over contiguous arrays.

Parameters live in an :class:`~repro.core.params.ArrayParameterStore`; the id
oriented :class:`~repro.core.params.ModelParameters` view is materialised only
at the fit boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.distance_functions import DistanceFunctionSet
from repro.core.params import ArrayParameterStore, ModelParameters
from repro.data.models import AnswerSet, Task, Worker
from repro.spatial.distance import DistanceModel
from repro.utils.validation import PROBABILITY_FLOOR


@dataclass
class AnswerTensor:
    """The answer log flattened into contiguous index/value arrays.

    Two granularities coexist:

    * **per answer** (``N`` rows): one row per ``(worker, task)`` answer vector
      — :attr:`a_worker`, :attr:`a_task`, :attr:`distances`, :attr:`f_values`;
    * **per label response** (``M = Σ |L_t|`` rows): one row per individual 0/1
      tick — :attr:`r_answer` points back at the owning answer row, and
      :attr:`r_label` addresses the flat ragged label storage shared with
      :class:`~repro.core.params.ArrayParameterStore`.
    """

    worker_ids: tuple[str, ...]  # first-seen order, as the per-record engine
    task_ids: tuple[str, ...]
    num_labels: np.ndarray  # (|T|,) labels per task
    label_offsets: np.ndarray  # (|T| + 1,) ragged bounds into label storage
    a_worker: np.ndarray  # (N,) worker index per answer
    a_task: np.ndarray  # (N,) task index per answer
    distances: np.ndarray  # (N,) normalised worker-task distance
    f_values: np.ndarray  # (N, |F|) function set evaluated at `distances`
    r_answer: np.ndarray  # (M,) owning answer row per label response
    r_worker: np.ndarray  # (M,)
    r_task: np.ndarray  # (M,)
    r_label: np.ndarray  # (M,) global (flat ragged) label index
    responses: np.ndarray  # (M,) observed 0/1 responses
    task_of_label: np.ndarray  # (Σ|L_t|,) owning task per global label slot

    @property
    def num_answers(self) -> int:
        return int(self.a_worker.size)

    @property
    def num_label_responses(self) -> int:
        return int(self.responses.size)

    @property
    def num_workers(self) -> int:
        return len(self.worker_ids)

    @property
    def num_tasks(self) -> int:
        return len(self.task_ids)

    @classmethod
    def build(
        cls,
        answers: AnswerSet,
        tasks: dict[str, Task],
        workers: dict[str, Worker],
        distance_model: DistanceModel,
        function_set: DistanceFunctionSet,
    ) -> "AnswerTensor":
        """Index ``answers`` against the task/worker registries.

        Validation mirrors ``LocationAwareInference._build_records``: unknown
        ids raise ``KeyError``, label-count mismatches raise ``ValueError``.
        Distances are computed with the batched
        :meth:`~repro.spatial.distance.DistanceModel.worker_task_distances`
        instead of N scalar cache lookups.
        """
        worker_index: dict[str, int] = {}
        task_index: dict[str, int] = {}
        task_num_labels: list[int] = []
        a_worker: list[int] = []
        a_task: list[int] = []
        worker_location_seq = []
        task_location_seq = []
        response_rows: list[np.ndarray] = []

        for answer in answers:
            task = tasks.get(answer.task_id)
            if task is None:
                raise KeyError(f"answer references unknown task {answer.task_id!r}")
            worker = workers.get(answer.worker_id)
            if worker is None:
                raise KeyError(f"answer references unknown worker {answer.worker_id!r}")
            if answer.num_labels != task.num_labels:
                raise ValueError(
                    f"answer for task {task.task_id!r} has {answer.num_labels} labels, "
                    f"task has {task.num_labels}"
                )
            widx = worker_index.setdefault(answer.worker_id, len(worker_index))
            tidx = task_index.setdefault(answer.task_id, len(task_index))
            if tidx == len(task_num_labels):
                task_num_labels.append(task.num_labels)
            a_worker.append(widx)
            a_task.append(tidx)
            worker_location_seq.append(worker.locations)
            task_location_seq.append(task.location)
            response_rows.append(np.asarray(answer.responses, dtype=float))

        num_answers = len(a_worker)
        a_worker_arr = np.asarray(a_worker, dtype=np.intp)
        a_task_arr = np.asarray(a_task, dtype=np.intp)
        num_labels = np.asarray(task_num_labels, dtype=np.intp)
        label_offsets = np.concatenate(([0], np.cumsum(num_labels)))
        task_of_label = np.repeat(np.arange(num_labels.size, dtype=np.intp), num_labels)

        distances = distance_model.worker_task_distances(
            worker_location_seq, task_location_seq
        )
        f_values = function_set.evaluate_many(distances)

        counts = (
            num_labels[a_task_arr] if num_answers else np.empty(0, dtype=np.intp)
        )
        r_answer = np.repeat(np.arange(num_answers, dtype=np.intp), counts)
        starts = np.cumsum(counts) - counts  # first flat slot of each answer
        within = np.arange(r_answer.size, dtype=np.intp) - np.repeat(starts, counts)
        r_task = a_task_arr[r_answer]
        r_label = label_offsets[r_task] + within
        responses = (
            np.concatenate(response_rows) if response_rows else np.empty(0, dtype=float)
        )

        return cls(
            worker_ids=tuple(worker_index),
            task_ids=tuple(task_index),
            num_labels=num_labels,
            label_offsets=label_offsets,
            a_worker=a_worker_arr,
            a_task=a_task_arr,
            distances=distances,
            f_values=f_values,
            r_answer=r_answer,
            r_worker=a_worker_arr[r_answer],
            r_task=r_task,
            r_label=r_label,
            responses=responses,
            task_of_label=task_of_label,
        )


def initial_store(
    tensor: AnswerTensor,
    function_set: DistanceFunctionSet,
    alpha: float,
    initial_p_qualified: float,
) -> ArrayParameterStore:
    """Batched twin of ``LocationAwareInference._initial_parameters``.

    Soft majority vote per label (clipped into [0.02, 0.98]) and uniform
    function weights with an optimistic qualification prior everywhere else.
    """
    uniform = function_set.uniform_weights()
    vote_sums = np.bincount(
        tensor.r_label, weights=tensor.responses, minlength=tensor.label_offsets[-1]
    )
    vote_counts = np.bincount(tensor.a_task, minlength=tensor.num_tasks)
    per_label_counts = vote_counts[tensor.task_of_label]
    label_probs = np.where(
        per_label_counts > 0,
        np.clip(vote_sums / np.maximum(1, per_label_counts), 0.02, 0.98),
        0.5,
    )
    return ArrayParameterStore(
        function_set=function_set,
        alpha=alpha,
        worker_ids=tensor.worker_ids,
        task_ids=tensor.task_ids,
        label_offsets=tensor.label_offsets,
        p_qualified=np.full(tensor.num_workers, initial_p_qualified, dtype=float),
        distance_weights=np.tile(uniform, (tensor.num_workers, 1)),
        influence_weights=np.tile(uniform, (tensor.num_tasks, 1)),
        label_probs=label_probs,
    )


def _segment_sum_columns(
    values: np.ndarray, index: np.ndarray, size: int
) -> np.ndarray:
    """Sum the rows of ``values`` (M, F) into ``size`` bins given by ``index``."""
    out = np.empty((size, values.shape[1]), dtype=float)
    for column in range(values.shape[1]):
        out[:, column] = np.bincount(index, weights=values[:, column], minlength=size)
    return out


def _normalise_rows(
    sums: np.ndarray, denominators: np.ndarray, uniform: np.ndarray
) -> np.ndarray:
    """Divide row-wise then renormalise each row to a distribution.

    Rows whose mass vanishes fall back to the uniform distribution, matching
    the degenerate-case handling of the per-record M-step.
    """
    weights = sums / np.maximum(1, denominators)[:, None]
    totals = weights.sum(axis=1)
    degenerate = totals <= 0.0
    safe_totals = np.where(degenerate, 1.0, totals)
    weights = weights / safe_totals[:, None]
    if np.any(degenerate):
        weights[degenerate] = uniform
    return weights


def em_step(
    tensor: AnswerTensor, store: ArrayParameterStore
) -> tuple[ArrayParameterStore, float]:
    """One combined E+M step over the whole tensor (Equations 12 and 14).

    Returns the new parameter store and the total log-likelihood of the
    observed answers under the *input* parameters.  Mirrors
    ``LocationAwareInference._em_iteration`` exactly, with every per-record
    quantity promoted to an array over the N answers / M label responses.
    """
    alpha = store.alpha
    floor = PROBABILITY_FLOOR

    # ---- per-answer quantities (N,) ----------------------------------------
    p_qualified = np.clip(store.p_qualified[tensor.a_worker], floor, 1.0 - floor)
    p_unqualified = 1.0 - p_qualified
    dw = store.distance_weights[tensor.a_worker]  # (N, F)
    dt = store.influence_weights[tensor.a_task]  # (N, F)
    worker_quality = np.einsum("nf,nf->n", dw, tensor.f_values)  # DQ_w per answer
    poi_quality = np.einsum("nf,nf->n", dt, tensor.f_values)  # IQ_t per answer
    s_q = np.clip(
        alpha * worker_quality + (1.0 - alpha) * poi_quality, floor, 1.0 - floor
    )
    # Per-function rows/columns of q(d_w, d_t) marginalised over the other
    # variable's current weights.
    q_row = alpha * tensor.f_values + (1.0 - alpha) * poi_quality[:, None]
    q_col = alpha * worker_quality[:, None] + (1.0 - alpha) * tensor.f_values

    # ---- per-label-response quantities (M,) --------------------------------
    expand = tensor.r_answer
    pq_m = p_qualified[expand]
    pu_m = p_unqualified[expand]
    sq_m = s_q[expand]
    pz1 = np.clip(store.label_probs[tensor.r_label], 1e-9, 1.0 - 1e-9)
    observed_one = tensor.responses == 1
    pz_equal_r = np.where(observed_one, pz1, 1.0 - pz1)  # P(z = r)
    pz_not_r = 1.0 - pz_equal_r

    # P(r) per label response: the normaliser of the joint posterior.
    evidence = 0.5 * pu_m + pq_m * (pz_equal_r * sq_m + pz_not_r * (1.0 - sq_m))
    evidence = np.clip(evidence, 1e-12, None)
    log_likelihood = float(np.sum(np.log(evidence)))

    # P(z = 1 | r): the z=1 branch uses s_q when r=1 and (1-s_q) when r=0.
    agree_factor = np.where(observed_one, sq_m, 1.0 - sq_m)
    post_z1 = pz1 * (0.5 * pu_m + pq_m * agree_factor) / evidence
    post_i1 = pq_m * (pz_equal_r * sq_m + pz_not_r * (1.0 - sq_m)) / evidence

    # P(d_w = a | r) and P(d_t = a | r) per label response: (M, |F|).
    q_row_m = q_row[expand]
    agree_dw = pz_equal_r[:, None] * q_row_m + pz_not_r[:, None] * (1.0 - q_row_m)
    post_dw = (
        dw[expand] * (0.5 * pu_m[:, None] + pq_m[:, None] * agree_dw)
    ) / evidence[:, None]
    q_col_m = q_col[expand]
    agree_dt = pz_equal_r[:, None] * q_col_m + pz_not_r[:, None] * (1.0 - q_col_m)
    post_dt = (
        dt[expand] * (0.5 * pu_m[:, None] + pq_m[:, None] * agree_dt)
    ) / evidence[:, None]

    # ---- M-step: segment sums then per-entity renormalisation ---------------
    num_workers = tensor.num_workers
    num_tasks = tensor.num_tasks
    uniform = store.function_set.uniform_weights()

    z_sums = np.bincount(
        tensor.r_label, weights=post_z1, minlength=tensor.label_offsets[-1]
    )
    answers_per_task = np.bincount(tensor.a_task, minlength=num_tasks)
    new_label_probs = np.clip(
        z_sums / np.maximum(1, answers_per_task)[tensor.task_of_label], 0.0, 1.0
    )

    labels_per_task = np.bincount(tensor.r_task, minlength=num_tasks)
    dt_sums = _segment_sum_columns(post_dt, tensor.r_task, num_tasks)
    new_influence = _normalise_rows(dt_sums, labels_per_task, uniform)

    labels_per_worker = np.bincount(tensor.r_worker, minlength=num_workers)
    i_sums = np.bincount(tensor.r_worker, weights=post_i1, minlength=num_workers)
    new_p_qualified = np.clip(i_sums / np.maximum(1, labels_per_worker), 0.0, 1.0)
    dw_sums = _segment_sum_columns(post_dw, tensor.r_worker, num_workers)
    new_distance_weights = _normalise_rows(dw_sums, labels_per_worker, uniform)

    new_store = ArrayParameterStore(
        function_set=store.function_set,
        alpha=store.alpha,
        worker_ids=store.worker_ids,
        task_ids=store.task_ids,
        label_offsets=store.label_offsets,
        p_qualified=new_p_qualified,
        distance_weights=new_distance_weights,
        influence_weights=new_influence,
        label_probs=new_label_probs,
    )
    return new_store, log_likelihood


def warm_start_extra_delta(
    initial: ModelParameters, tensor: AnswerTensor
) -> float:
    """First-iteration convergence-delta correction for warm starts.

    ``ModelParameters.max_difference`` spans the *union* of the old and new
    entity sets, while the array engine only tracks entities present in the
    answer tensor.  When warm-starting from parameters whose entity sets differ
    from the tensor's, the reference engine's first delta picks up extra terms:
    a task present on one side only contributes 1.0, and a worker present only
    in ``initial`` is compared against the footnote-3 prior.  This returns the
    maximum of those extra terms so the vectorised loop can fold it into its
    first iteration's delta and stop after exactly the same iteration count.
    """
    seen_tasks = set(tensor.task_ids)
    initial_tasks = set(initial.tasks)
    extra = 0.0
    if seen_tasks ^ initial_tasks:
        extra = 1.0
    prior_weights = initial.function_set.best_quality_weights()
    for worker_id in set(initial.workers) - set(tensor.worker_ids):
        worker = initial.workers[worker_id]
        extra = max(extra, abs(1.0 - worker.p_qualified))
        extra = max(
            extra, float(np.max(np.abs(prior_weights - worker.distance_weights)))
        )
    return extra
