"""Vectorised EM kernel for the location-aware inference model.

This module is the batched twin of the per-record E/M code in
:mod:`repro.core.inference`.  The whole answer log is flattened **once** per
fit into an :class:`AnswerTensor` — integer worker/task/label index arrays, a
precomputed ``(N, |F|)`` matrix of the distance-function set evaluated at every
answer's distance, and a flat 0/1 response vector — after which one EM
iteration is a fixed number of NumPy kernels.  The tensor is also the serving
path's **live** structure: it grows in place (:meth:`AnswerTensor.append_answers`,
capacity-doubling buffers, per-entity row indexes),
:func:`localized_sweeps` runs the incremental updater's masked sweeps against
it without any per-batch rebuild (with per-entity convergence early-exit so
settled neighbourhoods drop out of later sweeps), and a full re-fit can run
straight off it via
:meth:`repro.core.inference.LocationAwareInference.fit_from_tensor` — the
flatten below happens once per *stream*, not once per refresh.  Per full
iteration:

* the E-step posteriors of *all* answers are computed as array expressions
  mirroring ``LocationAwareInference._expectation`` term by term, and
* the M-step scatter-adds (``z_sums``, ``dt_sums``, ``i_sums``, ``dw_sums``)
  become segment sums via ``np.bincount`` over the index arrays.

Per-bin accumulation order under ``np.bincount`` equals the answer-log order
the per-record loop uses, so the two engines agree to floating-point noise
(well below the ``1e-9`` tolerance the equivalence tests enforce).  Cost per
iteration is still the paper's ``O(B · |L_t| · |F|)`` — only the constant
factor changes, from a Python interpreter step per answer to a handful of
C-level passes over contiguous arrays.

Parameters live in an :class:`~repro.core.params.ArrayParameterStore`; the id
oriented :class:`~repro.core.params.ModelParameters` view is materialised only
at the fit boundary.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.core.distance_functions import DistanceFunctionSet
from repro.core.params import ArrayParameterStore, ModelParameters, _grown_buffer
from repro.data.models import Answer, AnswerSet, Task, Worker
from repro.spatial.distance import DistanceModel
from repro.utils.validation import PROBABILITY_FLOOR

#: Override for the per-answer distance source of :meth:`AnswerTensor.build` /
#: :meth:`AnswerTensor.append_answers`: maps the per-answer ``(worker_ids,
#: task_ids)`` sequences to the aligned normalised-distance vector.
PairDistanceFn = Callable[[Sequence[str], Sequence[str]], np.ndarray]


@dataclass(frozen=True)
class TensorAppendResult:
    """Outcome of one :meth:`AnswerTensor.append_answers` micro-batch."""

    rows: np.ndarray  # tensor row of every appended or replaced answer
    new_worker_ids: tuple[str, ...]  # workers first seen in this batch, admit order
    new_task_ids: tuple[str, ...]  # tasks first seen in this batch, admit order


class AnswerTensor:
    """The answer log flattened into contiguous index/value arrays.

    Two granularities coexist:

    * **per answer** (``N`` rows): one row per ``(worker, task)`` answer vector
      — :attr:`a_worker`, :attr:`a_task`, :attr:`distances`, :attr:`f_values`;
    * **per label response** (``M = Σ |L_t|`` rows): one row per individual 0/1
      tick — :attr:`r_answer` points back at the owning answer row, and
      :attr:`r_label` addresses the flat ragged label storage shared with
      :class:`~repro.core.params.ArrayParameterStore`.

    The tensor is **incrementally maintainable**: all arrays live in
    capacity-doubling buffers (the attributes are views of the logical prefix)
    and :meth:`append_answers` appends new answer/label rows in amortized O(1)
    per row, registering unseen workers and tasks on first sight.  With
    :meth:`enable_row_tracking` the tensor also maintains per-entity index
    structures (answer rows per worker / per task, plus a ``(worker, task)``
    pair map used to update re-submitted answers in place), which is what lets
    the incremental updater run localized sweeps against the live tensor
    instead of rebuilding a neighbourhood tensor per micro-batch.
    """

    def __init__(
        self,
        worker_ids: Sequence[str],
        task_ids: Sequence[str],
        num_labels: np.ndarray,
        label_offsets: np.ndarray,
        a_worker: np.ndarray,
        a_task: np.ndarray,
        distances: np.ndarray,
        f_values: np.ndarray,
        r_answer: np.ndarray,
        r_worker: np.ndarray,
        r_task: np.ndarray,
        r_label: np.ndarray,
        responses: np.ndarray,
        task_of_label: np.ndarray,
    ) -> None:
        self._worker_ids = list(worker_ids)
        self._task_ids = list(task_ids)
        self._num_labels = np.asarray(num_labels)
        self._label_offsets = np.asarray(label_offsets)
        self._a_worker = np.asarray(a_worker)
        self._a_task = np.asarray(a_task)
        self._distances = np.asarray(distances)
        self._f_values = np.asarray(f_values)
        self._r_answer = np.asarray(r_answer)
        self._r_worker = np.asarray(r_worker)
        self._r_task = np.asarray(r_task)
        self._r_label = np.asarray(r_label)
        self._responses = np.asarray(responses)
        self._task_of_label = np.asarray(task_of_label)
        self._num_answers = int(self._a_worker.size)
        self._num_label_rows = int(self._responses.size)
        self._num_label_slots = (
            int(self._label_offsets[-1]) if self._label_offsets.size else 0
        )
        # First label row of each answer; label rows of one answer are
        # contiguous and in answer order by construction.
        counts = (
            self._num_labels[self._a_task]
            if self._num_answers
            else np.empty(0, dtype=np.intp)
        )
        self._a_label_start = np.cumsum(counts) - counts
        self._worker_ids_cache: tuple[str, ...] | None = None
        self._task_ids_cache: tuple[str, ...] | None = None
        # Row-tracking structures, built on demand by enable_row_tracking().
        self._worker_row: dict[str, int] | None = None
        self._task_row: dict[str, int] | None = None
        self._rows_of_worker: list[list[int]] | None = None
        self._rows_of_task: list[list[int]] | None = None
        self._pair_row: dict[tuple[int, int], int] | None = None

    def __repr__(self) -> str:
        return (
            f"AnswerTensor(answers={self.num_answers}, workers={self.num_workers}, "
            f"tasks={self.num_tasks}, label_responses={self.num_label_responses})"
        )

    # ----------------------------------------------------------- array views
    @property
    def worker_ids(self) -> tuple[str, ...]:
        if self._worker_ids_cache is None:
            self._worker_ids_cache = tuple(self._worker_ids)
        return self._worker_ids_cache

    @property
    def task_ids(self) -> tuple[str, ...]:
        if self._task_ids_cache is None:
            self._task_ids_cache = tuple(self._task_ids)
        return self._task_ids_cache

    @property
    def num_labels(self) -> np.ndarray:
        return self._num_labels[: len(self._task_ids)]

    @property
    def label_offsets(self) -> np.ndarray:
        return self._label_offsets[: len(self._task_ids) + 1]

    @property
    def a_worker(self) -> np.ndarray:
        return self._a_worker[: self._num_answers]

    @property
    def a_task(self) -> np.ndarray:
        return self._a_task[: self._num_answers]

    @property
    def distances(self) -> np.ndarray:
        return self._distances[: self._num_answers]

    @property
    def f_values(self) -> np.ndarray:
        return self._f_values[: self._num_answers]

    @property
    def a_label_start(self) -> np.ndarray:
        return self._a_label_start[: self._num_answers]

    @property
    def r_answer(self) -> np.ndarray:
        return self._r_answer[: self._num_label_rows]

    @property
    def r_worker(self) -> np.ndarray:
        return self._r_worker[: self._num_label_rows]

    @property
    def r_task(self) -> np.ndarray:
        return self._r_task[: self._num_label_rows]

    @property
    def r_label(self) -> np.ndarray:
        return self._r_label[: self._num_label_rows]

    @property
    def responses(self) -> np.ndarray:
        return self._responses[: self._num_label_rows]

    @property
    def task_of_label(self) -> np.ndarray:
        return self._task_of_label[: self._num_label_slots]

    @property
    def num_answers(self) -> int:
        return self._num_answers

    @property
    def num_label_responses(self) -> int:
        return self._num_label_rows

    @property
    def num_workers(self) -> int:
        return len(self._worker_ids)

    @property
    def num_tasks(self) -> int:
        return len(self._task_ids)

    # --------------------------------------------------------- row tracking
    @property
    def tracks_rows(self) -> bool:
        return self._rows_of_worker is not None

    def enable_row_tracking(self) -> "AnswerTensor":
        """Build the per-entity index structures and keep them maintained.

        After this call, :attr:`rows_of_worker` / :attr:`rows_of_task` list
        every answer row of each entity (extended in place by every append),
        and re-submitted ``(worker, task)`` answers update their existing row
        instead of appending a duplicate.
        """
        if self._rows_of_worker is not None:
            return self
        self._worker_row = {w: i for i, w in enumerate(self._worker_ids)}
        self._task_row = {t: j for j, t in enumerate(self._task_ids)}
        rows_of_worker: list[list[int]] = [[] for _ in self._worker_ids]
        rows_of_task: list[list[int]] = [[] for _ in self._task_ids]
        pair_row: dict[tuple[int, int], int] = {}
        a_worker = self._a_worker
        a_task = self._a_task
        for row in range(self._num_answers):
            widx = int(a_worker[row])
            tidx = int(a_task[row])
            rows_of_worker[widx].append(row)
            rows_of_task[tidx].append(row)
            pair_row[(widx, tidx)] = row
        self._rows_of_worker = rows_of_worker
        self._rows_of_task = rows_of_task
        self._pair_row = pair_row
        return self

    def rows_of_worker(self, worker_index: int) -> list[int]:
        """Answer rows of worker ``worker_index`` (requires row tracking)."""
        if self._rows_of_worker is None:
            raise RuntimeError("enable_row_tracking() must be called first")
        return self._rows_of_worker[worker_index]

    def rows_of_task(self, task_index: int) -> list[int]:
        """Answer rows of task ``task_index`` (requires row tracking)."""
        if self._rows_of_task is None:
            raise RuntimeError("enable_row_tracking() must be called first")
        return self._rows_of_task[task_index]

    def worker_row(self, worker_id: str) -> int:
        """Worker index of ``worker_id`` (requires row tracking)."""
        if self._worker_row is None:
            raise RuntimeError("enable_row_tracking() must be called first")
        return self._worker_row[worker_id]

    def task_row(self, task_id: str) -> int:
        """Task index of ``task_id`` (requires row tracking)."""
        if self._task_row is None:
            raise RuntimeError("enable_row_tracking() must be called first")
        return self._task_row[task_id]

    def snapshot(self) -> "AnswerTensor":
        """A frozen copy of the logical prefix, safe to read off-thread.

        The live tensor's backing buffers are append-only *except* for two
        hazards a concurrent reader must not observe: re-submitted
        ``(worker, task)`` answers rewrite their ``_responses`` slice in
        place, and capacity growth reallocates whole buffers mid-append.
        The snapshot copies every logical-prefix array into a fresh tensor
        (no row tracking — a full fit never needs the per-entity indexes),
        which is what the background refresh worker fits against while the
        ingest thread keeps appending to the original.  Cost is a handful of
        C-level memcpys over the logical sizes.
        """
        return AnswerTensor(
            worker_ids=self.worker_ids,
            task_ids=self.task_ids,
            num_labels=self.num_labels.copy(),
            label_offsets=self.label_offsets.copy(),
            a_worker=self.a_worker.copy(),
            a_task=self.a_task.copy(),
            distances=self.distances.copy(),
            f_values=self.f_values.copy(),
            r_answer=self.r_answer.copy(),
            r_worker=self.r_worker.copy(),
            r_task=self.r_task.copy(),
            r_label=self.r_label.copy(),
            responses=self.responses.copy(),
            task_of_label=self.task_of_label.copy(),
        )

    def export_answers(self) -> list[Answer]:
        """Reconstruct the answer log from the tensor, in row order.

        The inverse of :meth:`build` / :meth:`append_answers`: row order is
        insertion order with re-answers rewritten in place, i.e. exactly the
        iteration order of the :class:`~repro.data.models.AnswerSet` the
        tensor was grown from.  Consequently ``AnswerTensor.build`` over an
        ``AnswerSet`` of the exported answers reproduces this tensor bit for
        bit, including worker/task registration order — the crash-recovery
        checkpoint path relies on this equivalence.
        """
        answers: list[Answer] = []
        a_worker = self._a_worker
        a_task = self._a_task
        starts = self._a_label_start
        num_labels = self._num_labels
        responses = self._responses
        for row in range(self._num_answers):
            tidx = int(a_task[row])
            start = int(starts[row])
            count = int(num_labels[tidx])
            answers.append(
                Answer(
                    worker_id=self._worker_ids[int(a_worker[row])],
                    task_id=self._task_ids[tidx],
                    responses=tuple(
                        int(v) for v in responses[start : start + count]
                    ),
                )
            )
        return answers

    # ------------------------------------------------------- open-world growth
    def _register_worker(self, worker_id: str) -> int:
        index = len(self._worker_ids)
        self._worker_ids.append(worker_id)
        self._worker_ids_cache = None
        self._worker_row[worker_id] = index
        self._rows_of_worker.append([])
        return index

    def _register_task(self, task_id: str, num_labels: int) -> int:
        index = len(self._task_ids)
        slots = self._num_label_slots
        self._num_labels = _grown_buffer(self._num_labels, index + 1)
        self._label_offsets = _grown_buffer(self._label_offsets, index + 2)
        self._task_of_label = _grown_buffer(self._task_of_label, slots + num_labels)
        self._num_labels[index] = num_labels
        self._label_offsets[index + 1] = slots + num_labels
        self._task_of_label[slots : slots + num_labels] = index
        self._num_label_slots = slots + num_labels
        self._task_ids.append(task_id)
        self._task_ids_cache = None
        self._task_row[task_id] = index
        self._rows_of_task.append([])
        return index

    def append_answers(
        self,
        answers: Sequence[Answer],
        tasks: dict[str, Task],
        workers: dict[str, Worker],
        distance_model: DistanceModel,
        function_set: DistanceFunctionSet,
        pair_distance_fn: "PairDistanceFn | None" = None,
    ) -> TensorAppendResult:
        """Append a micro-batch of answers to the live tensor.

        Unseen workers/tasks are registered on first sight (in encounter
        order, so a store grown alongside the tensor stays row-aligned); an
        answer re-submitting a known ``(worker, task)`` pair overwrites its
        responses in place.  Validation mirrors :meth:`build`: unknown ids
        raise ``KeyError``, label-count mismatches raise ``ValueError``.
        Requires :meth:`enable_row_tracking`.  ``pair_distance_fn`` overrides
        the distance source exactly as in :meth:`build`.
        """
        if self._rows_of_worker is None:
            raise RuntimeError("enable_row_tracking() must be called first")
        rows = np.empty(len(answers), dtype=np.intp)
        new_workers: list[str] = []
        new_tasks: list[str] = []
        # (out_positions, widx, tidx, answer) — positions is a list so a pair
        # re-submitted *within* the batch collapses onto one row (last answer
        # wins, mirroring AnswerSet.add) instead of appending a duplicate.
        fresh: list[list] = []
        pending: dict[tuple[int, int], int] = {}  # batch-local pair -> fresh index
        worker_location_seq = []
        task_location_seq = []

        for position, answer in enumerate(answers):
            task = tasks.get(answer.task_id)
            if task is None:
                raise KeyError(f"answer references unknown task {answer.task_id!r}")
            worker = workers.get(answer.worker_id)
            if worker is None:
                raise KeyError(f"answer references unknown worker {answer.worker_id!r}")
            if answer.num_labels != task.num_labels:
                raise ValueError(
                    f"answer for task {task.task_id!r} has {answer.num_labels} labels, "
                    f"task has {task.num_labels}"
                )
            widx = self._worker_row.get(answer.worker_id)
            if widx is None:
                widx = self._register_worker(answer.worker_id)
                new_workers.append(answer.worker_id)
            tidx = self._task_row.get(answer.task_id)
            if tidx is None:
                tidx = self._register_task(answer.task_id, task.num_labels)
                new_tasks.append(answer.task_id)
            pair = (widx, tidx)
            existing = self._pair_row.get(pair)
            if existing is not None:
                start = int(self._a_label_start[existing])
                self._responses[start : start + answer.num_labels] = np.asarray(
                    answer.responses, dtype=float
                )
                rows[position] = existing
            elif pair in pending:
                entry = fresh[pending[pair]]
                entry[0].append(position)
                entry[3] = answer
            else:
                pending[pair] = len(fresh)
                fresh.append([[position], widx, tidx, answer])
                worker_location_seq.append(worker.locations)
                task_location_seq.append(task.location)

        if fresh:
            if pair_distance_fn is not None:
                distances = np.asarray(
                    pair_distance_fn(
                        [entry[3].worker_id for entry in fresh],
                        [entry[3].task_id for entry in fresh],
                    ),
                    dtype=float,
                )
            else:
                distances = distance_model.worker_task_distances(
                    worker_location_seq, task_location_seq
                )
            f_values = function_set.evaluate_many(distances)
            self._append_fresh_rows(fresh, distances, f_values, rows)
        return TensorAppendResult(
            rows=rows,
            new_worker_ids=tuple(new_workers),
            new_task_ids=tuple(new_tasks),
        )

    def _append_fresh_rows(
        self,
        fresh: list[list],
        distances: np.ndarray,
        f_values: np.ndarray,
        rows_out: np.ndarray,
    ) -> None:
        """Bulk-append genuinely new answer rows (and their label rows)."""
        n_new = len(fresh)
        base = self._num_answers
        aw = np.asarray([widx for _, widx, _, _ in fresh], dtype=np.intp)
        at = np.asarray([tidx for _, _, tidx, _ in fresh], dtype=np.intp)
        counts = self._num_labels[at]
        total = int(counts.sum())
        label_base = self._num_label_rows

        self._a_worker = _grown_buffer(self._a_worker, base + n_new)
        self._a_task = _grown_buffer(self._a_task, base + n_new)
        self._distances = _grown_buffer(self._distances, base + n_new)
        self._f_values = _grown_buffer(self._f_values, base + n_new)
        self._a_label_start = _grown_buffer(self._a_label_start, base + n_new)
        for name in ("_r_answer", "_r_worker", "_r_task", "_r_label", "_responses"):
            setattr(self, name, _grown_buffer(getattr(self, name), label_base + total))

        self._a_worker[base : base + n_new] = aw
        self._a_task[base : base + n_new] = at
        self._distances[base : base + n_new] = distances
        self._f_values[base : base + n_new] = f_values
        starts = label_base + np.cumsum(counts) - counts
        self._a_label_start[base : base + n_new] = starts

        r_answer = base + np.repeat(np.arange(n_new, dtype=np.intp), counts)
        within = np.arange(total, dtype=np.intp) - np.repeat(starts - label_base, counts)
        r_task = at[r_answer - base]
        self._r_answer[label_base : label_base + total] = r_answer
        self._r_worker[label_base : label_base + total] = aw[r_answer - base]
        self._r_task[label_base : label_base + total] = r_task
        self._r_label[label_base : label_base + total] = (
            self._label_offsets[r_task] + within
        )
        if total:
            self._responses[label_base : label_base + total] = np.concatenate(
                [np.asarray(answer.responses, dtype=float) for _, _, _, answer in fresh]
            )
        self._num_answers = base + n_new
        self._num_label_rows = label_base + total

        for offset, (positions, widx, tidx, _) in enumerate(fresh):
            row = base + offset
            for position in positions:
                rows_out[position] = row
            self._rows_of_worker[widx].append(row)
            self._rows_of_task[tidx].append(row)
            self._pair_row[(widx, tidx)] = row

    @classmethod
    def build(
        cls,
        answers: AnswerSet,
        tasks: dict[str, Task],
        workers: dict[str, Worker],
        distance_model: DistanceModel,
        function_set: DistanceFunctionSet,
        pair_distance_fn: "PairDistanceFn | None" = None,
    ) -> "AnswerTensor":
        """Index ``answers`` against the task/worker registries.

        Validation mirrors ``LocationAwareInference._build_records``: unknown
        ids raise ``KeyError``, label-count mismatches raise ``ValueError``.
        Distances are computed with the batched
        :meth:`~repro.spatial.distance.DistanceModel.worker_task_distances`
        instead of N scalar cache lookups.  ``pair_distance_fn`` overrides
        that source: called with the per-answer worker-id and task-id
        sequences, it must return the aligned normalised-distance vector —
        the sparse EM engine routes this through a
        :class:`~repro.spatial.candidates.CandidateIndex` so observed pairs
        reuse the O(nnz) candidate structure (far pairs fall back to the
        maximal distance 1.0) and the fit never touches dense W×T geometry.
        """
        worker_index: dict[str, int] = {}
        task_index: dict[str, int] = {}
        task_num_labels: list[int] = []
        a_worker: list[int] = []
        a_task: list[int] = []
        pair_worker_ids: list[str] = []
        pair_task_ids: list[str] = []
        worker_location_seq = []
        task_location_seq = []
        response_rows: list[np.ndarray] = []

        for answer in answers:
            task = tasks.get(answer.task_id)
            if task is None:
                raise KeyError(f"answer references unknown task {answer.task_id!r}")
            worker = workers.get(answer.worker_id)
            if worker is None:
                raise KeyError(f"answer references unknown worker {answer.worker_id!r}")
            if answer.num_labels != task.num_labels:
                raise ValueError(
                    f"answer for task {task.task_id!r} has {answer.num_labels} labels, "
                    f"task has {task.num_labels}"
                )
            widx = worker_index.setdefault(answer.worker_id, len(worker_index))
            tidx = task_index.setdefault(answer.task_id, len(task_index))
            if tidx == len(task_num_labels):
                task_num_labels.append(task.num_labels)
            a_worker.append(widx)
            a_task.append(tidx)
            pair_worker_ids.append(answer.worker_id)
            pair_task_ids.append(answer.task_id)
            worker_location_seq.append(worker.locations)
            task_location_seq.append(task.location)
            response_rows.append(np.asarray(answer.responses, dtype=float))

        num_answers = len(a_worker)
        a_worker_arr = np.asarray(a_worker, dtype=np.intp)
        a_task_arr = np.asarray(a_task, dtype=np.intp)
        num_labels = np.asarray(task_num_labels, dtype=np.intp)
        label_offsets = np.concatenate(([0], np.cumsum(num_labels)))
        task_of_label = np.repeat(np.arange(num_labels.size, dtype=np.intp), num_labels)

        if pair_distance_fn is not None:
            distances = np.asarray(
                pair_distance_fn(pair_worker_ids, pair_task_ids), dtype=float
            )
        else:
            distances = distance_model.worker_task_distances(
                worker_location_seq, task_location_seq
            )
        f_values = function_set.evaluate_many(distances)

        counts = (
            num_labels[a_task_arr] if num_answers else np.empty(0, dtype=np.intp)
        )
        r_answer = np.repeat(np.arange(num_answers, dtype=np.intp), counts)
        starts = np.cumsum(counts) - counts  # first flat slot of each answer
        within = np.arange(r_answer.size, dtype=np.intp) - np.repeat(starts, counts)
        r_task = a_task_arr[r_answer]
        r_label = label_offsets[r_task] + within
        responses = (
            np.concatenate(response_rows) if response_rows else np.empty(0, dtype=float)
        )

        return cls(
            worker_ids=tuple(worker_index),
            task_ids=tuple(task_index),
            num_labels=num_labels,
            label_offsets=label_offsets,
            a_worker=a_worker_arr,
            a_task=a_task_arr,
            distances=distances,
            f_values=f_values,
            r_answer=r_answer,
            r_worker=a_worker_arr[r_answer],
            r_task=r_task,
            r_label=r_label,
            responses=responses,
            task_of_label=task_of_label,
        )


def initial_store(
    tensor: AnswerTensor,
    function_set: DistanceFunctionSet,
    alpha: float,
    initial_p_qualified: float,
) -> ArrayParameterStore:
    """Batched twin of ``LocationAwareInference._initial_parameters``.

    Soft majority vote per label (clipped into [0.02, 0.98]) and uniform
    function weights with an optimistic qualification prior everywhere else.
    """
    uniform = function_set.uniform_weights()
    vote_sums = np.bincount(
        tensor.r_label, weights=tensor.responses, minlength=tensor.label_offsets[-1]
    )
    vote_counts = np.bincount(tensor.a_task, minlength=tensor.num_tasks)
    per_label_counts = vote_counts[tensor.task_of_label]
    label_probs = np.where(
        per_label_counts > 0,
        np.clip(vote_sums / np.maximum(1, per_label_counts), 0.02, 0.98),
        0.5,
    )
    return ArrayParameterStore(
        function_set=function_set,
        alpha=alpha,
        worker_ids=tensor.worker_ids,
        task_ids=tensor.task_ids,
        label_offsets=tensor.label_offsets,
        p_qualified=np.full(tensor.num_workers, initial_p_qualified, dtype=float),
        distance_weights=np.tile(uniform, (tensor.num_workers, 1)),
        influence_weights=np.tile(uniform, (tensor.num_tasks, 1)),
        label_probs=label_probs,
    )


def _segment_sum_columns(
    values: np.ndarray, index: np.ndarray, size: int
) -> np.ndarray:
    """Sum the rows of ``values`` (M, F) into ``size`` bins given by ``index``."""
    out = np.empty((size, values.shape[1]), dtype=float)
    for column in range(values.shape[1]):
        out[:, column] = np.bincount(index, weights=values[:, column], minlength=size)
    return out


def _normalise_rows(
    sums: np.ndarray, denominators: np.ndarray, uniform: np.ndarray
) -> np.ndarray:
    """Divide row-wise then renormalise each row to a distribution.

    Rows whose mass vanishes fall back to the uniform distribution, matching
    the degenerate-case handling of the per-record M-step.
    """
    weights = sums / np.maximum(1, denominators)[:, None]
    totals = weights.sum(axis=1)
    degenerate = totals <= 0.0
    safe_totals = np.where(degenerate, 1.0, totals)
    weights = weights / safe_totals[:, None]
    if np.any(degenerate):
        weights[degenerate] = uniform
    return weights


def _estep_posteriors(
    alpha: float,
    p_qualified: np.ndarray,
    dw: np.ndarray,
    dt: np.ndarray,
    f_values: np.ndarray,
    expand: np.ndarray,
    pz1: np.ndarray,
    observed_one: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form E-step marginals for a batch of answers.

    ``p_qualified`` (already clipped), ``dw``, ``dt`` and ``f_values`` are
    per-answer arrays (``n`` rows); ``expand`` maps each label response to its
    owning position in those arrays; ``pz1`` (already clipped) and
    ``observed_one`` are per label response.  Returns
    ``(post_z1, post_i1, post_dw, post_dt, evidence)`` — the array mirror of
    ``LocationAwareInference._expectation``, shared by the full
    :func:`em_step` and the localized :func:`em_step_localized`.
    """
    floor = PROBABILITY_FLOOR
    p_unqualified = 1.0 - p_qualified
    worker_quality = np.einsum("nf,nf->n", dw, f_values)  # DQ_w per answer
    poi_quality = np.einsum("nf,nf->n", dt, f_values)  # IQ_t per answer
    s_q = np.clip(
        alpha * worker_quality + (1.0 - alpha) * poi_quality, floor, 1.0 - floor
    )
    # Per-function rows/columns of q(d_w, d_t) marginalised over the other
    # variable's current weights.
    q_row = alpha * f_values + (1.0 - alpha) * poi_quality[:, None]
    q_col = alpha * worker_quality[:, None] + (1.0 - alpha) * f_values

    # ---- per-label-response quantities (M,) --------------------------------
    pq_m = p_qualified[expand]
    pu_m = p_unqualified[expand]
    sq_m = s_q[expand]
    pz_equal_r = np.where(observed_one, pz1, 1.0 - pz1)  # P(z = r)
    pz_not_r = 1.0 - pz_equal_r

    # P(r) per label response: the normaliser of the joint posterior.
    evidence = 0.5 * pu_m + pq_m * (pz_equal_r * sq_m + pz_not_r * (1.0 - sq_m))
    evidence = np.clip(evidence, 1e-12, None)

    # P(z = 1 | r): the z=1 branch uses s_q when r=1 and (1-s_q) when r=0.
    agree_factor = np.where(observed_one, sq_m, 1.0 - sq_m)
    post_z1 = pz1 * (0.5 * pu_m + pq_m * agree_factor) / evidence
    post_i1 = pq_m * (pz_equal_r * sq_m + pz_not_r * (1.0 - sq_m)) / evidence

    # P(d_w = a | r) and P(d_t = a | r) per label response: (M, |F|).
    q_row_m = q_row[expand]
    agree_dw = pz_equal_r[:, None] * q_row_m + pz_not_r[:, None] * (1.0 - q_row_m)
    post_dw = (
        dw[expand] * (0.5 * pu_m[:, None] + pq_m[:, None] * agree_dw)
    ) / evidence[:, None]
    q_col_m = q_col[expand]
    agree_dt = pz_equal_r[:, None] * q_col_m + pz_not_r[:, None] * (1.0 - q_col_m)
    post_dt = (
        dt[expand] * (0.5 * pu_m[:, None] + pq_m[:, None] * agree_dt)
    ) / evidence[:, None]
    return post_z1, post_i1, post_dw, post_dt, evidence


def em_step(
    tensor: AnswerTensor,
    store: ArrayParameterStore,
    answer_weights: np.ndarray | None = None,
) -> tuple[ArrayParameterStore, float]:
    """One combined E+M step over the whole tensor (Equations 12 and 14).

    Returns the new parameter store and the total log-likelihood of the
    observed answers under the *input* parameters.  Mirrors
    ``LocationAwareInference._em_iteration`` exactly, with every per-record
    quantity promoted to an array over the N answers / M label responses.

    ``answer_weights`` (one non-negative weight per answer row) turns the
    M-step into a *weighted* maximisation: each answer contributes its weight
    to both the posterior sums and the count denominators.  This is how
    exponential decay (old answers fade) and trust-aware down-weighting
    (quarantined workers count less) enter the full refresh.  ``None`` takes
    the exact unweighted code path — bit-identical to the historical kernel.
    """
    floor = PROBABILITY_FLOOR
    p_qualified = np.clip(store.p_qualified[tensor.a_worker], floor, 1.0 - floor)
    pz1 = np.clip(store.label_probs[tensor.r_label], 1e-9, 1.0 - 1e-9)
    post_z1, post_i1, post_dw, post_dt, evidence = _estep_posteriors(
        alpha=store.alpha,
        p_qualified=p_qualified,
        dw=store.distance_weights[tensor.a_worker],
        dt=store.influence_weights[tensor.a_task],
        f_values=tensor.f_values,
        expand=tensor.r_answer,
        pz1=pz1,
        observed_one=tensor.responses == 1,
    )

    # ---- M-step: segment sums then per-entity renormalisation ---------------
    num_workers = tensor.num_workers
    num_tasks = tensor.num_tasks
    uniform = store.function_set.uniform_weights()

    if answer_weights is None:
        log_likelihood = float(np.sum(np.log(evidence)))
        z_sums = np.bincount(
            tensor.r_label, weights=post_z1, minlength=tensor.label_offsets[-1]
        )
        answers_per_task = np.bincount(tensor.a_task, minlength=num_tasks)
        new_label_probs = np.clip(
            z_sums / np.maximum(1, answers_per_task)[tensor.task_of_label], 0.0, 1.0
        )

        labels_per_task = np.bincount(tensor.r_task, minlength=num_tasks)
        dt_sums = _segment_sum_columns(post_dt, tensor.r_task, num_tasks)
        new_influence = _normalise_rows(dt_sums, labels_per_task, uniform)

        labels_per_worker = np.bincount(tensor.r_worker, minlength=num_workers)
        i_sums = np.bincount(tensor.r_worker, weights=post_i1, minlength=num_workers)
        new_p_qualified = np.clip(i_sums / np.maximum(1, labels_per_worker), 0.0, 1.0)
        dw_sums = _segment_sum_columns(post_dw, tensor.r_worker, num_workers)
        new_distance_weights = _normalise_rows(dw_sums, labels_per_worker, uniform)
    else:
        weights = np.asarray(answer_weights, dtype=float)
        if weights.shape != (tensor.num_answers,):
            raise ValueError(
                f"answer_weights must have shape ({tensor.num_answers},), got "
                f"{weights.shape}"
            )
        w_m = weights[tensor.r_answer]  # per label response
        log_likelihood = float(np.sum(w_m * np.log(evidence)))
        # A zero-weight task/worker divides 0 by the floor below — identical
        # to the unweighted kernel's max(1, count) treatment of empty rows,
        # while genuinely fractional denominators stay exact.
        denom_floor = 1e-9
        z_sums = np.bincount(
            tensor.r_label, weights=post_z1 * w_m, minlength=tensor.label_offsets[-1]
        )
        answers_per_task = np.bincount(
            tensor.a_task, weights=weights, minlength=num_tasks
        )
        new_label_probs = np.clip(
            z_sums / np.maximum(denom_floor, answers_per_task)[tensor.task_of_label],
            0.0,
            1.0,
        )

        labels_per_task = np.bincount(tensor.r_task, weights=w_m, minlength=num_tasks)
        dt_sums = _segment_sum_columns(post_dt * w_m[:, None], tensor.r_task, num_tasks)
        new_influence = _normalise_rows(dt_sums, labels_per_task, uniform)

        labels_per_worker = np.bincount(
            tensor.r_worker, weights=w_m, minlength=num_workers
        )
        i_sums = np.bincount(
            tensor.r_worker, weights=post_i1 * w_m, minlength=num_workers
        )
        new_p_qualified = np.clip(
            i_sums / np.maximum(denom_floor, labels_per_worker), 0.0, 1.0
        )
        dw_sums = _segment_sum_columns(
            post_dw * w_m[:, None], tensor.r_worker, num_workers
        )
        new_distance_weights = _normalise_rows(dw_sums, labels_per_worker, uniform)

    new_store = ArrayParameterStore(
        function_set=store.function_set,
        alpha=store.alpha,
        worker_ids=store.worker_ids,
        task_ids=store.task_ids,
        label_offsets=store.label_offsets,
        p_qualified=new_p_qualified,
        distance_weights=new_distance_weights,
        influence_weights=new_influence,
        label_probs=new_label_probs,
    )
    return new_store, log_likelihood


def em_step_localized(
    tensor: AnswerTensor,
    store: ArrayParameterStore,
    answer_rows: np.ndarray,
    affected_workers: np.ndarray,
    affected_tasks: np.ndarray,
    label_slots: np.ndarray,
) -> None:
    """One localized E+M sweep against the **live** tensor and store, in place.

    ``answer_rows`` selects the relevant neighbourhood (every answer of every
    affected worker/task — so the restricted M-step denominators equal the
    global ones for the affected entities), ``affected_workers`` /
    ``affected_tasks`` are the store rows to re-estimate and ``label_slots``
    the flat label slots those tasks own.  Everything else keeps its current
    estimate, exactly like the per-record localized sweep that never
    accumulates sums for unaffected entities.

    This is the incremental updater's inner kernel: cost is
    ``O(R · |L_t| · |F|)`` array work over the ``R`` selected rows plus
    O(global sizes) zero-filled segment-sum allocations — no tensor or store
    is ever rebuilt.
    """
    floor = PROBABILITY_FLOOR
    aw = tensor.a_worker[answer_rows]
    at = tensor.a_task[answer_rows]
    f_values = tensor.f_values[answer_rows]
    counts = tensor.num_labels[at]
    starts = tensor.a_label_start[answer_rows]
    total = int(counts.sum())
    # Label rows of the selected answers (contiguous per answer).
    expand = np.repeat(np.arange(answer_rows.size, dtype=np.intp), counts)
    batch_starts = np.cumsum(counts) - counts
    label_rows = (
        np.arange(total, dtype=np.intp)
        - np.repeat(batch_starts, counts)
        + np.repeat(starts, counts)
    )
    r_label = tensor.r_label[label_rows]
    responses = tensor.responses[label_rows]
    r_worker = aw[expand]
    r_task = at[expand]

    p_qualified = np.clip(store.p_qualified[aw], floor, 1.0 - floor)
    pz1 = np.clip(store.label_probs[r_label], 1e-9, 1.0 - 1e-9)
    post_z1, post_i1, post_dw, post_dt, _ = _estep_posteriors(
        alpha=store.alpha,
        p_qualified=p_qualified,
        dw=store.distance_weights[aw],
        dt=store.influence_weights[at],
        f_values=f_values,
        expand=expand,
        pz1=pz1,
        observed_one=responses == 1,
    )

    # ---- M-step restricted to the affected entities -------------------------
    num_workers = store.num_workers
    num_tasks = store.num_tasks
    uniform = store.function_set.uniform_weights()

    z_sums = np.bincount(r_label, weights=post_z1, minlength=store.num_label_slots)
    answers_per_task = np.bincount(at, minlength=num_tasks)
    denominators = np.maximum(1, answers_per_task)[tensor.task_of_label[label_slots]]
    store.label_probs[label_slots] = np.clip(
        z_sums[label_slots] / denominators, 0.0, 1.0
    )

    labels_per_task = np.bincount(r_task, minlength=num_tasks)
    dt_sums = _segment_sum_columns(post_dt, r_task, num_tasks)
    store.influence_weights[affected_tasks] = _normalise_rows(
        dt_sums[affected_tasks], labels_per_task[affected_tasks], uniform
    )

    labels_per_worker = np.bincount(r_worker, minlength=num_workers)
    i_sums = np.bincount(r_worker, weights=post_i1, minlength=num_workers)
    store.p_qualified[affected_workers] = np.clip(
        i_sums[affected_workers]
        / np.maximum(1, labels_per_worker[affected_workers]),
        0.0,
        1.0,
    )
    dw_sums = _segment_sum_columns(post_dw, r_worker, num_workers)
    store.distance_weights[affected_workers] = _normalise_rows(
        dw_sums[affected_workers], labels_per_worker[affected_workers], uniform
    )


def gather_affected_rows(
    tensor: AnswerTensor,
    affected_workers: np.ndarray,
    affected_tasks: np.ndarray,
) -> np.ndarray:
    """Answer rows relevant to a localized sweep over the given entities.

    Every answer of every affected worker (to re-estimate that worker's
    quality) or affected task (labels and influence), gathered through the
    tensor's per-entity row indexes and deduplicated.  Requires row tracking.
    """
    return np.unique(
        np.fromiter(
            itertools.chain.from_iterable(
                [tensor.rows_of_worker(int(i)) for i in affected_workers]
                + [tensor.rows_of_task(int(j)) for j in affected_tasks]
            ),
            dtype=np.intp,
        )
    )


def label_slots_of_tasks(
    label_offsets: np.ndarray, task_rows: np.ndarray
) -> np.ndarray:
    """Flat label slots owned by ``task_rows``, concatenated in row order."""
    if task_rows.size == 0:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(
        [
            np.arange(int(label_offsets[j]), int(label_offsets[j + 1]), dtype=np.intp)
            for j in task_rows
        ]
    )


@dataclass(frozen=True)
class SweepReport:
    """Work accounting of one :func:`localized_sweeps` invocation."""

    #: Localized E/M sweeps actually executed (≤ the requested iterations).
    sweeps_run: int = 0
    #: Affected workers dropped from later sweeps by the convergence exit.
    workers_settled: int = 0
    #: Affected tasks dropped from later sweeps by the convergence exit.
    tasks_settled: int = 0
    #: Store rows of the workers that settled (cached sweeps only, else None).
    settled_worker_rows: np.ndarray | None = None
    #: Store rows of the tasks that settled (cached sweeps only, else None).
    settled_task_rows: np.ndarray | None = None


def localized_sweeps(
    tensor: AnswerTensor,
    store: ArrayParameterStore,
    answer_rows: np.ndarray,
    affected_workers: np.ndarray,
    affected_tasks: np.ndarray,
    label_slots: np.ndarray,
    iterations: int,
    early_exit_threshold: float = 0.0,
) -> SweepReport:
    """Run up to ``iterations`` localized sweeps with per-entity early exit.

    With ``early_exit_threshold > 0``, entities whose parameters all moved at
    most that much in a sweep are considered settled and dropped from the
    remaining sweeps (the relevant row set shrinks with them); once every
    affected entity has settled the loop stops outright.  Settled
    neighbourhoods therefore stop burning iterations — late in a long stream
    most affected entities are already well-estimated and one sweep barely
    moves them.  ``early_exit_threshold == 0`` runs every sweep over the full
    affected sets, which is what the reference-engine equivalence pins.
    ``label_slots`` must be the concatenation of the affected tasks' slot
    ranges in ``affected_tasks`` order (as :func:`label_slots_of_tasks`
    builds them).
    """
    active_w = affected_workers
    active_t = affected_tasks
    rows = answer_rows
    slots = label_slots
    offsets = store.label_offsets
    sweeps_run = 0
    workers_settled = 0
    tasks_settled = 0
    for sweep in range(iterations):
        track = early_exit_threshold > 0.0 and sweep + 1 < iterations
        if track:
            # Fancy indexing already returns fresh copies — safe snapshots.
            prev_pq = store.p_qualified[active_w]
            prev_dw = store.distance_weights[active_w]
            prev_iw = store.influence_weights[active_t]
            prev_lp = store.label_probs[slots]
        em_step_localized(tensor, store, rows, active_w, active_t, slots)
        sweeps_run += 1
        if not track:
            continue
        if active_w.size:
            w_delta = np.maximum(
                np.abs(store.p_qualified[active_w] - prev_pq),
                np.abs(store.distance_weights[active_w] - prev_dw).max(axis=1),
            )
            keep_w = active_w[w_delta > early_exit_threshold]
        else:
            keep_w = active_w
        if active_t.size:
            t_delta = np.abs(store.influence_weights[active_t] - prev_iw).max(axis=1)
            counts = np.asarray(
                offsets[active_t + 1] - offsets[active_t], dtype=np.intp
            )
            starts = np.cumsum(counts) - counts
            # Per-task max over the task's label slots (each task owns >= 1).
            t_delta = np.maximum(
                t_delta,
                np.maximum.reduceat(np.abs(store.label_probs[slots] - prev_lp), starts),
            )
            keep_t = active_t[t_delta > early_exit_threshold]
        else:
            keep_t = active_t
        workers_settled += active_w.size - keep_w.size
        tasks_settled += active_t.size - keep_t.size
        if keep_w.size == 0 and keep_t.size == 0:
            break
        if keep_w.size == active_w.size and keep_t.size == active_t.size:
            continue  # nothing settled; the gathered rows/slots stay valid
        active_w = keep_w
        active_t = keep_t
        slots = label_slots_of_tasks(offsets, active_t)
        rows = gather_affected_rows(tensor, active_w, active_t)
    return SweepReport(
        sweeps_run=sweeps_run,
        workers_settled=workers_settled,
        tasks_settled=tasks_settled,
    )


class SufficientStatCache:
    """Incremental-EM sufficient statistics over a live tensor/store pair.

    :func:`em_step_localized` is only O(changed) in its E-step — the
    restricted M-step re-gathers *every* answer of every affected entity so
    its denominators and sums span the entity's whole history, which makes a
    micro-batch sweep O(entity-history) and is exactly the cost that grows
    with the stream.  This cache keeps the M-step sums themselves:

    * per label row, the posterior contributions of that row as last
      computed (``z1``, ``i1`` and the (M, |F|) ``dw``/``dt`` blocks);
    * per entity, the running totals those rows sum into (``slot_z`` per
      label slot, ``i``/``dw`` per worker, ``dt`` per task) plus the pure
      count denominators (labels per worker/task, answers per task).

    A batch sweep then *folds* only the batch's label rows: it recomputes
    their posteriors under the current parameters, adds the difference
    against the cached values into the totals, and runs the closed-form
    M-step straight off the totals.  Rows outside the batch keep the
    contribution from whenever they were last computed — the classic
    incremental-EM scheme (Neal & Hinton), which converges to the same
    stationary points as full sweeps and coincides with them whenever the
    cache is rebuilt (every full refresh replaces the store, invalidating
    the cache, so drift never survives a refresh interval).

    The cache is bound to one ``(tensor, store)`` object pair; check
    :meth:`in_sync_with` before reuse and rebuild when either was replaced.

    **Exponential decay** (``decay`` < 1): the cache additionally tracks an
    integer *epoch*.  :meth:`decay_step` multiplies every running total *and*
    every count denominator by ``decay`` and advances the epoch — O(W+T+S),
    touching no rows.  Each label row remembers the epoch it arrived at
    (``row_epoch``; pre-existing rows may be back-dated via ``row_ages``), so
    its live contribution to the totals is ``decay^(epoch - row_epoch) ×
    posterior``.  A fold therefore adds ``scale · (new − cached)`` with
    ``scale = decay^(epoch - row_epoch)`` — re-aging costs O(changed rows),
    the row's numerator stays consistent with its decayed denominator, and a
    row that is never re-folded fades at exactly the same rate as its count.
    ``decay == 1.0`` skips every weighting (all scales are 1) and is
    bit-identical to the undecayed cache.
    """

    def __init__(
        self,
        tensor: AnswerTensor,
        store: ArrayParameterStore,
        decay: float = 1.0,
        row_ages: np.ndarray | None = None,
    ) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        self.tensor = tensor
        self.store = store
        self._decay = float(decay)
        self._epoch = 0
        # Empty-entity denominators divide 0 by this floor; the decayed path
        # needs a tiny floor because legitimately faded counts sit below 1.
        self._denom_floor = 1.0 if decay == 1.0 else 1e-9
        floor = PROBABILITY_FLOOR
        p_qualified = np.clip(store.p_qualified[tensor.a_worker], floor, 1.0 - floor)
        pz1 = np.clip(store.label_probs[tensor.r_label], 1e-9, 1.0 - 1e-9)
        post_z1, post_i1, post_dw, post_dt, _ = _estep_posteriors(
            alpha=store.alpha,
            p_qualified=p_qualified,
            dw=store.distance_weights[tensor.a_worker],
            dt=store.influence_weights[tensor.a_task],
            f_values=tensor.f_values,
            expand=tensor.r_answer,
            pz1=pz1,
            observed_one=tensor.responses == 1,
        )
        num_workers = store.num_workers
        num_tasks = store.num_tasks
        num_slots = store.num_label_slots
        self._row_z1 = post_z1
        self._row_i1 = post_i1
        self._row_dw = post_dw
        self._row_dt = post_dt
        if decay == 1.0:
            self._row_epoch = None
            self._slot_z = np.bincount(
                tensor.r_label, weights=post_z1, minlength=num_slots
            )
            self._worker_i = np.bincount(
                tensor.r_worker, weights=post_i1, minlength=num_workers
            )
            self._worker_dw = _segment_sum_columns(
                post_dw, tensor.r_worker, num_workers
            )
            self._task_dt = _segment_sum_columns(post_dt, tensor.r_task, num_tasks)
            self._worker_labels = np.bincount(
                tensor.r_worker, minlength=num_workers
            ).astype(float)
            self._task_labels = np.bincount(tensor.r_task, minlength=num_tasks).astype(
                float
            )
            self._task_answers = np.bincount(
                tensor.a_task, minlength=num_tasks
            ).astype(float)
        else:
            if row_ages is None:
                ages = np.zeros(tensor.num_answers, dtype=float)
            else:
                ages = np.asarray(row_ages, dtype=float)
                if ages.shape != (tensor.num_answers,):
                    raise ValueError(
                        f"row_ages must have shape ({tensor.num_answers},), got "
                        f"{ages.shape}"
                    )
            answer_w = self._decay**ages
            w_m = answer_w[tensor.r_answer]
            # A row's arrival epoch relative to epoch 0 is minus its age, so
            # decay^(epoch - row_epoch) reproduces its weight at any epoch.
            self._row_epoch = -ages[tensor.r_answer]
            self._slot_z = np.bincount(
                tensor.r_label, weights=post_z1 * w_m, minlength=num_slots
            )
            self._worker_i = np.bincount(
                tensor.r_worker, weights=post_i1 * w_m, minlength=num_workers
            )
            self._worker_dw = _segment_sum_columns(
                post_dw * w_m[:, None], tensor.r_worker, num_workers
            )
            self._task_dt = _segment_sum_columns(
                post_dt * w_m[:, None], tensor.r_task, num_tasks
            )
            self._worker_labels = np.bincount(
                tensor.r_worker, weights=w_m, minlength=num_workers
            )
            self._task_labels = np.bincount(
                tensor.r_task, weights=w_m, minlength=num_tasks
            )
            self._task_answers = np.bincount(
                tensor.a_task, weights=answer_w, minlength=num_tasks
            )
        self._num_workers = num_workers
        self._num_tasks = num_tasks
        self._num_slots = num_slots
        self._synced_answers = tensor.num_answers
        self._synced_label_rows = tensor.num_label_responses

    @property
    def decay(self) -> float:
        return self._decay

    @property
    def epoch(self) -> int:
        """Decay steps applied since the cache was built."""
        return self._epoch

    def decay_step(self) -> None:
        """Age every statistic by one step: totals and counts scale by decay.

        O(W + T + S) multiplications, no row access.  A no-op at decay=1.0 so
        callers can invoke it unconditionally.
        """
        if self._decay == 1.0:
            return
        gamma = self._decay
        self._slot_z *= gamma
        self._worker_i *= gamma
        self._worker_dw *= gamma
        self._task_dt *= gamma
        self._worker_labels *= gamma
        self._task_labels *= gamma
        self._task_answers *= gamma
        self._epoch += 1

    def in_sync_with(self, tensor: AnswerTensor, store: ArrayParameterStore) -> bool:
        """Whether the cache still describes this exact tensor/store pair."""
        return self.tensor is tensor and self.store is store

    def sync_growth(self) -> None:
        """Absorb rows and entities appended to the tensor since the last fold.

        New label rows start with a zero cached contribution (their first fold
        adds the full posterior); new entities start with zero totals; the
        count denominators are advanced by the fresh answer rows.  Re-answers
        rewrite existing rows in place and are recomputed by the fold itself,
        so only genuinely new rows matter here.
        """
        tensor = self.tensor
        num_rows = tensor.num_label_responses
        if num_rows > self._synced_label_rows:
            old = self._synced_label_rows
            self._row_z1 = _grown_buffer(self._row_z1, num_rows)
            self._row_i1 = _grown_buffer(self._row_i1, num_rows)
            self._row_dw = _grown_buffer(self._row_dw, num_rows)
            self._row_dt = _grown_buffer(self._row_dt, num_rows)
            self._row_z1[old:num_rows] = 0.0
            self._row_i1[old:num_rows] = 0.0
            self._row_dw[old:num_rows] = 0.0
            self._row_dt[old:num_rows] = 0.0
            if self._row_epoch is not None:
                self._row_epoch = _grown_buffer(self._row_epoch, num_rows)
                self._row_epoch[old:num_rows] = float(self._epoch)
            self._synced_label_rows = num_rows
        num_workers = tensor.num_workers
        if num_workers > self._num_workers:
            old = self._num_workers
            self._worker_i = _grown_buffer(self._worker_i, num_workers)
            self._worker_dw = _grown_buffer(self._worker_dw, num_workers)
            self._worker_labels = _grown_buffer(self._worker_labels, num_workers)
            self._worker_i[old:num_workers] = 0.0
            self._worker_dw[old:num_workers] = 0.0
            self._worker_labels[old:num_workers] = 0.0
            self._num_workers = num_workers
        num_tasks = tensor.num_tasks
        if num_tasks > self._num_tasks:
            old = self._num_tasks
            self._task_dt = _grown_buffer(self._task_dt, num_tasks)
            self._task_labels = _grown_buffer(self._task_labels, num_tasks)
            self._task_answers = _grown_buffer(self._task_answers, num_tasks)
            self._task_dt[old:num_tasks] = 0.0
            self._task_labels[old:num_tasks] = 0.0
            self._task_answers[old:num_tasks] = 0.0
            self._num_tasks = num_tasks
        num_slots = int(tensor.label_offsets[-1])
        if num_slots > self._num_slots:
            old = self._num_slots
            self._slot_z = _grown_buffer(self._slot_z, num_slots)
            self._slot_z[old:num_slots] = 0.0
            self._num_slots = num_slots
        num_answers = tensor.num_answers
        if num_answers > self._synced_answers:
            fresh = slice(self._synced_answers, num_answers)
            aw = tensor.a_worker[fresh]
            at = tensor.a_task[fresh]
            counts = tensor.num_labels[at].astype(float)
            self._worker_labels[: self._num_workers] += np.bincount(
                aw, weights=counts, minlength=self._num_workers
            )
            self._task_labels[: self._num_tasks] += np.bincount(
                at, weights=counts, minlength=self._num_tasks
            )
            self._task_answers[: self._num_tasks] += np.bincount(
                at, minlength=self._num_tasks
            )
            self._synced_answers = num_answers

    def fold(self, answer_rows: np.ndarray) -> int:
        """Recompute the posteriors of ``answer_rows`` and fold the deltas in.

        Returns the number of label rows recomputed.  Cost is O(batch label
        rows · |F|) plus O(W + T + S) for the zero-filled segment sums —
        independent of how much history the touched entities have.
        """
        tensor = self.tensor
        store = self.store
        floor = PROBABILITY_FLOOR
        aw = tensor.a_worker[answer_rows]
        at = tensor.a_task[answer_rows]
        f_values = tensor.f_values[answer_rows]
        counts = tensor.num_labels[at]
        starts = tensor.a_label_start[answer_rows]
        total = int(counts.sum())
        expand = np.repeat(np.arange(answer_rows.size, dtype=np.intp), counts)
        batch_starts = np.cumsum(counts) - counts
        label_rows = (
            np.arange(total, dtype=np.intp)
            - np.repeat(batch_starts, counts)
            + np.repeat(starts, counts)
        )
        r_label = tensor.r_label[label_rows]
        responses = tensor.responses[label_rows]
        r_worker = aw[expand]
        r_task = at[expand]

        p_qualified = np.clip(store.p_qualified[aw], floor, 1.0 - floor)
        pz1 = np.clip(store.label_probs[r_label], 1e-9, 1.0 - 1e-9)
        post_z1, post_i1, post_dw, post_dt, _ = _estep_posteriors(
            alpha=store.alpha,
            p_qualified=p_qualified,
            dw=store.distance_weights[aw],
            dt=store.influence_weights[at],
            f_values=f_values,
            expand=expand,
            pz1=pz1,
            observed_one=responses == 1,
        )
        if self._row_epoch is None:
            delta_z1 = post_z1 - self._row_z1[label_rows]
            delta_i1 = post_i1 - self._row_i1[label_rows]
            delta_dw = post_dw - self._row_dw[label_rows]
            delta_dt = post_dt - self._row_dt[label_rows]
        else:
            # Re-aging O(changed rows): the row's live weight in the totals is
            # decay^(epoch - arrival epoch), applied to old and new posterior
            # alike so numerator and (globally decayed) denominator agree.
            scale = self._decay ** (self._epoch - self._row_epoch[label_rows])
            delta_z1 = scale * (post_z1 - self._row_z1[label_rows])
            delta_i1 = scale * (post_i1 - self._row_i1[label_rows])
            delta_dw = scale[:, None] * (post_dw - self._row_dw[label_rows])
            delta_dt = scale[:, None] * (post_dt - self._row_dt[label_rows])
        self._slot_z[: self._num_slots] += np.bincount(
            r_label,
            weights=delta_z1,
            minlength=self._num_slots,
        )
        self._worker_i[: self._num_workers] += np.bincount(
            r_worker,
            weights=delta_i1,
            minlength=self._num_workers,
        )
        self._worker_dw[: self._num_workers] += _segment_sum_columns(
            delta_dw, r_worker, self._num_workers
        )
        self._task_dt[: self._num_tasks] += _segment_sum_columns(
            delta_dt, r_task, self._num_tasks
        )
        self._row_z1[label_rows] = post_z1
        self._row_i1[label_rows] = post_i1
        self._row_dw[label_rows] = post_dw
        self._row_dt[label_rows] = post_dt
        return total

    def estimate(
        self,
        affected_workers: np.ndarray,
        affected_tasks: np.ndarray,
        label_slots: np.ndarray,
    ) -> None:
        """Closed-form M-step for the affected entities, straight off totals.

        Identical formulas to :func:`em_step_localized`'s restricted M-step —
        the totals equal what a full per-entity re-gather would sum, so the
        only difference is which E-step parameters old rows were computed at.
        """
        store = self.store
        uniform = store.function_set.uniform_weights()
        if label_slots.size:
            denominators = np.maximum(
                self._denom_floor,
                self._task_answers[self.tensor.task_of_label[label_slots]],
            )
            store.label_probs[label_slots] = np.clip(
                self._slot_z[label_slots] / denominators, 0.0, 1.0
            )
        if affected_tasks.size:
            store.influence_weights[affected_tasks] = _normalise_rows(
                self._task_dt[affected_tasks],
                self._task_labels[affected_tasks],
                uniform,
            )
        if affected_workers.size:
            store.p_qualified[affected_workers] = np.clip(
                self._worker_i[affected_workers]
                / np.maximum(self._denom_floor, self._worker_labels[affected_workers]),
                0.0,
                1.0,
            )
            store.distance_weights[affected_workers] = _normalise_rows(
                self._worker_dw[affected_workers],
                self._worker_labels[affected_workers],
                uniform,
            )


def cached_sweeps(
    cache: SufficientStatCache,
    batch_rows: np.ndarray,
    affected_workers: np.ndarray,
    affected_tasks: np.ndarray,
    label_slots: np.ndarray,
    iterations: int,
    early_exit_threshold: float,
) -> SweepReport:
    """Run up to ``iterations`` O(changed) sweeps off the sufficient stats.

    The cached twin of :func:`localized_sweeps`: each sweep folds only the
    batch's own label rows (new answer slots) and re-estimates the affected
    entities from the running totals, instead of re-gathering whole entity
    histories.  The per-entity convergence exit mirrors the exact path, but
    settled entities additionally *shrink the fold set* to the rows still
    touching an active entity, and the report carries the settled store rows
    so the caller can defer them across future batches.
    """
    tensor = cache.tensor
    store = cache.store
    offsets = store.label_offsets
    active_w = affected_workers
    active_t = affected_tasks
    rows = batch_rows
    slots = label_slots
    sweeps_run = 0
    settled_w: list[np.ndarray] = []
    settled_t: list[np.ndarray] = []
    for sweep in range(iterations):
        track = early_exit_threshold > 0.0 and sweep + 1 < iterations
        if track:
            prev_pq = store.p_qualified[active_w]
            prev_dw = store.distance_weights[active_w]
            prev_iw = store.influence_weights[active_t]
            prev_lp = store.label_probs[slots]
        cache.fold(rows)
        cache.estimate(active_w, active_t, slots)
        sweeps_run += 1
        if not track:
            continue
        if active_w.size:
            w_delta = np.maximum(
                np.abs(store.p_qualified[active_w] - prev_pq),
                np.abs(store.distance_weights[active_w] - prev_dw).max(axis=1),
            )
            keep_w = active_w[w_delta > early_exit_threshold]
            if keep_w.size < active_w.size:
                settled_w.append(active_w[w_delta <= early_exit_threshold])
        else:
            keep_w = active_w
        if active_t.size:
            t_delta = np.abs(store.influence_weights[active_t] - prev_iw).max(axis=1)
            counts = np.asarray(
                offsets[active_t + 1] - offsets[active_t], dtype=np.intp
            )
            starts = np.cumsum(counts) - counts
            t_delta = np.maximum(
                t_delta,
                np.maximum.reduceat(np.abs(store.label_probs[slots] - prev_lp), starts),
            )
            keep_t = active_t[t_delta > early_exit_threshold]
            if keep_t.size < active_t.size:
                settled_t.append(active_t[t_delta <= early_exit_threshold])
        else:
            keep_t = active_t
        if keep_w.size == 0 and keep_t.size == 0:
            break
        if keep_w.size == active_w.size and keep_t.size == active_t.size:
            continue
        active_w = keep_w
        active_t = keep_t
        slots = label_slots_of_tasks(offsets, active_t)
        keep_rows = np.isin(tensor.a_worker[rows], active_w) | np.isin(
            tensor.a_task[rows], active_t
        )
        rows = rows[keep_rows]
        if rows.size == 0:
            break
    settled_worker_rows = (
        np.concatenate(settled_w) if settled_w else np.empty(0, dtype=np.intp)
    )
    settled_task_rows = (
        np.concatenate(settled_t) if settled_t else np.empty(0, dtype=np.intp)
    )
    return SweepReport(
        sweeps_run=sweeps_run,
        workers_settled=int(settled_worker_rows.size),
        tasks_settled=int(settled_task_rows.size),
        settled_worker_rows=settled_worker_rows,
        settled_task_rows=settled_task_rows,
    )


def warm_start_extra_delta(
    initial: ModelParameters, tensor: AnswerTensor
) -> float:
    """First-iteration convergence-delta correction for warm starts.

    ``ModelParameters.max_difference`` spans the *union* of the old and new
    entity sets, while the array engine only tracks entities present in the
    answer tensor.  When warm-starting from parameters whose entity sets differ
    from the tensor's, the reference engine's first delta picks up extra terms:
    a task present on one side only contributes 1.0, and a worker present only
    in ``initial`` is compared against the footnote-3 prior.  This returns the
    maximum of those extra terms so the vectorised loop can fold it into its
    first iteration's delta and stop after exactly the same iteration count.
    """
    seen_tasks = set(tensor.task_ids)
    initial_tasks = set(initial.tasks)
    extra = 0.0
    if seen_tasks ^ initial_tasks:
        extra = 1.0
    prior_weights = initial.function_set.best_quality_weights()
    for worker_id in set(initial.workers) - set(tensor.worker_ids):
        worker = initial.workers[worker_id]
        extra = max(extra, abs(1.0 - worker.p_qualified))
        extra = max(
            extra, float(np.max(np.abs(prior_weights - worker.distance_weights)))
        )
    return extra
