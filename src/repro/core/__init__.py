"""The paper's core contribution.

* :mod:`repro.core.distance_functions` — the bell-shaped distance quality
  functions ``f_λ(d) = (1 + e^{-λ d²}) / 2`` and the fixed distance-function set
  ``F`` (Definitions 3–4).
* :mod:`repro.core.params` — containers for the model parameters
  ``P(z_{t,k})``, ``P(i_w)``, ``P(d_w)`` and ``P(d_t)``, in both the
  id-oriented (:class:`~repro.core.params.ModelParameters`) and the flat
  array-backed (:class:`~repro.core.params.ArrayParameterStore`) form.
* :mod:`repro.core.inference` — the location-aware graphical model and its EM
  parameter estimation (Section III).
* :mod:`repro.core.em_kernel` — the vectorised (batched NumPy) EM engine the
  default ``engine="vectorized"`` configuration runs on.
* :mod:`repro.core.incremental` — the incremental EM update applied between
  full re-runs (Section III-D).
* :mod:`repro.core.accuracy` — accuracy estimation for hypothetical
  assignments (Equations 15–20, Lemmas 1–2).
* :mod:`repro.core.assignment` — the AccOpt greedy assignment algorithm
  (Algorithm 1).
"""

from repro.core.distance_functions import (
    BellShapedFunction,
    DistanceFunctionSet,
    PAPER_FUNCTION_SET,
)
from repro.core.params import (
    ArrayParameterStore,
    ModelParameters,
    TaskParameters,
    WorkerParameters,
)
from repro.core.em_kernel import AnswerTensor
from repro.core.inference import (
    EM_ENGINES,
    InferenceConfig,
    InferenceResult,
    LocationAwareInference,
)
from repro.core.incremental import IncrementalUpdater
from repro.core.accuracy import AccuracyEstimator, LabelAccuracy
from repro.core.assignment import AccOptAssigner

__all__ = [
    "BellShapedFunction",
    "DistanceFunctionSet",
    "PAPER_FUNCTION_SET",
    "AnswerTensor",
    "ArrayParameterStore",
    "ModelParameters",
    "WorkerParameters",
    "TaskParameters",
    "EM_ENGINES",
    "InferenceConfig",
    "InferenceResult",
    "LocationAwareInference",
    "IncrementalUpdater",
    "AccuracyEstimator",
    "LabelAccuracy",
    "AccOptAssigner",
]
