"""The paper's core contribution.

* :mod:`repro.core.distance_functions` — the bell-shaped distance quality
  functions ``f_λ(d) = (1 + e^{-λ d²}) / 2`` and the fixed distance-function set
  ``F`` (Definitions 3–4).
* :mod:`repro.core.params` — containers for the model parameters
  ``P(z_{t,k})``, ``P(i_w)``, ``P(d_w)`` and ``P(d_t)``, in both the
  id-oriented (:class:`~repro.core.params.ModelParameters`) and the flat
  array-backed (:class:`~repro.core.params.ArrayParameterStore`) form.
* :mod:`repro.core.inference` — the location-aware graphical model and its EM
  parameter estimation (Section III).
* :mod:`repro.core.em_kernel` — the vectorised (batched NumPy) EM engine the
  default ``engine="vectorized"`` configuration runs on.
* :mod:`repro.core.incremental` — the incremental EM update applied between
  full re-runs (Section III-D).
* :mod:`repro.core.accuracy` — accuracy estimation for hypothetical
  assignments (Equations 15–20, Lemmas 1–2).
* :mod:`repro.core.accuracy_kernel` — the vectorised (batched NumPy) ΔAcc
  scoring kernels the default AccOpt ``engine="vectorized"`` runs on.
* :mod:`repro.core.assignment` — the :class:`TaskAssigner` interface shared by
  every assignment strategy (the AccOpt implementation itself lives in
  :mod:`repro.assign.accopt`).
"""

from repro.core.distance_functions import (
    BellShapedFunction,
    DistanceFunctionSet,
    PAPER_FUNCTION_SET,
)
from repro.core.params import (
    ArrayParameterStore,
    ModelParameters,
    TaskParameters,
    WorkerParameters,
)
from repro.core.em_kernel import AnswerTensor
from repro.core.inference import (
    EM_ENGINES,
    InferenceConfig,
    InferenceResult,
    LocationAwareInference,
)
from repro.core.incremental import IncrementalUpdater
from repro.core.accuracy import AccuracyEstimator, LabelAccuracy
from repro.core.assignment import TaskAssigner


def __getattr__(name: str):
    # Legacy re-export; resolved lazily to avoid a core -> assign import cycle.
    if name == "AccOptAssigner":
        from repro.assign.accopt import AccOptAssigner

        return AccOptAssigner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BellShapedFunction",
    "DistanceFunctionSet",
    "PAPER_FUNCTION_SET",
    "AnswerTensor",
    "ArrayParameterStore",
    "ModelParameters",
    "WorkerParameters",
    "TaskParameters",
    "EM_ENGINES",
    "InferenceConfig",
    "InferenceResult",
    "LocationAwareInference",
    "IncrementalUpdater",
    "AccuracyEstimator",
    "LabelAccuracy",
    "TaskAssigner",
    "AccOptAssigner",
]
