"""Bell-shaped distance quality functions and the distance-function set.

The paper (Definition 3) models the probability of a qualified worker answering
correctly as a function of the normalised worker-to-POI distance ``d``::

    f_λ(d) = (1 + exp(-λ · d²)) / 2

The function starts at 1 for ``d = 0``, decays towards 0.5 (random guessing)
as ``d`` grows, and the rate of decay is controlled by ``λ``.  Rather than
learning a continuous ``λ`` (which has no closed-form EM update), the paper
fixes a small *distance-function set* ``F = {f_λ1, ..., f_λ|F|}`` (Definition 4)
and learns, for each worker and each POI, a multinomial weight vector over the
set.  The paper's experiments use ``F = {f_0.1, f_10, f_100}``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np


@dataclass(frozen=True)
class BellShapedFunction:
    """One bell-shaped quality function ``f_λ(d) = (1 + e^{-λ d²}) / 2``."""

    lam: float

    def __post_init__(self) -> None:
        if self.lam < 0 or not math.isfinite(self.lam):
            raise ValueError(f"lambda must be non-negative and finite, got {self.lam}")

    def __call__(self, distance: float) -> float:
        """Evaluate the function at a normalised distance in ``[0, 1]``."""
        if distance < 0.0 or distance > 1.0:
            raise ValueError(f"distance must be normalised to [0, 1], got {distance}")
        return (1.0 + math.exp(-self.lam * distance * distance)) / 2.0

    def evaluate_many(self, distances: Sequence[float] | np.ndarray) -> np.ndarray:
        """Vectorised evaluation over an array of normalised distances."""
        arr = np.asarray(distances, dtype=float)
        if np.any(arr < 0.0) or np.any(arr > 1.0):
            raise ValueError("all distances must be normalised to [0, 1]")
        return (1.0 + np.exp(-self.lam * arr * arr)) / 2.0


class DistanceFunctionSet:
    """An ordered, immutable set of bell-shaped functions (Definition 4).

    The set is shared by the worker distance-aware quality (``d_w``) and the
    POI influence (``d_t``): both are multinomial distributions over the same
    functions.  Functions are kept sorted by ``λ`` ascending, so index 0 is the
    *flattest* curve (distance barely matters — "global knowledge" / "famous
    POI") and the last index is the *steepest* one ("local knowledge only").
    """

    def __init__(self, lambdas: Sequence[float]) -> None:
        if len(lambdas) == 0:
            raise ValueError("the distance-function set needs at least one function")
        unique = sorted(set(float(lam) for lam in lambdas))
        if len(unique) != len(lambdas):
            raise ValueError(f"lambdas must be distinct, got {list(lambdas)}")
        self._functions = tuple(BellShapedFunction(lam) for lam in unique)

    def __len__(self) -> int:
        return len(self._functions)

    def __iter__(self) -> Iterator[BellShapedFunction]:
        return iter(self._functions)

    def __getitem__(self, index: int) -> BellShapedFunction:
        return self._functions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DistanceFunctionSet):
            return NotImplemented
        return self.lambdas == other.lambdas

    def __hash__(self) -> int:
        return hash(self.lambdas)

    def __repr__(self) -> str:
        return f"DistanceFunctionSet(lambdas={list(self.lambdas)})"

    @property
    def lambdas(self) -> tuple[float, ...]:
        return tuple(fn.lam for fn in self._functions)

    @property
    def flattest_index(self) -> int:
        """Index of the smallest-λ function (quality least affected by distance)."""
        return 0

    @property
    def steepest_index(self) -> int:
        """Index of the largest-λ function (quality most affected by distance)."""
        return len(self._functions) - 1

    def evaluate(self, distance: float) -> np.ndarray:
        """Evaluate every function in the set at ``distance`` (vector of length |F|)."""
        return np.array([fn(distance) for fn in self._functions])

    def evaluate_many(self, distances: Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate the whole set on a batch of distances: an ``(n, |F|)`` matrix.

        Column ``j`` equals ``self[j].evaluate_many(distances)``; the batched
        inference engine calls this once per fit instead of ``n`` times
        :meth:`evaluate`.
        """
        arr = np.asarray(distances, dtype=float)
        if arr.ndim != 1:
            raise ValueError(f"distances must be one-dimensional, got shape {arr.shape}")
        return np.stack([fn.evaluate_many(arr) for fn in self._functions], axis=1)

    def weighted_quality(self, weights: Sequence[float] | np.ndarray, distance: float) -> float:
        """``Σ_i weights[i] · f_λi(distance)`` — Definitions 5 and 6."""
        weights_arr = np.asarray(weights, dtype=float)
        if weights_arr.shape != (len(self._functions),):
            raise ValueError(
                f"weights must have length {len(self._functions)}, got shape "
                f"{weights_arr.shape}"
            )
        return float(np.dot(weights_arr, self.evaluate(distance)))

    def uniform_weights(self) -> np.ndarray:
        """The uniform multinomial over the set (the EM initialisation)."""
        return np.full(len(self._functions), 1.0 / len(self._functions))

    def best_quality_weights(self) -> np.ndarray:
        """All mass on the flattest function.

        This is the paper's footnote-3 prior for brand-new workers and tasks:
        assume the best quality / largest influence so that they are prioritised
        during assignment and their real quality is estimated quickly.
        """
        weights = np.zeros(len(self._functions))
        weights[self.flattest_index] = 1.0
        return weights


#: The function set used throughout the paper's experiments: ``{f_0.1, f_10, f_100}``.
PAPER_FUNCTION_SET = DistanceFunctionSet((0.1, 10.0, 100.0))
