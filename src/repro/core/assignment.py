"""The task-assigner interface shared by every assignment strategy.

Section IV of the paper formulates the optimal task assignment problem: given
the set ``W`` of currently available workers and a per-worker HIT size ``h``,
choose ``A(W)`` maximising the total expected accuracy improvement
``Σ_t Σ_k ΔAcc_{t,k}(Ŵ(t))``.  :class:`TaskAssigner` is the contract every
strategy in :mod:`repro.assign` implements — the paper's AccOpt greedy
algorithm (:class:`~repro.assign.accopt.AccOptAssigner`, which now lives with
the other strategies and scores candidates through the batched
:mod:`repro.core.accuracy_kernel`) as well as the Random, Spatial-First and
Uncertainty-First baselines.

``AccOptAssigner`` is still importable from this module for backwards
compatibility, but its implementation moved to :mod:`repro.assign.accopt`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.params import ModelParameters
from repro.data.models import AnswerSet, Task, Worker


class TaskAssigner(ABC):
    """A strategy that assigns ``h`` tasks to each available worker.

    Implementations must never assign a task the worker has already answered
    (the platform refuses duplicate completions) and must not assign the same
    task twice to one worker within a single call.
    """

    def __init__(self, tasks: list[Task], workers: list[Worker]) -> None:
        if not tasks:
            raise ValueError("an assigner needs at least one task")
        if not workers:
            raise ValueError("an assigner needs at least one worker")
        self._tasks = {task.task_id: task for task in tasks}
        self._workers = {worker.worker_id: worker for worker in workers}
        self._excluded_workers: frozenset[str] = frozenset()

    @property
    def tasks(self) -> dict[str, Task]:
        return dict(self._tasks)

    @property
    def workers(self) -> dict[str, Worker]:
        return dict(self._workers)

    # --------------------------------------------------------- open-world growth
    def add_task(self, task: Task) -> bool:
        """Register a task posted after construction (open-world arrival).

        Returns ``True`` if the task was new.  Strategies that precompute
        task-side structures extend them via the :meth:`_on_task_added` hook.
        """
        if task.task_id in self._tasks:
            return False
        self._tasks[task.task_id] = task
        self._on_task_added(task)
        return True

    def add_worker(self, worker: Worker) -> bool:
        """Register a worker who joined after construction (open-world arrival)."""
        if worker.worker_id in self._workers:
            return False
        self._workers[worker.worker_id] = worker
        self._on_worker_added(worker)
        return True

    def _on_task_added(self, task: Task) -> None:
        """Hook for strategies with task-side caches; default no-op."""

    def _on_worker_added(self, worker: Worker) -> None:
        """Hook for strategies with worker-side caches; default no-op."""

    def update_parameters(self, parameters: ModelParameters) -> None:
        """Receive the latest inference parameters.

        The default is a no-op; quality-aware assigners (AccOpt) override it.
        The framework calls this after every inference update so the assigner
        always works with fresh worker qualities and POI influences.
        """

    # -------------------------------------------------------- trust exclusion
    @property
    def excluded_workers(self) -> frozenset[str]:
        """Workers currently barred from receiving assignments."""
        return self._excluded_workers

    def set_excluded_workers(self, worker_ids) -> None:
        """Replace the set of workers this assigner must not assign to.

        The serving layer pushes quarantined workers here whenever the
        reputation tiers change; excluded workers passed to :meth:`assign`
        receive an empty HIT instead of raising, so a request racing a
        quarantine transition degrades gracefully.
        """
        self._excluded_workers = frozenset(worker_ids)

    def _assignable_workers(self, available_workers: Sequence[str]) -> list[str]:
        """``available_workers`` minus the excluded set, order preserved."""
        if not self._excluded_workers:
            return list(available_workers)
        return [w for w in available_workers if w not in self._excluded_workers]

    @abstractmethod
    def assign(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        """Return ``{worker_id: [task_id, ...]}`` with up to ``h`` tasks per worker."""

    # ------------------------------------------------------------ shared helpers
    def _validate_request(self, available_workers: Sequence[str], h: int) -> None:
        if h <= 0:
            raise ValueError(f"h must be positive, got {h}")
        unknown = [w for w in available_workers if w not in self._workers]
        if unknown:
            raise KeyError(f"unknown workers requested tasks: {unknown}")
        if len(set(available_workers)) != len(available_workers):
            raise ValueError("available_workers must not contain duplicates")

    def _candidate_tasks(self, worker_id: str, answers: AnswerSet) -> list[str]:
        """Tasks the worker has not answered yet, in deterministic order."""
        done = answers.tasks_of_worker(worker_id)
        return [task_id for task_id in sorted(self._tasks) if task_id not in done]


def __getattr__(name: str):
    # Legacy import path: the AccOpt implementation moved to repro.assign.accopt,
    # imported lazily here to avoid a core -> assign import cycle.
    if name == "AccOptAssigner":
        from repro.assign.accopt import AccOptAssigner

        return AccOptAssigner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
