"""Task assignment: the common assigner interface and the AccOpt greedy algorithm.

Section IV of the paper formulates the optimal task assignment problem: given
the set ``W`` of currently available workers and a per-worker HIT size ``h``,
choose ``A(W)`` maximising the total expected accuracy improvement
``Σ_t Σ_k ΔAcc_{t,k}(Ŵ(t))``.  The exact problem is NP-hard (Lemma 3), so the
paper uses the greedy Algorithm 1: repeatedly pick the (worker, task) pair with
the largest marginal ΔAcc, update the affected task's hypothetical accuracy via
Lemma 2's recursion, and stop when every worker has ``h`` tasks.

:class:`TaskAssigner` is the interface shared with the Random and Spatial-First
baselines in :mod:`repro.assign`; :class:`AccOptAssigner` is the paper's
algorithm.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from typing import Sequence

from repro.core.accuracy import AccuracyEstimator, LabelAccuracy
from repro.core.params import ModelParameters
from repro.data.models import AnswerSet, Task, Worker
from repro.spatial.distance import DistanceModel


class TaskAssigner(ABC):
    """A strategy that assigns ``h`` tasks to each available worker.

    Implementations must never assign a task the worker has already answered
    (the platform refuses duplicate completions) and must not assign the same
    task twice to one worker within a single call.
    """

    def __init__(self, tasks: list[Task], workers: list[Worker]) -> None:
        if not tasks:
            raise ValueError("an assigner needs at least one task")
        if not workers:
            raise ValueError("an assigner needs at least one worker")
        self._tasks = {task.task_id: task for task in tasks}
        self._workers = {worker.worker_id: worker for worker in workers}

    @property
    def tasks(self) -> dict[str, Task]:
        return dict(self._tasks)

    @property
    def workers(self) -> dict[str, Worker]:
        return dict(self._workers)

    def update_parameters(self, parameters: ModelParameters) -> None:
        """Receive the latest inference parameters.

        The default is a no-op; quality-aware assigners (AccOpt) override it.
        The framework calls this after every inference update so the assigner
        always works with fresh worker qualities and POI influences.
        """

    @abstractmethod
    def assign(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        """Return ``{worker_id: [task_id, ...]}`` with up to ``h`` tasks per worker."""

    # ------------------------------------------------------------ shared helpers
    def _validate_request(self, available_workers: Sequence[str], h: int) -> None:
        if h <= 0:
            raise ValueError(f"h must be positive, got {h}")
        unknown = [w for w in available_workers if w not in self._workers]
        if unknown:
            raise KeyError(f"unknown workers requested tasks: {unknown}")
        if len(set(available_workers)) != len(available_workers):
            raise ValueError("available_workers must not contain duplicates")

    def _candidate_tasks(self, worker_id: str, answers: AnswerSet) -> list[str]:
        """Tasks the worker has not answered yet, in deterministic order."""
        done = answers.tasks_of_worker(worker_id)
        return [task_id for task_id in sorted(self._tasks) if task_id not in done]


class AccOptAssigner(TaskAssigner):
    """The paper's greedy accuracy-optimal assigner (Algorithm 1).

    The assigner consumes the latest :class:`~repro.core.params.ModelParameters`
    (worker qualities, POI influences, label probabilities) via
    :meth:`update_parameters` and greedily maximises the expected accuracy
    improvement of the batch.

    Complexity matches the paper: ``O(|W|·|T|·|L| + h·|W|²·|L|)`` per batch — the
    initial scoring of every (worker, task) pair dominates, and each greedy pick
    only re-scores the chosen task for the remaining workers.
    """

    def __init__(
        self,
        tasks: list[Task],
        workers: list[Worker],
        distance_model: DistanceModel,
        parameters: ModelParameters | None = None,
    ) -> None:
        super().__init__(tasks, workers)
        self._distance_model = distance_model
        self._parameters = parameters or ModelParameters()

    @property
    def parameters(self) -> ModelParameters:
        return self._parameters

    def update_parameters(self, parameters: ModelParameters) -> None:
        self._parameters = parameters

    def assign(
        self, available_workers: Sequence[str], h: int, answers: AnswerSet
    ) -> dict[str, list[str]]:
        self._validate_request(available_workers, h)
        estimator = AccuracyEstimator(
            tasks=self._tasks,
            workers=self._workers,
            distance_model=self._distance_model,
            parameters=self._parameters,
            answers=answers,
        )

        assignment: dict[str, list[str]] = {w: [] for w in available_workers}
        if not available_workers:
            return assignment

        # Per-task baseline accuracy pairs (Equation 15) and the evolving state
        # reflecting the workers tentatively assigned this round (Ŵ(t)).
        baselines: dict[str, list[LabelAccuracy]] = {}
        current_states: dict[str, list[LabelAccuracy]] = {}
        assigned_workers_per_task: dict[str, set[str]] = {}

        # Cache of estimated answer accuracies P(z = r_w) per (worker, task).
        answer_accuracy: dict[tuple[str, str], float] = {}

        def states_for(task_id: str) -> list[LabelAccuracy]:
            if task_id not in baselines:
                base = estimator.current_label_accuracies(task_id)
                baselines[task_id] = base
                current_states[task_id] = list(base)
                assigned_workers_per_task[task_id] = set()
            return current_states[task_id]

        def improvement_for(worker_id: str, task_id: str) -> tuple[float, list[LabelAccuracy]]:
            key = (worker_id, task_id)
            if key not in answer_accuracy:
                answer_accuracy[key] = estimator.answer_accuracy(worker_id, task_id)
            states = states_for(task_id)
            new_states = [state.add_worker(answer_accuracy[key]) for state in states]
            gain = sum(
                new.expected_improvement_over(base)
                for new, base in zip(new_states, baselines[task_id])
            )
            # Subtract the gain already banked by previously selected workers so
            # the heap ranks *marginal* improvements, as line 19 of Algorithm 1.
            already = sum(
                state.expected_improvement_over(base)
                for state, base in zip(states, baselines[task_id])
            )
            return gain - already, new_states

        # Candidate tasks per worker (tasks not yet answered by that worker).
        candidates: dict[str, set[str]] = {
            worker_id: set(self._candidate_tasks(worker_id, answers))
            for worker_id in available_workers
        }

        # Max-heap of (-marginal_gain, version, worker, task).  Entries are lazily
        # invalidated: whenever a task receives a new tentative worker its version
        # bumps and stale heap entries are discarded on pop.
        task_version: dict[str, int] = {}
        heap: list[tuple[float, int, str, str]] = []

        def push(worker_id: str, task_id: str) -> None:
            gain, _ = improvement_for(worker_id, task_id)
            version = task_version.get(task_id, 0)
            heapq.heappush(heap, (-gain, version, worker_id, task_id))

        for worker_id in available_workers:
            for task_id in candidates[worker_id]:
                push(worker_id, task_id)

        remaining_capacity = {worker_id: h for worker_id in available_workers}
        total_to_assign = sum(
            min(h, len(candidates[worker_id])) for worker_id in available_workers
        )
        assigned_total = 0

        while assigned_total < total_to_assign and heap:
            neg_gain, version, worker_id, task_id = heapq.heappop(heap)
            if remaining_capacity[worker_id] <= 0:
                continue
            if task_id not in candidates[worker_id]:
                continue
            if version != task_version.get(task_id, 0):
                # Stale entry: the task's tentative worker set changed since this
                # gain was computed — recompute and reinsert.
                push(worker_id, task_id)
                continue

            # Commit the pick.
            _, new_states = improvement_for(worker_id, task_id)
            current_states[task_id] = new_states
            assigned_workers_per_task.setdefault(task_id, set()).add(worker_id)
            task_version[task_id] = task_version.get(task_id, 0) + 1

            assignment[worker_id].append(task_id)
            candidates[worker_id].discard(task_id)
            remaining_capacity[worker_id] -= 1
            assigned_total += 1

        return assignment
