"""Validation helpers for probabilities and probability vectors.

The inference model manipulates many small probability vectors (label truth,
worker inherent quality, multinomial weights over the distance-function set).
These helpers centralise the numeric hygiene: clipping away floating-point
drift, normalising, and raising informative errors on genuinely invalid input.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

#: Tolerance used when checking that values lie in [0, 1] or that vectors sum to 1.
PROBABILITY_TOLERANCE = 1e-9

#: Floor applied when normalising to avoid exact zeros that would freeze EM weights.
PROBABILITY_FLOOR = 1e-12


def check_probability(value: float, name: str = "probability") -> float:
    """Validate that ``value`` is a probability and return it clipped to [0, 1].

    Values outside the range by more than :data:`PROBABILITY_TOLERANCE` raise a
    ``ValueError``; tiny floating-point overshoots are clipped silently.
    """
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if value < -PROBABILITY_TOLERANCE or value > 1.0 + PROBABILITY_TOLERANCE:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return float(min(1.0, max(0.0, value)))


def check_probability_vector(
    values: Sequence[float] | np.ndarray, name: str = "distribution"
) -> np.ndarray:
    """Validate that ``values`` is a finite non-negative vector summing to one."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {arr!r}")
    if np.any(arr < -PROBABILITY_TOLERANCE):
        raise ValueError(f"{name} must be non-negative, got {arr!r}")
    total = float(arr.sum())
    if abs(total - 1.0) > 1e-6:
        raise ValueError(f"{name} must sum to 1, got sum {total!r}")
    return np.clip(arr, 0.0, 1.0)


def normalise(values: Iterable[float] | np.ndarray) -> np.ndarray:
    """Normalise non-negative ``values`` into a probability vector.

    An all-zero (or numerically vanishing) input is mapped to the uniform
    distribution rather than raising, because this is exactly the degenerate
    situation EM can produce on its first iteration with no informative answers.
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values,
                     dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"values must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError("cannot normalise an empty vector")
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise ValueError(f"values must be finite and non-negative, got {arr!r}")
    total = arr.sum()
    if total <= PROBABILITY_FLOOR:
        return np.full(arr.size, 1.0 / arr.size)
    return arr / total


def clamp_probability(value: float, floor: float = PROBABILITY_FLOOR) -> float:
    """Clamp ``value`` into the open interval (floor, 1 - floor).

    EM updates divide by probabilities; keeping them strictly inside (0, 1)
    avoids divisions by zero and log-of-zero without changing results by more
    than the floor.
    """
    return float(min(1.0 - floor, max(floor, value)))
