"""Shared utilities: seeded random-number helpers, validation and binning."""

from repro.utils.rng import default_rng, spawn_rng
from repro.utils.validation import (
    check_probability,
    check_probability_vector,
    normalise,
)
from repro.utils.binning import bin_edges, bin_index, histogram_percentages
from repro.utils.timing import Timer

__all__ = [
    "default_rng",
    "spawn_rng",
    "check_probability",
    "check_probability_vector",
    "normalise",
    "bin_edges",
    "bin_index",
    "histogram_percentages",
    "Timer",
]
