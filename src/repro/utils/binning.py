"""Binning helpers used by the analysis modules (Figures 6-8 of the paper).

The paper's data analysis bins answers by distance into 0.2-wide ranges and
bins per-worker accuracies into 20-percentage-point ranges.  These helpers keep
that logic in one place and make the edge cases (values exactly on an edge,
values at the maximum) explicit and tested.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def bin_edges(low: float, high: float, count: int) -> np.ndarray:
    """Return ``count + 1`` equally spaced edges covering ``[low, high]``."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if high <= low:
        raise ValueError(f"high ({high}) must exceed low ({low})")
    return np.linspace(low, high, count + 1)


def bin_index(value: float, edges: Sequence[float] | np.ndarray) -> int:
    """Return the index of the bin containing ``value``.

    Bins are half-open ``[edge[i], edge[i+1])`` except the last bin which is
    closed so the maximum value falls into the final bin.  Values outside the
    covered range raise ``ValueError``.
    """
    edges_arr = np.asarray(edges, dtype=float)
    if edges_arr.ndim != 1 or edges_arr.size < 2:
        raise ValueError("edges must contain at least two values")
    low, high = float(edges_arr[0]), float(edges_arr[-1])
    if value < low or value > high:
        raise ValueError(f"value {value} outside binned range [{low}, {high}]")
    if value == high:
        return edges_arr.size - 2
    idx = int(np.searchsorted(edges_arr, value, side="right") - 1)
    return idx


def histogram_percentages(
    values: Sequence[float] | np.ndarray, edges: Sequence[float] | np.ndarray
) -> np.ndarray:
    """Histogram ``values`` over ``edges`` and return per-bin percentages.

    This is the presentation used in the paper's Figure 6 (percentage of workers
    per accuracy range).  An empty input returns an all-zero vector.
    """
    edges_arr = np.asarray(edges, dtype=float)
    n_bins = edges_arr.size - 1
    if n_bins < 1:
        raise ValueError("edges must define at least one bin")
    values_arr = np.asarray(values, dtype=float)
    if values_arr.size == 0:
        return np.zeros(n_bins)
    counts = np.zeros(n_bins)
    for value in values_arr:
        counts[bin_index(float(value), edges_arr)] += 1
    return counts * 100.0 / values_arr.size


def mean_by_bin(
    keys: Sequence[float] | np.ndarray,
    values: Sequence[float] | np.ndarray,
    edges: Sequence[float] | np.ndarray,
) -> list[float | None]:
    """Average ``values`` grouped by the bin of the corresponding ``keys``.

    Returns one entry per bin; bins with no observations yield ``None`` so that
    callers can distinguish "no data" from "average of zero" when reproducing
    the distance-bucketed accuracy curves of Figures 7 and 8.
    """
    keys_arr = np.asarray(keys, dtype=float)
    values_arr = np.asarray(values, dtype=float)
    if keys_arr.shape != values_arr.shape:
        raise ValueError(
            f"keys and values must align, got {keys_arr.shape} vs {values_arr.shape}"
        )
    edges_arr = np.asarray(edges, dtype=float)
    n_bins = edges_arr.size - 1
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    for key, value in zip(keys_arr, values_arr):
        idx = bin_index(float(key), edges_arr)
        sums[idx] += value
        counts[idx] += 1
    return [float(sums[i] / counts[i]) if counts[i] else None for i in range(n_bins)]
