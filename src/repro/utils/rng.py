"""Deterministic random-number generation helpers.

Every stochastic component in the library (dataset generators, the worker pool,
the arrival process, the answer model and the random assigner) takes either a
seed or an already-constructed :class:`numpy.random.Generator`.  Centralising
the conversion here keeps experiments reproducible: the same seed always yields
the same crowd, the same arrivals and therefore the same answer log.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def default_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from ``seed``.

    ``seed`` may be ``None`` (non-deterministic), an integer, or an existing
    generator, in which case it is returned unchanged so that callers can share
    a single stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Independent streams let components (e.g. each simulated worker) draw random
    numbers without the order of calls in one component perturbing another.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: Optional[int], salt: int) -> Optional[int]:
    """Derive a child seed from ``seed`` and an integer ``salt``.

    Returns ``None`` when ``seed`` is ``None`` so non-deterministic behaviour is
    preserved.  The mixing constant is the 64-bit golden-ratio increment used by
    splitmix64, which gives well-spread child seeds for consecutive salts.
    """
    if seed is None:
        return None
    mixed = (seed * 0x9E3779B97F4A7C15 + salt * 0xBF58476D1CE4E5B9) % (2**63 - 1)
    return int(mixed)
