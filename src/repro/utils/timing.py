"""A small wall-clock timer used by the scalability experiments (Figs 12-14)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Accumulating wall-clock timer usable as a context manager.

    Example::

        timer = Timer()
        with timer:
            run_inference()
        print(timer.elapsed_ms)
    """

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("timer is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("timer was not started")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def split(self) -> float:
        """Return the current lap reading without stopping the timer.

        The reading is ``elapsed`` plus the time accrued since the last
        :meth:`start`; the timer keeps running, so successive calls give
        monotonically non-decreasing lap values.
        """
        if self._started_at is None:
            return self.elapsed
        return self.elapsed + (time.perf_counter() - self._started_at)

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    @property
    def elapsed_ms(self) -> float:
        return self.elapsed * 1000.0

    def __enter__(self) -> "Timer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Stop only if still running: the block may have stopped the timer
        # itself, and raising from __exit__ would mask the block's exception.
        if self._started_at is not None:
            self.stop()
