"""Event validation and quarantine: crowd input is untrusted by construction.

Everything the EM kernel consumes arrives over the open submission surface,
and one malformed event deep inside a micro-batch used to surface as a bare
``KeyError``/``ValueError`` mid-flush — killing the whole serving loop for
one bad submission.  :class:`EventGuard` moves that validation to the intake
boundary: :meth:`EventGuard.admit` inspects every
:class:`~repro.serving.ingest.AnswerEvent` *before* it touches the journal or
the buffer and either accepts it or files it into a bounded in-memory
quarantine log (optionally mirrored to a JSONL sink) under a per-reason
counter, without raising.

Rejection reasons (the keys of :attr:`GuardStats.reasons`):

``coordinates``
    A first-sight worker/task payload carries a non-finite coordinate or one
    outside :attr:`GuardConfig.coordinate_bounds`.
``unknown-worker`` / ``unknown-task``
    The answer references an entity the model does not know and the event
    carries no payload to register it — the exact condition that previously
    raised ``KeyError`` inside the flush.
``payload-mismatch``
    The event's payload id contradicts the answer's worker/task id.
``label-arity``
    The answer's response vector length does not match the task's label count.
``duplicate``
    The identical ``(worker, task, responses)`` submission was already
    accepted — replays add no information and skew rate accounting.
``reanswer``
    A changed re-answer for an already-answered pair while
    :attr:`GuardConfig.allow_reanswers` is off.
``rate-limit``
    The worker exceeded :attr:`GuardConfig.max_answers_per_window` accepted
    answers inside the trailing :attr:`GuardConfig.rate_window` simulated
    seconds (0 disables the check).
``reputation``
    The submitting worker is currently quarantined by the
    :class:`ReputationTracker` — its new answers are rejected at intake
    (and therefore never journaled, keeping crash replay deterministic).

:meth:`EventGuard.observe` records an event into the duplicate/rate history
*without* validating — used when replaying journal events that were already
admitted before a crash, so recovery never re-litigates (and never drops)
history the crashed run accepted.  Replayed events update the same
``inspected``/``accepted`` counters as live traffic, and the per-worker
rate-history deques are pruned to the trailing window on every append
(amortized O(evicted) — history can never grow unbounded on the accept or
replay path).

:class:`ReputationTracker` sits one level above the per-event checks: it is
fed worker-accuracy posteriors (the model's ``p_qualified``) after each
refresh and walks each worker through hysteresis tiers — ``trusted`` →
``probation`` → ``quarantined`` — with streak-based patience in both
directions, so one noisy posterior estimate neither quarantines an honest
worker nor re-admits a spammer.
"""

from __future__ import annotations

import json
import math

import numpy as np
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.data.models import AnswerSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.inference import LocationAwareInference
    from repro.obs.metrics import MetricsRegistry
    from repro.serving.ingest import AnswerEvent


@dataclass
class GuardConfig:
    """Validation policy of one :class:`EventGuard`."""

    #: ``(min_x, min_y, max_x, max_y)`` accepted for payload coordinates;
    #: ``None`` only checks finiteness.
    coordinate_bounds: tuple[float, float, float, float] | None = None
    #: Whether a changed re-answer of an answered pair is accepted (identical
    #: resubmissions are always quarantined as duplicates).
    allow_reanswers: bool = True
    #: Accepted answers allowed per worker inside ``rate_window``; 0 disables.
    max_answers_per_window: int = 0
    #: Trailing window (simulated seconds) for the rate check.
    rate_window: float = 60.0
    #: Quarantined events retained in memory, newest last.
    quarantine_capacity: int = 256
    #: Optional JSONL file every quarantined event is appended to.
    quarantine_sink: str | Path | None = None

    def __post_init__(self) -> None:
        if self.coordinate_bounds is not None:
            min_x, min_y, max_x, max_y = self.coordinate_bounds
            if not (min_x < max_x and min_y < max_y):
                raise ValueError(
                    f"coordinate_bounds must be (min_x, min_y, max_x, max_y) "
                    f"with positive extent, got {self.coordinate_bounds}"
                )
        if self.max_answers_per_window < 0:
            raise ValueError(
                f"max_answers_per_window must be non-negative, "
                f"got {self.max_answers_per_window}"
            )
        if self.rate_window <= 0:
            raise ValueError(f"rate_window must be positive, got {self.rate_window}")
        if self.quarantine_capacity <= 0:
            raise ValueError(
                f"quarantine_capacity must be positive, got {self.quarantine_capacity}"
            )


@dataclass(frozen=True)
class QuarantinedEvent:
    """One rejected submission with its reason and diagnostic detail."""

    event: "AnswerEvent"
    reason: str
    detail: str


@dataclass
class GuardStats:
    """Counters of one :class:`EventGuard`."""

    inspected: int = 0
    accepted: int = 0
    quarantined: int = 0
    reasons: dict[str, int] = field(default_factory=dict)


class EventGuard:
    """Admits or quarantines answer events at the ingestion boundary."""

    def __init__(
        self,
        config: GuardConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self._config = config or GuardConfig()
        self._metrics = metrics
        self._stats = GuardStats()
        self._quarantine: deque[QuarantinedEvent] = deque(
            maxlen=self._config.quarantine_capacity
        )
        # Accepted history: responses per answered pair (duplicate detection)
        # and accept times per worker (rate anomaly detection).
        self._seen_responses: dict[tuple[str, str], tuple[int, ...]] = {}
        self._accept_times: dict[str, deque[float]] = {}

    # ------------------------------------------------------------------ state
    @property
    def config(self) -> GuardConfig:
        return self._config

    @property
    def stats(self) -> GuardStats:
        return self._stats

    @property
    def quarantine(self) -> list[QuarantinedEvent]:
        """The retained quarantined events, oldest first (bounded)."""
        return list(self._quarantine)

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Mirror accept/quarantine counters into ``metrics`` from now on."""
        self._metrics = metrics

    # ----------------------------------------------------------------- intake
    def admit(
        self, event: "AnswerEvent", inference: "LocationAwareInference"
    ) -> str | None:
        """Validate ``event``; return ``None`` to accept or the rejection reason.

        A rejected event is recorded in the quarantine log and the per-reason
        counters — never raised.  Accepted events enter the duplicate/rate
        history.
        """
        self._stats.inspected += 1
        verdict = self._inspect(event, inference)
        if verdict is not None:
            reason, detail = verdict
            self._quarantine_event(event, reason, detail)
            return reason
        self._stats.accepted += 1
        if self._metrics is not None:
            self._metrics.counter("guard_accepted_total").inc()
        self._record_history(event)
        return None

    def reject(self, event: "AnswerEvent", reason: str, detail: str) -> None:
        """File ``event`` into quarantine under ``reason`` without inspecting it.

        Used by policy layers above the per-event checks (e.g. the
        :class:`ReputationTracker` rejecting a quarantined worker's new
        submissions) so their rejections land in the same counters, bounded
        log and JSONL sink as the guard's own.
        """
        self._stats.inspected += 1
        self._quarantine_event(event, reason, detail)

    def observe(self, event: "AnswerEvent") -> None:
        """Record an already-admitted event into the history (no validation).

        The crash-recovery replay path: journal records were validated before
        the crash, so replay must update the duplicate/rate history without
        being able to reject them.  It still counts: an event the crashed run
        inspected and accepted is inspected and accepted again on replay, so
        the recovered guard's counters match the uncrashed run's.
        """
        self._stats.inspected += 1
        self._stats.accepted += 1
        self._record_history(event)

    def seed_history(self, answers: AnswerSet | list) -> None:
        """Seed the duplicate history from a restored answer log.

        Every seeded answer was inspected and accepted by the run that
        checkpointed it, so the counters advance exactly as live traffic
        would have advanced them.
        """
        for answer in answers:
            self._stats.inspected += 1
            self._stats.accepted += 1
            self._seen_responses[(answer.worker_id, answer.task_id)] = answer.responses

    def restore_quarantine_stats(self, reasons: dict[str, int]) -> None:
        """Restore checkpointed per-reason quarantine counters after recovery.

        Quarantined events are never journaled, so replay cannot reconstruct
        them; the checkpoint carries the reason counters instead.  Each
        restored rejection was also an inspection, so ``inspected`` advances
        by the restored total alongside ``quarantined``.
        """
        for reason, count in reasons.items():
            count = int(count)
            if count <= 0:
                continue
            self._stats.reasons[reason] = self._stats.reasons.get(reason, 0) + count
            self._stats.quarantined += count
            self._stats.inspected += count

    def _record_history(self, event: "AnswerEvent") -> None:
        """Append ``event`` to the duplicate/rate history, pruning the window.

        Pruning happens at append time with the same trailing-window popleft
        loop the rate check uses, so each history entry is evicted at most
        once — amortized O(evicted) per observation, and the per-worker deque
        is bounded by the answers accepted inside one window even for workers
        that are never rate-checked again.
        """
        answer = event.answer
        self._seen_responses[(answer.worker_id, answer.task_id)] = answer.responses
        if self._config.max_answers_per_window > 0:
            times = self._accept_times.setdefault(answer.worker_id, deque())
            times.append(event.time)
            window = self._config.rate_window
            while times and event.time - times[0] > window:
                times.popleft()

    # --------------------------------------------------------------- internal
    def _inspect(
        self, event: "AnswerEvent", inference: "LocationAwareInference"
    ) -> tuple[str, str] | None:
        answer = event.answer
        config = self._config

        coords = self._payload_coordinate_issue(event)
        if coords is not None:
            return "coordinates", coords

        if event.task is not None and event.task.task_id != answer.task_id:
            return (
                "payload-mismatch",
                f"task payload {event.task.task_id!r} vs answer task "
                f"{answer.task_id!r}",
            )
        if event.worker is not None and event.worker.worker_id != answer.worker_id:
            return (
                "payload-mismatch",
                f"worker payload {event.worker.worker_id!r} vs answer worker "
                f"{answer.worker_id!r}",
            )

        task = inference._tasks.get(answer.task_id)
        if task is None:
            if event.task is None:
                return (
                    "unknown-task",
                    f"task {answer.task_id!r} is unknown and the event carries "
                    "no payload",
                )
            task = event.task
        if answer.worker_id not in inference._workers and event.worker is None:
            return (
                "unknown-worker",
                f"worker {answer.worker_id!r} is unknown and the event carries "
                "no payload",
            )

        if answer.num_labels != task.num_labels:
            return (
                "label-arity",
                f"{answer.num_labels} responses for task {answer.task_id!r} "
                f"with {task.num_labels} labels",
            )

        previous = self._seen_responses.get((answer.worker_id, answer.task_id))
        if previous is not None:
            if previous == answer.responses:
                return (
                    "duplicate",
                    f"identical resubmission of ({answer.worker_id!r}, "
                    f"{answer.task_id!r})",
                )
            if not config.allow_reanswers:
                return (
                    "reanswer",
                    f"changed re-answer of ({answer.worker_id!r}, "
                    f"{answer.task_id!r}) with re-answers disabled",
                )

        if config.max_answers_per_window > 0:
            times = self._accept_times.get(answer.worker_id)
            if times is not None:
                while times and event.time - times[0] > config.rate_window:
                    times.popleft()
                if len(times) >= config.max_answers_per_window:
                    return (
                        "rate-limit",
                        f"worker {answer.worker_id!r} exceeded "
                        f"{config.max_answers_per_window} answers per "
                        f"{config.rate_window:g} s",
                    )
        return None

    def _payload_coordinate_issue(self, event: "AnswerEvent") -> str | None:
        bounds = self._config.coordinate_bounds
        points = []
        if event.worker is not None:
            points.extend(
                (f"worker {event.worker.worker_id!r}", loc)
                for loc in event.worker.locations
            )
        if event.task is not None:
            points.append((f"task {event.task.task_id!r}", event.task.location))
        for origin, point in points:
            x, y = float(point.x), float(point.y)
            if not (math.isfinite(x) and math.isfinite(y)):
                return f"{origin} has a non-finite coordinate ({x}, {y})"
            if bounds is not None:
                min_x, min_y, max_x, max_y = bounds
                if not (min_x <= x <= max_x and min_y <= y <= max_y):
                    return (
                        f"{origin} coordinate ({x:g}, {y:g}) lies outside "
                        f"bounds {bounds}"
                    )
        return None

    def _quarantine_event(self, event: "AnswerEvent", reason: str, detail: str) -> None:
        self._stats.quarantined += 1
        self._stats.reasons[reason] = self._stats.reasons.get(reason, 0) + 1
        if self._metrics is not None:
            self._metrics.counter("guard_quarantined_total", reason=reason).inc()
        entry = QuarantinedEvent(event=event, reason=reason, detail=detail)
        self._quarantine.append(entry)
        sink = self._config.quarantine_sink
        if sink is not None:
            answer = event.answer
            record = {
                "reason": reason,
                "detail": detail,
                "time": event.time,
                "worker_id": answer.worker_id,
                "task_id": answer.task_id,
                "responses": list(answer.responses),
            }
            with open(Path(sink), "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")


# --------------------------------------------------------------------- trust
#: The hysteresis ladder, best to worst.  Workers start (implicitly) trusted.
TRUST_TIERS = ("trusted", "probation", "quarantined")

#: Label posteriors closer than this to 0.5 are too uncertain to count as
#: agreement evidence — early-stream labels stay out of the trust score until
#: the crowd has firmed them up.
TRUST_FIRM_MARGIN = 0.2

#: Minimum number of *other* workers' votes on a label cell before the cell
#: can serve as trust evidence — a leave-one-out majority over fewer voters
#: is too noisy to judge anyone by.
TRUST_MIN_VOTES = 3

#: Reference accuracy curve of an honest worker at worker-task distance ``d``:
#: ``floor + (peak - floor) * exp(-decay * d**2)``.  The *peak* is the
#: near-task accuracy any qualified profile reaches (every bell function
#: starts at 1; simulator noise keeps it just below that).  The *floor* is
#: exactly 0.5, which makes far rows contribute *zero* log-likelihood ratio
#: by construction: far from a task, a purely local honest profile and an
#: adversarial coin are statistically identical under the paper's
#: bell-function family, so far-task agreement must carry no evidence either
#: way — judging on it is what quarantines honest local workers.  All
#: discrimination therefore rests on near-task rows, which the frontend's
#: trust probes guarantee every worker keeps receiving.  The decay tracks
#: the worst-honest envelope — quality floor times the steepest member of
#: the distance-function family: the reference must be a hypothesis no
#: honest profile systematically underperforms at any distance, or
#: purely-local honest workers accumulate false negative evidence at
#: middling distances.  Steeper decays are safer still for honest workers
#: but discard the mid-distance rows that expose lucky coins.
TRUST_REFERENCE_PEAK = 0.94
TRUST_REFERENCE_FLOOR = 0.5
TRUST_REFERENCE_DECAY = 60.0


def trust_scores(
    tensor,
    firm_margin: float = TRUST_FIRM_MARGIN,
    min_votes: int = TRUST_MIN_VOTES,
    excluded=(),
) -> np.ndarray:
    """Posterior that each worker is honest, from leave-one-out agreement.

    A product-form likelihood-ratio test per worker: every label response is
    judged against the *other* workers' majority vote on the same label cell.
    Cells where the leave-one-out vote share is firm (at least ``min_votes``
    other voters, majority share further than ``firm_margin`` from 0.5)
    contribute the log-ratio of "answered like an honest worker" against
    "answered like an adversarial coin"; soft cells contribute nothing.  The
    honest hypothesis is the distance-decayed reference curve above —
    near-task rows are decisive (an honest worker of *any* profile matches
    the consensus there, a spammer flips coins everywhere), far-task rows
    carry mild evidence.  Summing log-ratios per worker and squashing
    through a sigmoid yields a posterior that separates honest workers
    (→ 1) from coin spammers and label inverters (→ 0) once a few dozen
    firm cells exist.

    Two deliberate non-choices.  The test does **not** reuse the EM's own
    estimates: the mean-form ``p_qualified`` M-step moves glacially near the
    endpoints, and the EM label posterior is weighted by the very
    reliabilities under test — a prolific spammer drags its tasks' posterior
    toward its own answers and then scores perfect "agreement" with labels
    it poisoned.  The leave-one-out majority is immune to both: a worker's
    own answers never vouch for themselves, and no reliability estimate
    amplifies anyone's vote.  (A distance- or log-odds-weighted consensus
    was tried and rejected: concentrating the vote in a handful of near
    voters raises its variance enough to quarantine unlucky honest workers,
    while the flat count keeps every firm cell backed by genuinely
    independent agreement.)

    Pure function of ``tensor`` (an
    :class:`~repro.core.em_kernel.AnswerTensor`) — crash-recovery replays
    recompute identical scores.  Returns one score per tensor worker row.
    """
    num_workers = tensor.num_workers
    if not tensor.num_answers:
        return np.full(num_workers, 0.5)
    responses = tensor.responses.astype(float)
    # Votes from ``excluded`` workers (the currently quarantined set) are
    # struck from the consensus *as voters* — a quarantined coin's answers
    # would keep randomising the very majority used to judge everyone else —
    # while the workers themselves are still scored against the remaining
    # consensus, which keeps their rehabilitation path open.
    voting = np.ones(num_workers)
    if len(excluded):
        excluded_set = set(excluded)
        for row, worker_id in enumerate(tensor.worker_ids):
            if worker_id in excluded_set:
                voting[row] = 0.0
    weight = voting[tensor.r_worker]
    num_cells = int(tensor.r_label.max()) + 1
    votes_one = np.bincount(
        tensor.r_label, weights=responses * weight, minlength=num_cells
    )
    votes_all = np.bincount(tensor.r_label, weights=weight, minlength=num_cells)
    others_all = votes_all[tensor.r_label] - weight
    others_one = votes_one[tensor.r_label] - responses * weight
    share = others_one / np.maximum(others_all, 1.0)
    firm = (others_all >= min_votes) & (np.abs(share - 0.5) >= firm_margin)
    agree = responses == (share > 0.5).astype(float)
    distances = tensor.distances[tensor.r_answer]
    reference = TRUST_REFERENCE_FLOOR + (
        TRUST_REFERENCE_PEAK - TRUST_REFERENCE_FLOOR
    ) * np.exp(-TRUST_REFERENCE_DECAY * distances * distances)
    llr = np.where(agree, np.log(reference / 0.5), np.log((1.0 - reference) / 0.5))
    log_odds = np.bincount(
        tensor.r_worker,
        weights=np.where(firm, llr, 0.0),
        minlength=num_workers,
    )
    # Clamp before exponentiating; |log_odds| > 60 is already saturated.
    return 1.0 / (1.0 + np.exp(-np.clip(log_odds, -60.0, 60.0)))


@dataclass
class ReputationConfig:
    """Policy of one :class:`ReputationTracker`.

    The three posterior thresholds define the target tier for a worker's
    current ``p_qualified`` estimate; the patience counters demand that many
    *consecutive* evaluations agree before a demotion or promotion actually
    happens (hysteresis), and ``min_answers`` refuses to judge a worker the
    model has barely seen — the footnote-3 cold-start prior is not evidence.
    """

    #: Posterior below which the target tier is ``quarantined``.
    quarantine_below: float = 0.15
    #: Posterior below which the target tier is ``probation``.
    probation_below: float = 0.35
    #: Posterior above which the target tier is ``trusted`` (re-admission).
    #: The gap between ``probation_below`` and ``readmit_above`` is the
    #: hysteresis dead band where a worker holds its current tier.
    readmit_above: float = 0.45
    #: Minimum accepted answers before a worker can be demoted or promoted.
    min_answers: int = 10
    #: Consecutive agreeing evaluations required to demote.
    demote_patience: int = 2
    #: Consecutive agreeing evaluations required to promote.
    promote_patience: int = 2
    #: Exponential smoothing weight on the *previous* smoothed posterior
    #: (0 judges each evaluation's raw score alone).  Trust scores are
    #: recomputed from scratch against the live consensus every evaluation,
    #: and single-evaluation spikes — a few thin vote cells flipping, the
    #: quarantine voter set changing — would otherwise reset patience
    #: streaks; smoothing makes the tracker judge the recent *trend*.
    posterior_smoothing: float = 0.5
    #: Weight applied to a quarantined worker's *historical* answers in full
    #: EM refreshes.  Deliberately nonzero: uniformly scaling one worker's
    #: rows barely moves that worker's own posterior (the ratio survives), so
    #: a falsely quarantined worker's estimate can recover and re-admit them,
    #: while their influence on task label posteriors is sharply reduced.
    quarantined_weight: float = 0.25

    def __post_init__(self) -> None:
        if not 0.0 <= self.quarantine_below <= self.probation_below <= 1.0:
            raise ValueError(
                f"need 0 <= quarantine_below <= probation_below <= 1, got "
                f"{self.quarantine_below} / {self.probation_below}"
            )
        if not self.probation_below <= self.readmit_above <= 1.0:
            raise ValueError(
                f"need probation_below <= readmit_above <= 1, got "
                f"{self.probation_below} / {self.readmit_above}"
            )
        if self.min_answers < 1:
            raise ValueError(f"min_answers must be >= 1, got {self.min_answers}")
        if self.demote_patience < 1 or self.promote_patience < 1:
            raise ValueError(
                f"patience counters must be >= 1, got demote="
                f"{self.demote_patience} promote={self.promote_patience}"
            )
        if not 0.0 <= self.posterior_smoothing < 1.0:
            raise ValueError(
                f"posterior_smoothing must lie in [0, 1), got "
                f"{self.posterior_smoothing}"
            )
        if not 0.0 <= self.quarantined_weight <= 1.0:
            raise ValueError(
                f"quarantined_weight must be in [0, 1], got "
                f"{self.quarantined_weight}"
            )


class ReputationTracker:
    """Walks workers through trust tiers from their accuracy posteriors.

    Fed ``p_qualified`` estimates after each model refresh via
    :meth:`evaluate`; maintains per-worker tier plus demote/promote streak
    counters implementing the hysteresis, and a monotonic :attr:`version`
    that bumps on any transition so consumers (the assignment frontend, the
    ingestor) can cheaply detect that the quarantined set changed.
    """

    def __init__(
        self,
        config: ReputationConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self._config = config or ReputationConfig()
        self._metrics = metrics
        # Only non-trusted workers and active streaks are stored — a worker
        # absent from both dicts is trusted with clean streaks.
        self._tiers: dict[str, str] = {}
        self._demote_streak: dict[str, int] = {}
        self._promote_streak: dict[str, int] = {}
        # Smoothed posterior per worker (see ReputationConfig.posterior_smoothing).
        self._posteriors: dict[str, float] = {}
        self._version = 0
        self._transitions = 0

    # ------------------------------------------------------------------ state
    @property
    def config(self) -> ReputationConfig:
        return self._config

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every tier transition."""
        return self._version

    @property
    def transitions(self) -> int:
        """Total tier transitions ever applied."""
        return self._transitions

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        self._metrics = metrics

    def tier(self, worker_id: str) -> str:
        return self._tiers.get(worker_id, "trusted")

    def is_quarantined(self, worker_id: str) -> bool:
        return self._tiers.get(worker_id) == "quarantined"

    @property
    def quarantined_ids(self) -> frozenset[str]:
        return frozenset(
            worker_id
            for worker_id, tier in self._tiers.items()
            if tier == "quarantined"
        )

    def tier_counts(self) -> dict[str, int]:
        """Count of *tracked* workers per non-trusted tier."""
        counts = {tier: 0 for tier in TRUST_TIERS[1:]}
        for tier in self._tiers.values():
            counts[tier] = counts.get(tier, 0) + 1
        return counts

    def trust_weight(self, worker_id: str) -> float:
        """EM refresh weight for this worker's historical answers."""
        if self.is_quarantined(worker_id):
            return self._config.quarantined_weight
        return 1.0

    # ------------------------------------------------------------- evaluation
    def evaluate(
        self,
        worker_ids,
        p_qualified,
        answer_counts,
    ) -> int:
        """Re-judge every worker from fresh posteriors; return transitions.

        ``worker_ids`` and ``p_qualified`` align positionally (a parameter
        store's worker axis); ``answer_counts`` maps worker id → accepted
        answers, gating judgement until ``min_answers`` evidence exists.
        """
        config = self._config
        changed = 0
        for index, worker_id in enumerate(worker_ids):
            if int(answer_counts.get(worker_id, 0)) < config.min_answers:
                continue
            posterior = float(p_qualified[index])
            if not math.isfinite(posterior):
                continue
            smoothing = config.posterior_smoothing
            if smoothing > 0.0:
                previous = self._posteriors.get(worker_id)
                if previous is not None:
                    posterior = smoothing * previous + (1.0 - smoothing) * posterior
                self._posteriors[worker_id] = posterior
            current = self._tiers.get(worker_id, "trusted")
            target = self._target_tier(posterior, current)
            if target == current:
                self._demote_streak.pop(worker_id, None)
                self._promote_streak.pop(worker_id, None)
                continue
            demoting = TRUST_TIERS.index(target) > TRUST_TIERS.index(current)
            if demoting:
                streak = self._demote_streak.get(worker_id, 0) + 1
                self._promote_streak.pop(worker_id, None)
                if streak < config.demote_patience:
                    self._demote_streak[worker_id] = streak
                    continue
                self._demote_streak.pop(worker_id, None)
            else:
                streak = self._promote_streak.get(worker_id, 0) + 1
                self._demote_streak.pop(worker_id, None)
                if streak < config.promote_patience:
                    self._promote_streak[worker_id] = streak
                    continue
                self._promote_streak.pop(worker_id, None)
            self._apply_transition(worker_id, current, target)
            changed += 1
        return changed

    def _target_tier(self, posterior: float, current: str) -> str:
        config = self._config
        if posterior < config.quarantine_below:
            return "quarantined"
        if posterior < config.probation_below:
            return "probation"
        if posterior > config.readmit_above:
            return "trusted"
        # Dead band: every tier holds.  Quarantine in particular is only left
        # upward through ``readmit_above`` — a posterior drifting just over
        # ``quarantine_below`` is consensus jitter, not rehabilitation, and
        # re-admitting on it lets a caught spammer ping-pong back into the
        # assignment pool.
        return current

    def _apply_transition(self, worker_id: str, current: str, target: str) -> None:
        if target == "trusted":
            self._tiers.pop(worker_id, None)
        else:
            self._tiers[worker_id] = target
        self._version += 1
        self._transitions += 1
        if self._metrics is not None:
            self._metrics.counter(
                "reputation_transitions_total", to=target
            ).inc()

    # ---------------------------------------------------------- serialization
    def state_dict(self) -> dict:
        """JSON-serializable state for checkpointing (bit-equal restore)."""
        return {
            "tiers": dict(self._tiers),
            "demote_streak": dict(self._demote_streak),
            "promote_streak": dict(self._promote_streak),
            "posteriors": dict(self._posteriors),
            "version": self._version,
            "transitions": self._transitions,
        }

    def restore_state(self, state: dict) -> None:
        self._tiers = {str(k): str(v) for k, v in state.get("tiers", {}).items()}
        self._demote_streak = {
            str(k): int(v) for k, v in state.get("demote_streak", {}).items()
        }
        self._promote_streak = {
            str(k): int(v) for k, v in state.get("promote_streak", {}).items()
        }
        self._posteriors = {
            str(k): float(v) for k, v in state.get("posteriors", {}).items()
        }
        self._version = int(state.get("version", 0))
        self._transitions = int(state.get("transitions", 0))
