"""Event validation and quarantine: crowd input is untrusted by construction.

Everything the EM kernel consumes arrives over the open submission surface,
and one malformed event deep inside a micro-batch used to surface as a bare
``KeyError``/``ValueError`` mid-flush — killing the whole serving loop for
one bad submission.  :class:`EventGuard` moves that validation to the intake
boundary: :meth:`EventGuard.admit` inspects every
:class:`~repro.serving.ingest.AnswerEvent` *before* it touches the journal or
the buffer and either accepts it or files it into a bounded in-memory
quarantine log (optionally mirrored to a JSONL sink) under a per-reason
counter, without raising.

Rejection reasons (the keys of :attr:`GuardStats.reasons`):

``coordinates``
    A first-sight worker/task payload carries a non-finite coordinate or one
    outside :attr:`GuardConfig.coordinate_bounds`.
``unknown-worker`` / ``unknown-task``
    The answer references an entity the model does not know and the event
    carries no payload to register it — the exact condition that previously
    raised ``KeyError`` inside the flush.
``payload-mismatch``
    The event's payload id contradicts the answer's worker/task id.
``label-arity``
    The answer's response vector length does not match the task's label count.
``duplicate``
    The identical ``(worker, task, responses)`` submission was already
    accepted — replays add no information and skew rate accounting.
``reanswer``
    A changed re-answer for an already-answered pair while
    :attr:`GuardConfig.allow_reanswers` is off.
``rate-limit``
    The worker exceeded :attr:`GuardConfig.max_answers_per_window` accepted
    answers inside the trailing :attr:`GuardConfig.rate_window` simulated
    seconds (0 disables the check).

:meth:`EventGuard.observe` records an event into the duplicate/rate history
*without* validating — used when replaying journal events that were already
admitted before a crash, so recovery never re-litigates (and never drops)
history the crashed run accepted.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.data.models import AnswerSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.inference import LocationAwareInference
    from repro.obs.metrics import MetricsRegistry
    from repro.serving.ingest import AnswerEvent


@dataclass
class GuardConfig:
    """Validation policy of one :class:`EventGuard`."""

    #: ``(min_x, min_y, max_x, max_y)`` accepted for payload coordinates;
    #: ``None`` only checks finiteness.
    coordinate_bounds: tuple[float, float, float, float] | None = None
    #: Whether a changed re-answer of an answered pair is accepted (identical
    #: resubmissions are always quarantined as duplicates).
    allow_reanswers: bool = True
    #: Accepted answers allowed per worker inside ``rate_window``; 0 disables.
    max_answers_per_window: int = 0
    #: Trailing window (simulated seconds) for the rate check.
    rate_window: float = 60.0
    #: Quarantined events retained in memory, newest last.
    quarantine_capacity: int = 256
    #: Optional JSONL file every quarantined event is appended to.
    quarantine_sink: str | Path | None = None

    def __post_init__(self) -> None:
        if self.coordinate_bounds is not None:
            min_x, min_y, max_x, max_y = self.coordinate_bounds
            if not (min_x < max_x and min_y < max_y):
                raise ValueError(
                    f"coordinate_bounds must be (min_x, min_y, max_x, max_y) "
                    f"with positive extent, got {self.coordinate_bounds}"
                )
        if self.max_answers_per_window < 0:
            raise ValueError(
                f"max_answers_per_window must be non-negative, "
                f"got {self.max_answers_per_window}"
            )
        if self.rate_window <= 0:
            raise ValueError(f"rate_window must be positive, got {self.rate_window}")
        if self.quarantine_capacity <= 0:
            raise ValueError(
                f"quarantine_capacity must be positive, got {self.quarantine_capacity}"
            )


@dataclass(frozen=True)
class QuarantinedEvent:
    """One rejected submission with its reason and diagnostic detail."""

    event: "AnswerEvent"
    reason: str
    detail: str


@dataclass
class GuardStats:
    """Counters of one :class:`EventGuard`."""

    inspected: int = 0
    accepted: int = 0
    quarantined: int = 0
    reasons: dict[str, int] = field(default_factory=dict)


class EventGuard:
    """Admits or quarantines answer events at the ingestion boundary."""

    def __init__(
        self,
        config: GuardConfig | None = None,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self._config = config or GuardConfig()
        self._metrics = metrics
        self._stats = GuardStats()
        self._quarantine: deque[QuarantinedEvent] = deque(
            maxlen=self._config.quarantine_capacity
        )
        # Accepted history: responses per answered pair (duplicate detection)
        # and accept times per worker (rate anomaly detection).
        self._seen_responses: dict[tuple[str, str], tuple[int, ...]] = {}
        self._accept_times: dict[str, deque[float]] = {}

    # ------------------------------------------------------------------ state
    @property
    def config(self) -> GuardConfig:
        return self._config

    @property
    def stats(self) -> GuardStats:
        return self._stats

    @property
    def quarantine(self) -> list[QuarantinedEvent]:
        """The retained quarantined events, oldest first (bounded)."""
        return list(self._quarantine)

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Mirror accept/quarantine counters into ``metrics`` from now on."""
        self._metrics = metrics

    # ----------------------------------------------------------------- intake
    def admit(
        self, event: "AnswerEvent", inference: "LocationAwareInference"
    ) -> str | None:
        """Validate ``event``; return ``None`` to accept or the rejection reason.

        A rejected event is recorded in the quarantine log and the per-reason
        counters — never raised.  Accepted events enter the duplicate/rate
        history.
        """
        self._stats.inspected += 1
        verdict = self._inspect(event, inference)
        if verdict is not None:
            reason, detail = verdict
            self._quarantine_event(event, reason, detail)
            return reason
        self._stats.accepted += 1
        if self._metrics is not None:
            self._metrics.counter("guard_accepted_total").inc()
        self.observe(event)
        return None

    def observe(self, event: "AnswerEvent") -> None:
        """Record an already-admitted event into the history (no validation).

        The crash-recovery replay path: journal records were validated before
        the crash, so replay must update the duplicate/rate history without
        being able to reject them.
        """
        answer = event.answer
        self._seen_responses[(answer.worker_id, answer.task_id)] = answer.responses
        if self._config.max_answers_per_window > 0:
            self._accept_times.setdefault(answer.worker_id, deque()).append(event.time)

    def seed_history(self, answers: AnswerSet | list) -> None:
        """Seed the duplicate history from a restored answer log."""
        for answer in answers:
            self._seen_responses[(answer.worker_id, answer.task_id)] = answer.responses

    # --------------------------------------------------------------- internal
    def _inspect(
        self, event: "AnswerEvent", inference: "LocationAwareInference"
    ) -> tuple[str, str] | None:
        answer = event.answer
        config = self._config

        coords = self._payload_coordinate_issue(event)
        if coords is not None:
            return "coordinates", coords

        if event.task is not None and event.task.task_id != answer.task_id:
            return (
                "payload-mismatch",
                f"task payload {event.task.task_id!r} vs answer task "
                f"{answer.task_id!r}",
            )
        if event.worker is not None and event.worker.worker_id != answer.worker_id:
            return (
                "payload-mismatch",
                f"worker payload {event.worker.worker_id!r} vs answer worker "
                f"{answer.worker_id!r}",
            )

        task = inference._tasks.get(answer.task_id)
        if task is None:
            if event.task is None:
                return (
                    "unknown-task",
                    f"task {answer.task_id!r} is unknown and the event carries "
                    "no payload",
                )
            task = event.task
        if answer.worker_id not in inference._workers and event.worker is None:
            return (
                "unknown-worker",
                f"worker {answer.worker_id!r} is unknown and the event carries "
                "no payload",
            )

        if answer.num_labels != task.num_labels:
            return (
                "label-arity",
                f"{answer.num_labels} responses for task {answer.task_id!r} "
                f"with {task.num_labels} labels",
            )

        previous = self._seen_responses.get((answer.worker_id, answer.task_id))
        if previous is not None:
            if previous == answer.responses:
                return (
                    "duplicate",
                    f"identical resubmission of ({answer.worker_id!r}, "
                    f"{answer.task_id!r})",
                )
            if not config.allow_reanswers:
                return (
                    "reanswer",
                    f"changed re-answer of ({answer.worker_id!r}, "
                    f"{answer.task_id!r}) with re-answers disabled",
                )

        if config.max_answers_per_window > 0:
            times = self._accept_times.get(answer.worker_id)
            if times is not None:
                while times and event.time - times[0] > config.rate_window:
                    times.popleft()
                if len(times) >= config.max_answers_per_window:
                    return (
                        "rate-limit",
                        f"worker {answer.worker_id!r} exceeded "
                        f"{config.max_answers_per_window} answers per "
                        f"{config.rate_window:g} s",
                    )
        return None

    def _payload_coordinate_issue(self, event: "AnswerEvent") -> str | None:
        bounds = self._config.coordinate_bounds
        points = []
        if event.worker is not None:
            points.extend(
                (f"worker {event.worker.worker_id!r}", loc)
                for loc in event.worker.locations
            )
        if event.task is not None:
            points.append((f"task {event.task.task_id!r}", event.task.location))
        for origin, point in points:
            x, y = float(point.x), float(point.y)
            if not (math.isfinite(x) and math.isfinite(y)):
                return f"{origin} has a non-finite coordinate ({x}, {y})"
            if bounds is not None:
                min_x, min_y, max_x, max_y = bounds
                if not (min_x <= x <= max_x and min_y <= y <= max_y):
                    return (
                        f"{origin} coordinate ({x:g}, {y:g}) lies outside "
                        f"bounds {bounds}"
                    )
        return None

    def _quarantine_event(self, event: "AnswerEvent", reason: str, detail: str) -> None:
        self._stats.quarantined += 1
        self._stats.reasons[reason] = self._stats.reasons.get(reason, 0) + 1
        if self._metrics is not None:
            self._metrics.counter("guard_quarantined_total", reason=reason).inc()
        entry = QuarantinedEvent(event=event, reason=reason, detail=detail)
        self._quarantine.append(entry)
        sink = self._config.quarantine_sink
        if sink is not None:
            answer = event.answer
            record = {
                "reason": reason,
                "detail": detail,
                "time": event.time,
                "worker_id": answer.worker_id,
                "task_id": answer.task_id,
                "responses": list(answer.responses),
            }
            with open(Path(sink), "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
