"""The serving session: arrivals → live assignment → simulated answers → ingest.

:class:`OnlineServingService` is the run-to-completion simulation of the whole
online system over a :class:`~repro.crowd.platform.CrowdPlatform` workload:

1. the platform's arrival process (wrapped in a
   :class:`~repro.crowd.arrival.TimedArrivalSchedule`) produces timestamped
   batches of arriving workers;
2. for **each** arriving worker, the :class:`~repro.serving.frontend.AssignmentFrontend`
   serves a HIT computed against the latest published snapshot (per-request
   latency recorded);
3. the platform simulates the worker's answers and charges the budget;
4. the answers stream into the :class:`~repro.serving.ingest.AnswerIngestor`,
   which micro-batches them into incremental EM updates (periodic full
   refreshes run straight off the incremental updater's live tensor — zero
   answer-log re-flattens) and publishes a fresh snapshot after every update,
   dirty-row deltas in the steady state.  The ingestor shares the platform's
   own answer log (the simulator needs it anyway), but the update path never
   reads it back.

The loop ends when the budget is exhausted, a round yields no assignable task,
or ``max_rounds`` is reached; a final full refresh then produces the snapshot
the closing accuracy is evaluated on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.crowd.arrival import DiurnalPattern, TimedArrivalSchedule
from repro.crowd.platform import CrowdPlatform
from repro.framework.metrics import labelling_accuracy
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import PhaseBreakdown, PhaseTimeline, Tracer
from repro.serving.faults import FaultInjector
from repro.serving.frontend import AssignmentFrontend, FrontendStats
from repro.serving.guard import (
    EventGuard,
    GuardConfig,
    ReputationConfig,
    ReputationTracker,
)
from repro.serving.ingest import AnswerEvent, AnswerIngestor, IngestConfig, IngestStats
from repro.serving.journal import AnswerJournal, RecoveryReport, recover_ingestor
from repro.serving.snapshots import CheckpointManager, ParameterSnapshot, SnapshotStore
from repro.utils.rng import default_rng, derive_seed


@dataclass
class ServingConfig:
    """Knobs of one serving session.

    ``holdback_worker_fraction`` / ``holdback_task_fraction`` exercise the
    open-world path: that fraction of the platform's workers/tasks is withheld
    from the serving model at startup and only admitted when it actually
    arrives — held-back workers on their first arrival batch, held-back tasks
    on a rolling release of ``tasks_released_per_round`` per round.
    ``final_refresh_warm_start=False`` makes the shutdown re-fit a cold start,
    so the final snapshot is bit-identical to an offline fit on the full
    answer log (the open-world acceptance check).

    ``state_dir`` turns on durability: every accepted answer event is
    journaled before it is applied and (with
    :attr:`IngestConfig.checkpoint_interval` > 0) the live state is
    checkpointed periodically.  ``resume=True`` rebuilds a crashed session
    from that directory — newest valid checkpoint plus journal-tail replay —
    before serving continues.
    """

    strategy: str = "accopt"
    assigner_engine: str = "vectorized"
    #: Candidate radius (raw coordinate units) for ``assigner_engine="sparse"``
    #: and the sparse inference engine's candidate structure; ``None`` keeps
    #: the dense paths.
    candidate_radius: float | None = None
    tasks_per_worker: int = 2
    #: Every this-many assignment requests per worker, one optimiser-picked
    #: task is swapped for the worker's nearest unanswered task (a trust
    #: probe) — guaranteeing near-task evidence for the reputation tracker's
    #: trust score, which cannot tell a local honest worker from a coin
    #: spammer on far tasks alone.  0 disables probing (the historical
    #: assignment stream, bit-identical).
    probe_interval: int = 0
    mean_interarrival: float = 1.0
    max_snapshots: int = 8
    ingest: IngestConfig = field(default_factory=IngestConfig)
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    final_full_refresh: bool = True
    final_refresh_warm_start: bool = True
    holdback_worker_fraction: float = 0.0
    holdback_task_fraction: float = 0.0
    tasks_released_per_round: int = 1
    seed: int | None = None
    #: Directory for the write-ahead journal + checkpoints (None = in-memory
    #: only, the pre-durability behaviour).
    state_dir: str | Path | None = None
    #: Recover from ``state_dir`` before serving (requires ``state_dir``).
    resume: bool = False
    #: fsync every journal append (safest, slowest; the default trusts the OS
    #: page cache, which survives process crashes but not power loss).
    journal_fsync: bool = False
    #: Records per journal segment before rotating to a new file.
    journal_segment_records: int = 1024
    #: Event validation policy; None serves unguarded (trusted input).
    guard: GuardConfig | None = None
    #: Trust-tier policy; a :class:`~repro.serving.guard.ReputationConfig`
    #: turns on the full degradation ladder (worker tiers re-judged after
    #: every flush, quarantined workers refused at the frontend and the
    #: intake, their history down-weighted at full refreshes).  ``None``
    #: serves reputation-blind (the historical behaviour).
    reputation: ReputationConfig | None = None
    #: Bursty/diurnal modulation of the arrival schedule; ``None`` keeps the
    #: homogeneous Poisson-like stream (bit-identical to the historical path).
    diurnal: DiurnalPattern | None = None
    #: Deterministic fault injector for chaos tests; None in production.
    faults: FaultInjector | None = None
    #: Directory for telemetry exports: ``metrics.jsonl`` snapshots, a final
    #: ``metrics.prom`` rendering and (with ``trace=True``) ``trace.json``.
    #: None disables exports; the in-memory registry still runs.
    metrics_dir: str | Path | None = None
    #: Rounds between periodic ``metrics.jsonl`` snapshots while the session
    #: runs (0 = export only the final snapshot).  Requires ``metrics_dir``.
    metrics_interval: int = 0
    #: Keep a bounded in-memory trace ring and export it as Chrome
    #: ``trace_event`` JSON to ``metrics_dir``.
    trace: bool = False
    #: Span events retained in the trace ring (oldest evicted first).
    trace_capacity: int = 4096

    def __post_init__(self) -> None:
        if self.tasks_per_worker <= 0:
            raise ValueError(
                f"tasks_per_worker must be positive, got {self.tasks_per_worker}"
            )
        if self.mean_interarrival <= 0:
            raise ValueError(
                f"mean_interarrival must be positive, got {self.mean_interarrival}"
            )
        if self.probe_interval < 0:
            raise ValueError(
                f"probe_interval must be non-negative, got {self.probe_interval}"
            )
        for name in ("holdback_worker_fraction", "holdback_task_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise ValueError(f"{name} must lie in [0, 1), got {value}")
        if self.tasks_released_per_round <= 0:
            raise ValueError(
                f"tasks_released_per_round must be positive, "
                f"got {self.tasks_released_per_round}"
            )
        if self.journal_segment_records <= 0:
            raise ValueError(
                f"journal_segment_records must be positive, "
                f"got {self.journal_segment_records}"
            )
        if self.resume and self.state_dir is None:
            raise ValueError("resume=True requires a state_dir to recover from")
        if self.metrics_interval < 0:
            raise ValueError(
                f"metrics_interval must be non-negative, got {self.metrics_interval}"
            )
        if self.metrics_interval > 0 and self.metrics_dir is None:
            raise ValueError("metrics_interval > 0 requires a metrics_dir to export to")
        if self.trace_capacity <= 0:
            raise ValueError(
                f"trace_capacity must be positive, got {self.trace_capacity}"
            )
        if self.assigner_engine == "sparse" and self.candidate_radius is None:
            raise ValueError(
                "assigner_engine='sparse' requires a candidate_radius"
            )
        if self.candidate_radius is not None and not self.candidate_radius > 0:
            raise ValueError(
                f"candidate_radius must be positive, got {self.candidate_radius}"
            )


@dataclass
class TrustReport:
    """Closing state of the reputation ladder, plus detection quality.

    ``true_positives`` counts quarantined workers that really are platform
    adversaries (known only in simulation, where
    :attr:`~repro.crowd.worker_pool.WorkerPool.adversary_ids` is ground
    truth); precision and recall follow the usual 0.0-on-empty contract.
    """

    #: Tracked workers per non-trusted tier, e.g. ``{"probation": 1, ...}``.
    tiers: dict = field(default_factory=dict)
    #: Total tier transitions applied over the session.
    transitions: int = 0
    #: Assignment requests refused because the worker was quarantined.
    blocked_requests: int = 0
    #: Answer events refused at intake for the same reason.
    rejected_events: int = 0
    #: Ground-truth adversarial workers in the platform's pool.
    adversaries: int = 0
    #: Quarantined workers that are ground-truth adversaries.
    true_positives: int = 0
    #: Workers quarantined at session end.
    quarantined: int = 0

    @property
    def detection_precision(self) -> float:
        """Share of quarantined workers that are real adversaries (0.0 if none)."""
        if self.quarantined <= 0:
            return 0.0
        return self.true_positives / self.quarantined

    @property
    def detection_recall(self) -> float:
        """Share of real adversaries that ended up quarantined (0.0 if none)."""
        if self.adversaries <= 0:
            return 0.0
        return self.true_positives / self.adversaries

    def summary_line(self) -> str:
        tiers = ", ".join(f"{count} {tier}" for tier, count in sorted(self.tiers.items()))
        line = (
            f"trust: {tiers or 'all trusted'} ({self.transitions} transitions), "
            f"{self.blocked_requests} requests blocked, "
            f"{self.rejected_events} events rejected"
        )
        if self.adversaries:
            line += (
                f"; adversary detection: recall "
                f"{self.detection_recall:.0%}, precision "
                f"{self.detection_precision:.0%} "
                f"({self.true_positives}/{self.adversaries} caught)"
            )
        return line


@dataclass
class ServingReport:
    """Everything a serve-sim run reports: ingestion, assignment and accuracy."""

    rounds: int
    workers_served: int
    answers_ingested: int
    ingest: IngestStats
    frontend: FrontendStats
    snapshots_published: int
    latest_version: int | None
    simulated_duration: float
    wall_seconds: float
    final_accuracy: float
    workers_joined: int = 0
    tasks_joined: int = 0
    open_world_answers: int = 0
    #: Whether the session ran with a durable journal (state_dir set).
    durable: bool = False
    #: Times the snapshot store entered degraded mode during the run.
    degraded_marks: int = 0
    #: What crash recovery found and rebuilt (None unless resumed).
    recovery: RecoveryReport | None = None
    #: Phase-attributed wall-time breakdown per stream quarter (None when the
    #: session ran without the service-level tracer).
    phases: PhaseBreakdown | None = None
    #: Assignment latency percentiles, preferring the registry histogram
    #: (exact counts over the whole stream) over the reservoir's sample.
    #: Contract: exactly ``0.0`` when no requests were served.
    assign_p50_ms: float = 0.0
    assign_p95_ms: float = 0.0
    #: Closing trust-ladder state (None when reputation tracking was off).
    trust: TrustReport | None = None

    @property
    def ingest_answers_per_second(self) -> float:
        """Answers applied per second of model-update time.

        Contract: exactly ``0.0`` when no update time was recorded — never
        ``NaN`` or a division error, so rate reporting is total.
        """
        return self.ingest.answers_per_second

    @property
    def wall_answers_per_second(self) -> float:
        """End-to-end throughput: answers ingested per second of wall clock.

        Contract: exactly ``0.0`` when ``wall_seconds`` is zero (a session
        that never entered its run loop) — never ``NaN`` or a division error.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.answers_ingested / self.wall_seconds

    @property
    def open_world_fraction(self) -> float:
        """Share of ingested answers involving an entity absent at startup.

        Contract: exactly ``0.0`` when nothing was ingested.
        """
        if self.answers_ingested <= 0:
            return 0.0
        return self.open_world_answers / self.answers_ingested

    def summary(self) -> str:
        """Human-readable multi-line digest (printed by ``repro-poi serve-sim``)."""
        version = "-" if self.latest_version is None else str(self.latest_version)
        lines = [
            f"rounds: {self.rounds}, workers served: {self.workers_served}, "
            f"answers ingested: {self.answers_ingested}",
            f"ingest: {self.ingest.batches} micro-batches "
            f"({self.ingest.incremental_updates} incremental, "
            f"{self.ingest.full_refreshes} full refreshes, "
            f"{self.ingest.log_flattens} log flattens), "
            f"{self.ingest_answers_per_second:,.0f} answers/s of update time",
            f"open world: {self.workers_joined} workers / {self.tasks_joined} tasks "
            f"joined mid-stream, {self.open_world_answers} answers "
            f"({self.open_world_fraction:.0%}) from entities absent at startup",
            f"snapshots: {self.snapshots_published} published "
            f"({self.ingest.delta_publishes} dirty-row deltas), "
            f"latest version {version}",
            f"assignment latency: p50 {self.assign_p50_ms:.2f} ms, "
            f"p95 {self.assign_p95_ms:.2f} ms over "
            f"{self.frontend.requests} requests",
            f"pipeline: {self.ingest.refreshes_overlapped} refreshes overlapped "
            f"with ingest, {self.ingest.answers_reconciled} answers reconciled, "
            f"longest ingest stall {self.ingest.max_flush_stall_ms:.1f} ms, "
            f"refresh wait {self.ingest.refresh_wait_seconds * 1000.0:.1f} ms",
            f"simulated duration: {self.simulated_duration:.1f} s, "
            f"wall clock: {self.wall_seconds:.2f} s",
            f"final labelling accuracy: {self.final_accuracy:.3f}",
        ]
        if self.recovery is not None:
            lines.insert(0, self.recovery.summary())
        if self.durable:
            lines.append(
                f"durability: {self.ingest.journal_appends} journal appends, "
                f"{self.ingest.checkpoints_written} checkpoints "
                f"({self.ingest.checkpoint_failures} failed)"
            )
        if (
            self.ingest.events_quarantined
            or self.ingest.dropped_batches
            or self.ingest.publish_failures
            or self.frontend.stale_serves
            or self.degraded_marks
        ):
            lines.append(
                f"faults absorbed: {self.ingest.events_quarantined} quarantined, "
                f"{self.ingest.dropped_batches} batches dropped "
                f"({self.ingest.answers_dropped} answers), "
                f"{self.ingest.publish_failures} publish failures, "
                f"{self.frontend.stale_serves} stale serves over "
                f"{self.degraded_marks} degraded episodes"
            )
        if self.trust is not None:
            lines.append(self.trust.summary_line())
        if self.phases is not None and self.phases.quarters:
            lines.append("phase breakdown (share of wall time per stream quarter):")
            lines.append(self.phases.render())
        return "\n".join(lines)


class OnlineServingService:
    """Wires ingestion, snapshotting and the frontend over one platform.

    With the holdback fractions of :class:`ServingConfig` set, the service
    runs **open-world**: the withheld workers/tasks are unknown to the
    inference model, the frontend and the first snapshots, and enter the
    serving universe only when they arrive — workers on their first arrival
    batch, tasks on the rolling release schedule — flowing through
    ``add_worker`` / ``add_task`` registration all the way down to the live
    tensor and the published stores.
    """

    def __init__(
        self,
        platform: CrowdPlatform,
        config: ServingConfig | None = None,
        initial_snapshot: ParameterSnapshot | None = None,
    ) -> None:
        if platform.arrival_process is None:
            raise ValueError(
                "the serving service needs a platform with an arrival process"
            )
        self._platform = platform
        self._config = config or ServingConfig()
        # The service always runs its telemetry in memory (registry overhead
        # is a few histogram observes per micro-batch); metrics_dir only
        # controls whether anything is exported to disk.
        self._metrics = MetricsRegistry()
        self._tracer = Tracer(
            self._metrics,
            ring_capacity=self._config.trace_capacity if self._config.trace else 0,
        )
        startup_workers, startup_tasks, pending_tasks = self._split_universe()
        self._pending_tasks = pending_tasks
        self._startup_worker_ids = frozenset(w.worker_id for w in startup_workers)
        self._startup_task_ids = frozenset(t.task_id for t in startup_tasks)
        self._registered_workers = set(self._startup_worker_ids)
        self._workers_joined = 0
        self._tasks_joined = 0
        self._open_world_answers = 0
        self._inference = LocationAwareInference(
            startup_tasks,
            startup_workers,
            platform.distance_model,
            config=self._config.inference,
        )
        self._snapshots = SnapshotStore(max_snapshots=self._config.max_snapshots)
        if initial_snapshot is not None:
            self._snapshots.adopt(initial_snapshot)
            self._inference.warm_start(initial_snapshot.store)
        self._recovery: RecoveryReport | None = None
        guard = EventGuard(self._config.guard) if self._config.guard is not None else None
        self._reputation = (
            ReputationTracker(self._config.reputation)
            if self._config.reputation is not None
            else None
        )
        if self._config.state_dir is not None and self._config.resume:
            self._ingestor, self._recovery = recover_ingestor(
                Path(self._config.state_dir),
                inference=self._inference,
                snapshots=self._snapshots,
                ingest_config=self._config.ingest,
                answers=platform.answers,
                guard=guard,
                faults=self._config.faults,
                journal_fsync=self._config.journal_fsync,
                journal_segment_records=self._config.journal_segment_records,
                tracer=self._tracer,
                reputation=self._reputation,
            )
        else:
            journal = None
            checkpoints = None
            if self._config.state_dir is not None:
                state_dir = Path(self._config.state_dir)
                journal = AnswerJournal(
                    state_dir / "journal",
                    max_segment_records=self._config.journal_segment_records,
                    fsync=self._config.journal_fsync,
                )
                checkpoints = CheckpointManager(state_dir / "checkpoints")
            self._ingestor = AnswerIngestor(
                self._inference,
                self._snapshots,
                config=self._config.ingest,
                answers=platform.answers,
                journal=journal,
                guard=guard,
                faults=self._config.faults,
                checkpoints=checkpoints,
                tracer=self._tracer,
                reputation=self._reputation,
            )
        self._frontend = AssignmentFrontend(
            startup_tasks,
            startup_workers,
            platform.distance_model,
            self._snapshots,
            strategy=self._config.strategy,
            seed=self._config.seed,
            engine=self._config.assigner_engine,
            tracer=self._tracer,
            candidate_radius=self._config.candidate_radius,
            reputation=self._reputation,
            probe_interval=self._config.probe_interval,
        )
        if self._recovery is not None:
            self._sync_recovered_universe()
        self._schedule = TimedArrivalSchedule(
            platform.arrival_process,
            mean_interarrival=self._config.mean_interarrival,
            seed=self._config.seed,
            pattern=self._config.diurnal,
        )

    def _sync_recovered_universe(self) -> None:
        """Propagate entities the crashed run learned mid-stream.

        Recovery re-registered checkpointed/journaled workers and tasks into
        the inference model; the frontend (built over the startup universe)
        and the service's own bookkeeping must see them too, and tasks the
        crashed run already released must not be re-released.
        """
        for worker_id, worker in self._inference.workers.items():
            if worker_id not in self._registered_workers:
                self._frontend.add_worker(worker)
                self._registered_workers.add(worker_id)
                self._workers_joined += 1
        known_tasks = self._inference.tasks
        for task in list(self._pending_tasks):
            if task.task_id in known_tasks:
                self._frontend.add_task(task)
                self._tasks_joined += 1
        self._pending_tasks = [
            task for task in self._pending_tasks if task.task_id not in known_tasks
        ]

    def _split_universe(self):
        """Partition the platform universe into startup and held-back subsets."""
        workers = self._platform.workers
        tasks = list(self._platform.dataset.tasks)
        hold_workers = min(
            int(round(self._config.holdback_worker_fraction * len(workers))),
            len(workers) - 1,
        )
        hold_tasks = min(
            int(round(self._config.holdback_task_fraction * len(tasks))),
            len(tasks) - 1,
        )
        rng = default_rng(derive_seed(self._config.seed, 0x5EED))
        held_worker_rows = (
            set(rng.choice(len(workers), size=hold_workers, replace=False).tolist())
            if hold_workers
            else set()
        )
        held_task_rows = (
            set(rng.choice(len(tasks), size=hold_tasks, replace=False).tolist())
            if hold_tasks
            else set()
        )
        startup_workers = [
            worker for i, worker in enumerate(workers) if i not in held_worker_rows
        ]
        startup_tasks = [
            task for j, task in enumerate(tasks) if j not in held_task_rows
        ]
        pending_tasks = [tasks[j] for j in sorted(held_task_rows)]
        return startup_workers, startup_tasks, pending_tasks

    # ------------------------------------------------------------------ state
    @property
    def platform(self) -> CrowdPlatform:
        return self._platform

    @property
    def inference(self) -> LocationAwareInference:
        return self._inference

    @property
    def snapshots(self) -> SnapshotStore:
        return self._snapshots

    @property
    def ingestor(self) -> AnswerIngestor:
        return self._ingestor

    @property
    def frontend(self) -> AssignmentFrontend:
        return self._frontend

    @property
    def recovery(self) -> RecoveryReport | None:
        """What crash recovery rebuilt (None unless constructed with resume)."""
        return self._recovery

    @property
    def reputation(self) -> ReputationTracker | None:
        """The trust-tier tracker (None when reputation tracking is off)."""
        return self._reputation

    @property
    def metrics(self) -> MetricsRegistry:
        """The session-wide registry every pipeline component reports into."""
        return self._metrics

    @property
    def tracer(self) -> Tracer:
        """The tracer attributing wall time to pipeline stages."""
        return self._tracer

    def close(self) -> None:
        """Release durable resources (the journal's open segment handle) and
        drain the ingest layer's background refresh worker."""
        self._ingestor.close()
        if self._ingestor.journal is not None:
            self._ingestor.journal.close()

    # ---------------------------------------------------------------- running
    def run(self, max_rounds: int | None = None) -> ServingReport:
        """Serve arrivals until the budget (or the task supply) runs out."""
        platform = self._platform
        h = self._config.tasks_per_worker
        wall_started = time.perf_counter()
        rounds = 0
        workers_served = 0
        timeline = PhaseTimeline(self._tracer)

        while not platform.budget.exhausted:
            if max_rounds is not None and rounds >= max_rounds:
                break
            self._release_pending_tasks()
            batch = self._schedule.next_batch()
            if not batch.worker_ids:
                break
            assigned_in_round = 0
            for worker_id in batch.worker_ids:
                remaining = platform.budget.remaining
                if remaining <= 0:
                    break
                self._register_arrival(worker_id)
                # Cap the request by the remaining budget so the frontend's
                # stats only ever count tasks that are actually executed.
                response = self._frontend.assign(
                    worker_id, min(h, remaining), platform.answers
                )
                if not response.task_ids:
                    continue
                collected = platform.execute_assignment(
                    {worker_id: list(response.task_ids)}, time=batch.time
                )
                workers_served += 1
                assigned_in_round += len(collected)
                for answer in collected:
                    if (
                        answer.worker_id not in self._startup_worker_ids
                        or answer.task_id not in self._startup_task_ids
                    ):
                        self._open_world_answers += 1
                    self._ingestor.submit(AnswerEvent(answer, time=batch.time))
            rounds += 1
            timeline.mark(
                float(self._ingestor.stats.answers),
                time.perf_counter() - wall_started,
            )
            if (
                self._config.metrics_interval > 0
                and rounds % self._config.metrics_interval == 0
            ):
                self._export_metrics_snapshot(rounds)
            if assigned_in_round == 0:
                # Every arrival in this round was saturated — stop, mirroring
                # the batch framework's zero-assignment exit; the post-loop
                # flush drains any still-open micro-batch.
                break

        self._ingestor.flush(
            now=self._schedule.now,
            full=self._config.final_full_refresh,
            warm=self._config.final_refresh_warm_start,
        )
        wall_seconds = time.perf_counter() - wall_started
        timeline.mark(float(self._ingestor.stats.answers), wall_seconds)
        phases = timeline.breakdown()
        self._export_final_telemetry(rounds)

        latest = self._snapshots.latest()
        tasks = platform.dataset.tasks
        if self._inference.is_fitted:
            accuracy = labelling_accuracy(self._inference.predict_all(), tasks)
        else:
            accuracy = 0.5
        trust: TrustReport | None = None
        if self._reputation is not None:
            quarantined = self._reputation.quarantined_ids
            adversaries = frozenset(
                getattr(platform.worker_pool, "adversary_ids", frozenset())
            )
            trust = TrustReport(
                tiers=self._reputation.tier_counts(),
                transitions=self._reputation.transitions,
                blocked_requests=self._frontend.stats.blocked_requests,
                rejected_events=self._ingestor.stats.events_rejected_reputation,
                adversaries=len(adversaries),
                true_positives=len(quarantined & adversaries),
                quarantined=len(quarantined),
            )
        return ServingReport(
            rounds=rounds,
            workers_served=workers_served,
            answers_ingested=self._ingestor.stats.answers,
            ingest=self._ingestor.stats,
            frontend=self._frontend.stats,
            snapshots_published=self._ingestor.stats.snapshots_published,
            latest_version=None if latest is None else latest.version,
            simulated_duration=self._schedule.now,
            wall_seconds=wall_seconds,
            final_accuracy=accuracy,
            workers_joined=self._workers_joined,
            tasks_joined=self._tasks_joined,
            open_world_answers=self._open_world_answers,
            durable=self._ingestor.journal is not None,
            degraded_marks=self._snapshots.degraded_marks,
            recovery=self._recovery,
            phases=phases,
            assign_p50_ms=self._frontend.latency_percentile_ms(50.0),
            assign_p95_ms=self._frontend.latency_percentile_ms(95.0),
            trust=trust,
        )

    # ------------------------------------------------------------- telemetry
    def _export_metrics_snapshot(self, rounds: int) -> None:
        """Append one stamped registry snapshot to ``metrics_dir/metrics.jsonl``."""
        if self._config.metrics_dir is None:
            return
        metrics_dir = Path(self._config.metrics_dir)
        metrics_dir.mkdir(parents=True, exist_ok=True)
        self._metrics.export_jsonl(
            metrics_dir / "metrics.jsonl",
            rounds=rounds,
            answers=self._ingestor.stats.answers,
        )

    def _export_final_telemetry(self, rounds: int) -> None:
        """Write the closing telemetry artifacts into ``metrics_dir``."""
        if self._config.metrics_dir is None:
            return
        metrics_dir = Path(self._config.metrics_dir)
        metrics_dir.mkdir(parents=True, exist_ok=True)
        self._export_metrics_snapshot(rounds)
        (metrics_dir / "metrics.prom").write_text(
            self._metrics.render_prometheus(), encoding="utf-8"
        )
        if self._config.trace:
            self._tracer.export_chrome(metrics_dir / "trace.json")

    # ------------------------------------------------------- open-world arrival
    def _release_pending_tasks(self) -> None:
        """Admit the next slice of held-back tasks into the serving universe."""
        for _ in range(min(self._config.tasks_released_per_round, len(self._pending_tasks))):
            task = self._pending_tasks.pop(0)
            self._inference.add_task(task)
            self._frontend.add_task(task)
            self._tasks_joined += 1

    def _register_arrival(self, worker_id: str) -> None:
        """Admit a first-sight worker into the serving universe."""
        if worker_id in self._registered_workers:
            return
        worker = self._platform.worker_pool.worker(worker_id)
        self._inference.add_worker(worker)
        self._frontend.add_worker(worker)
        self._registered_workers.add(worker_id)
        self._workers_joined += 1

    def save_latest_snapshot(self, path: str | Path) -> Path | None:
        """Persist the latest published snapshot (``None`` if nothing published)."""
        latest = self._snapshots.latest()
        if latest is None:
            return None
        return latest.save(path)
