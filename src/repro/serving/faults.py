"""Deterministic fault injection for the serving stack's chaos tests.

Crash safety cannot be tested by waiting for real crashes.  This module gives
the serving layers named *check points* (``"ingest.submit"``,
``"journal.append"``, ``"refresh"``, ``"refresh.background"`` — hit inside
the :class:`~repro.serving.pipeline.RefreshWorker` fit on the background
thread — ``"apply"``, ``"publish"``, ``"checkpoint.save"``) that are no-ops
in production and raise on demand in tests: a :class:`FaultInjector` armed at a point counts invocations and, at a
chosen hit, raises either

* :class:`InjectedFault` — an ordinary exception standing in for a transient
  failure (a refresh that throws, a publish that fails); the ingestion
  supervisor is expected to catch it, retry with backoff, and degrade
  gracefully when retries are exhausted; or
* :class:`SimulatedCrash` — simulated process death.  **Nothing in the
  serving stack may catch this**: it must propagate out of the service so the
  chaos tests can assert that whatever hit the disk before the crash is
  enough to recover from.

Both are deterministic: the same arming schedule against the same seeded
stream fails at exactly the same event, so every chaos scenario is
replayable.  The module also provides the on-disk corrupters used to simulate
the failure modes a raised exception cannot: :func:`tear_journal_tail` (a
crash mid-``write`` leaves a half-record at the end of a segment) and
:func:`corrupt_file` (bit rot / partial writes inside a checkpoint or
snapshot file).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


class InjectedFault(RuntimeError):
    """A transient failure injected at a named check point.

    The supervisor in :class:`~repro.serving.ingest.AnswerIngestor` treats it
    like any other exception from the wrapped operation: retry with backoff,
    then degrade.
    """


class SimulatedCrash(BaseException):
    """Simulated process death injected at a named check point.

    Derives from :class:`BaseException` precisely so that supervisors catching
    ``Exception`` let it through — exactly like a real ``kill -9`` would not
    be catchable.  Only the chaos test harness may catch it.
    """


@dataclass
class _Arming:
    """One armed failure: fire ``times`` times starting at hit ``after``."""

    after: int
    times: int
    crash: bool
    fired: int = 0


@dataclass
class FaultInjector:
    """Counts named check-point hits and raises at armed ones.

    ``arm(point, after=n)`` schedules a failure on the *n*-th hit of
    ``point`` (1-based) — ``times`` consecutive hits fail from there, then
    the point goes quiet again.  ``crash=True`` raises
    :class:`SimulatedCrash` instead of :class:`InjectedFault`.

    A disarmed injector is safe to leave wired in: :meth:`check` on a point
    with no arming only bumps a counter.
    """

    hits: dict[str, int] = field(default_factory=dict)
    raised: dict[str, int] = field(default_factory=dict)
    _armed: dict[str, list[_Arming]] = field(default_factory=dict)
    metrics: "MetricsRegistry | None" = field(default=None, repr=False)

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Mirror armed/fired counts into ``metrics`` from now on.

        Lets chaos tests assert on injections through the same registry the
        rest of the pipeline reports into.
        """
        self.metrics = metrics

    def arm(
        self, point: str, after: int = 1, times: int = 1, crash: bool = False
    ) -> None:
        """Schedule a failure at ``point``: fail ``times`` hits from hit ``after``."""
        if after <= 0:
            raise ValueError(f"after must be positive (1-based hit index), got {after}")
        if times <= 0:
            raise ValueError(f"times must be positive, got {times}")
        self._armed.setdefault(point, []).append(
            _Arming(after=after, times=times, crash=crash)
        )
        if self.metrics is not None:
            self.metrics.counter("faults_armed_total", point=point).inc()

    def disarm(self, point: str | None = None) -> None:
        """Clear armed failures for ``point`` (or every point when ``None``)."""
        if point is None:
            self._armed.clear()
        else:
            self._armed.pop(point, None)

    def check(self, point: str) -> None:
        """Record a hit of ``point``; raise if an arming covers this hit."""
        hit = self.hits.get(point, 0) + 1
        self.hits[point] = hit
        for arming in self._armed.get(point, ()):  # few armings per point
            if arming.after <= hit < arming.after + arming.times:
                arming.fired += 1
                self.raised[point] = self.raised.get(point, 0) + 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "faults_fired_total",
                        point=point,
                        kind="crash" if arming.crash else "fault",
                    ).inc()
                if arming.crash:
                    raise SimulatedCrash(
                        f"simulated crash at check point {point!r} (hit {hit})"
                    )
                raise InjectedFault(
                    f"injected fault at check point {point!r} (hit {hit})"
                )


def tear_journal_tail(path: str | Path, drop_bytes: int = 7) -> int:
    """Truncate the final ``drop_bytes`` bytes of a file: a torn-write tail.

    Emulates a crash in the middle of an ``append``: the last record is left
    incomplete.  Returns the number of bytes actually removed (the file may
    be shorter than ``drop_bytes``).
    """
    path = Path(path)
    size = path.stat().st_size
    removed = min(max(drop_bytes, 0), size)
    with open(path, "r+b") as handle:
        handle.truncate(size - removed)
    return removed


def corrupt_file(path: str | Path, offset: int | None = None, flips: int = 1) -> None:
    """Flip ``flips`` consecutive bytes of a file in place (bit rot).

    ``offset`` defaults to the middle of the file so the damage lands away
    from both the header and the (torn-tail-tolerant) end.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return
    if offset is None:
        offset = len(data) // 2
    offset = min(max(offset, 0), len(data) - 1)
    for index in range(offset, min(offset + flips, len(data))):
        data[index] ^= 0xFF
    path.write_bytes(bytes(data))
