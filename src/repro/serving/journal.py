"""Segmented, checksummed write-ahead journal of accepted answer events.

The serving stack's durability root: :class:`AnswerJournal` appends every
accepted :class:`~repro.serving.ingest.AnswerEvent` — answer, arrival time and
any first-sight worker/task payload — to disk *before* the event is buffered
or applied, so a crash at any later point can lose nothing that was
acknowledged.  The format is deliberately boring and inspectable:

* one record per line: ``<crc32-hex> <compact-json>\\n``, the CRC taken over
  the JSON bytes so any torn or rotten record is detected on read;
* records carry a strictly increasing ``seq`` (1-based), the journal's global
  position — checkpoints reference the ``seq`` they cover and replay resumes
  right after it;
* segments named ``segment-<first-seq>.wal`` rotate every
  ``max_segment_records`` appends; :meth:`AnswerJournal.truncate_covered`
  deletes closed segments wholly covered by a persisted checkpoint, bounding
  journal disk usage to roughly one checkpoint interval.

Failure tolerance follows write-ahead-log convention: a **torn tail** (the
final record of the final segment cut short by a crash mid-write) is
expected, detected, dropped and truncated away on reopen; a bad record
anywhere *else* means real corruption and raises
:class:`~repro.serving.JournalCorruptionError` rather than silently replaying
a damaged history.

:func:`recover_ingestor` is the crash-recovery entry point built on top: load
the newest valid checkpoint, rebuild the live inference/updater state
bit-for-bit, then replay the journal tail through the ordinary micro-batching
code path so the recovered run continues exactly where the crashed one left
off.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.data.io import (
    task_from_entry,
    task_to_entry,
    worker_from_entry,
    worker_to_entry,
)
from repro.data.models import Answer, AnswerSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.inference import LocationAwareInference
    from repro.obs.metrics import Histogram, MetricsRegistry
    from repro.obs.trace import Tracer
    from repro.serving.faults import FaultInjector
    from repro.serving.guard import EventGuard, ReputationTracker
    from repro.serving.ingest import AnswerEvent, AnswerIngestor, IngestConfig
    from repro.serving.snapshots import SnapshotStore

SEGMENT_PREFIX = "segment-"
SEGMENT_SUFFIX = ".wal"


def _encode_record(seq: int, event: "AnswerEvent") -> bytes:
    record = {
        "seq": seq,
        "time": event.time,
        "answer": {
            "worker_id": event.answer.worker_id,
            "task_id": event.answer.task_id,
            "responses": list(event.answer.responses),
        },
        "worker": None if event.worker is None else worker_to_entry(event.worker),
        "task": None if event.task is None else task_to_entry(event.task),
    }
    payload = json.dumps(record, separators=(",", ":"), sort_keys=True).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(payload), payload)


def _decode_record(line: bytes) -> tuple[int, "AnswerEvent"] | None:
    """Parse one journal line; ``None`` means the line is damaged/incomplete."""
    from repro.serving.ingest import AnswerEvent

    if not line.endswith(b"\n"):
        return None
    body = line[:-1]
    if len(body) < 10 or body[8:9] != b" ":
        return None
    payload = body[9:]
    try:
        crc = int(body[:8], 16)
    except ValueError:
        return None
    if zlib.crc32(payload) != crc:
        return None
    try:
        record = json.loads(payload)
        answer_entry = record["answer"]
        answer = Answer(
            worker_id=answer_entry["worker_id"],
            task_id=answer_entry["task_id"],
            responses=tuple(int(v) for v in answer_entry["responses"]),
        )
        event = AnswerEvent(
            answer=answer,
            time=float(record["time"]),
            worker=(
                None
                if record.get("worker") is None
                else worker_from_entry(record["worker"])
            ),
            task=(
                None
                if record.get("task") is None
                else task_from_entry(record["task"])
            ),
        )
        return int(record["seq"]), event
    except (KeyError, TypeError, ValueError):
        return None


@dataclass
class JournalStats:
    """Counters of one :class:`AnswerJournal` instance."""

    appends: int = 0
    segments_created: int = 0
    segments_truncated: int = 0
    torn_records_dropped: int = 0
    torn_bytes_truncated: int = 0


class AnswerJournal:
    """Append-before-apply event journal over rotating checksummed segments.

    Opening a directory that already holds segments validates the existing
    history: the last record of the last segment may be torn (it is dropped
    and the file truncated back to the last whole record — the crashed write
    never happened), while a damaged record anywhere else raises
    :class:`~repro.serving.JournalCorruptionError`.  ``fsync=True`` makes
    every append durable against OS crashes at the usual cost; the default
    flushes to the OS only, which survives process death (the chaos suite's
    crash model).
    """

    def __init__(
        self,
        directory: str | Path,
        max_segment_records: int = 1024,
        fsync: bool = False,
    ) -> None:
        if max_segment_records <= 0:
            raise ValueError(
                f"max_segment_records must be positive, got {max_segment_records}"
            )
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._max_segment_records = max_segment_records
        self._fsync = fsync
        self._stats = JournalStats()
        self._handle = None
        self._current_segment: Path | None = None
        self._current_records = 0
        self._last_seq = 0
        self._metrics: "MetricsRegistry | None" = None
        self._append_seconds: "Histogram | None" = None
        self._recover_existing()

    # ------------------------------------------------------------------ state
    @property
    def directory(self) -> Path:
        return self._directory

    @property
    def stats(self) -> JournalStats:
        return self._stats

    @property
    def last_seq(self) -> int:
        """Sequence number of the newest durable record (0 when empty)."""
        return self._last_seq

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Record per-append durability time (flush + fsync) and rotations.

        The append-seconds series is labelled with the fsync policy so a
        fleet roll-up can tell durable and OS-buffered writers apart.
        """
        self._metrics = metrics
        self._append_seconds = metrics.histogram(
            "journal_append_seconds", fsync="on" if self._fsync else "off"
        )

    def segment_paths(self) -> list[Path]:
        """Existing segment files, oldest first."""
        return sorted(
            path
            for path in self._directory.iterdir()
            if path.name.startswith(SEGMENT_PREFIX)
            and path.name.endswith(SEGMENT_SUFFIX)
        )

    # ----------------------------------------------------------------- intake
    def append(self, event: "AnswerEvent") -> int:
        """Durably append ``event`` and return its sequence number."""
        seq = self._last_seq + 1
        if self._handle is None or self._current_records >= self._max_segment_records:
            self._open_segment(first_seq=seq)
        line = _encode_record(seq, event)
        started = time.perf_counter() if self._append_seconds is not None else 0.0
        self._handle.write(line)
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())
        if self._append_seconds is not None:
            self._append_seconds.observe(time.perf_counter() - started)
        self._last_seq = seq
        self._current_records += 1
        self._stats.appends += 1
        return seq

    def truncate_covered(self, seq: int) -> int:
        """Delete closed segments whose every record has ``seq`` ≤ the cover.

        Called after a checkpoint covering ``seq`` is durably persisted; the
        active segment is never deleted (it is still being appended to).
        Returns the number of segments removed.
        """
        removed = 0
        segments = self.segment_paths()
        for index, path in enumerate(segments):
            if path == self._current_segment:
                continue
            # A closed segment's records end right before the next segment's
            # first seq (segments are named by their first record's seq).
            if index + 1 < len(segments):
                last_in_segment = self._segment_first_seq(segments[index + 1]) - 1
            else:
                last_in_segment = self._last_seq
            if last_in_segment <= seq:
                path.unlink()
                removed += 1
                self._stats.segments_truncated += 1
        return removed

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # ----------------------------------------------------------------- replay
    def replay(self, after: int = 0) -> Iterator[tuple[int, "AnswerEvent"]]:
        """Yield ``(seq, event)`` for every durable record with seq > ``after``.

        Records are validated as they stream: a torn final record is dropped
        (it was never acknowledged as durable by :meth:`append` semantics),
        while a damaged record followed by more data raises
        :class:`~repro.serving.JournalCorruptionError`.
        """
        from repro.serving import JournalCorruptionError

        segments = self.segment_paths()
        for segment_index, path in enumerate(segments):
            last_segment = segment_index == len(segments) - 1
            with open(path, "rb") as handle:
                lines = handle.readlines()
            for line_index, line in enumerate(lines):
                decoded = _decode_record(line)
                if decoded is None:
                    if last_segment and line_index == len(lines) - 1:
                        self._stats.torn_records_dropped += 1
                        return
                    raise JournalCorruptionError(
                        f"journal segment {path.name} record {line_index + 1} "
                        "failed its checksum with more data following it — the "
                        "journal history is corrupt past this point. Restore "
                        "the segment from a replica or delete the journal "
                        "directory to restart from the newest checkpoint "
                        "(losing the events after it)."
                    )
                seq, event = decoded
                if seq > after:
                    yield seq, event

    # --------------------------------------------------------------- internal
    @staticmethod
    def _segment_first_seq(path: Path) -> int:
        return int(path.name[len(SEGMENT_PREFIX) : -len(SEGMENT_SUFFIX)])

    def _open_segment(self, first_seq: int) -> None:
        if self._handle is not None:
            self._handle.close()
        self._current_segment = (
            self._directory / f"{SEGMENT_PREFIX}{first_seq:010d}{SEGMENT_SUFFIX}"
        )
        self._handle = open(self._current_segment, "ab")
        self._current_records = 0
        self._stats.segments_created += 1
        if self._metrics is not None:
            self._metrics.counter("journal_segments_created_total").inc()

    def _recover_existing(self) -> None:
        """Scan pre-existing segments: find the tail, drop a torn final record."""
        from repro.serving import JournalCorruptionError

        segments = self.segment_paths()
        if not segments:
            return
        last_seq = 0
        for segment_index, path in enumerate(segments):
            last_segment = segment_index == len(segments) - 1
            with open(path, "rb") as handle:
                lines = handle.readlines()
            valid_bytes = 0
            records = 0
            for line_index, line in enumerate(lines):
                decoded = _decode_record(line)
                if decoded is None:
                    if last_segment and line_index == len(lines) - 1:
                        torn = sum(len(l) for l in lines[line_index:])
                        with open(path, "r+b") as handle:
                            handle.truncate(valid_bytes)
                        self._stats.torn_records_dropped += 1
                        self._stats.torn_bytes_truncated += torn
                        break
                    raise JournalCorruptionError(
                        f"journal segment {path.name} record {line_index + 1} "
                        "failed its checksum with more data following it — "
                        "refusing to append to a corrupt journal. Restore the "
                        "segment from a replica or delete the journal "
                        "directory to restart from the newest checkpoint."
                    )
                valid_bytes += len(line)
                records += 1
                last_seq = decoded[0]
            if last_segment:
                # Reopen the tail segment for appending (unless full).
                self._current_segment = path
                self._current_records = records
                if records < self._max_segment_records:
                    self._handle = open(path, "ab")
        self._last_seq = last_seq


@dataclass
class RecoveryReport:
    """What :func:`recover_ingestor` found and rebuilt."""

    #: Journal seq the restored checkpoint covered (0 on a cold start).
    checkpoint_seq: int = 0
    #: Snapshot version restored from the checkpoint (None on a cold start).
    checkpoint_version: int | None = None
    #: Answers restored from the checkpointed answer log.
    checkpoint_answers: int = 0
    #: Corrupt checkpoint files skipped while searching for a valid one.
    corrupt_checkpoints_skipped: int = 0
    #: Journal events replayed through the ingestion path after the checkpoint.
    replayed_events: int = 0
    #: Whether the journal tail had a torn (dropped) final record.
    torn_tail: bool = False
    #: True when no usable checkpoint existed (full journal replay from zero).
    cold_start: bool = False

    def summary(self) -> str:
        if self.cold_start:
            head = "recovery: cold start (no usable checkpoint)"
        else:
            head = (
                f"recovery: checkpoint @ seq {self.checkpoint_seq} "
                f"(snapshot v{self.checkpoint_version}, "
                f"{self.checkpoint_answers} answers)"
            )
        tail = f", replayed {self.replayed_events} journal events"
        if self.corrupt_checkpoints_skipped:
            tail += f", skipped {self.corrupt_checkpoints_skipped} corrupt checkpoints"
        if self.torn_tail:
            tail += ", dropped a torn journal tail"
        return head + tail


def recover_ingestor(
    state_dir: str | Path,
    *,
    inference: "LocationAwareInference",
    snapshots: "SnapshotStore",
    ingest_config: "IngestConfig | None" = None,
    answers: AnswerSet | None = None,
    guard: "EventGuard | None" = None,
    faults: "FaultInjector | None" = None,
    journal_fsync: bool = False,
    journal_segment_records: int = 1024,
    tracer: "Tracer | None" = None,
    reputation: "ReputationTracker | None" = None,
) -> tuple["AnswerIngestor", RecoveryReport]:
    """Rebuild a crashed serving session's ingestion state from ``state_dir``.

    ``inference`` must be a freshly built model over the *startup* universe
    (the same one the crashed run started with); entities it learned
    mid-stream are restored from the checkpoint and from journal payloads.
    The returned ingestor is fully wired to the state directory's journal and
    checkpoint manager, so the resumed session keeps journaling/checkpointing
    from where the crashed one stopped.

    Recovery sequence: newest valid checkpoint (corrupt ones are skipped) →
    re-register checkpointed entities → warm-start the estimate from the
    checkpointed store → rebuild the live tensor/store from the checkpointed
    answer log (bit-equal to the crashed run's) → replay the journal tail
    through the ordinary micro-batch path.  The resulting live store matches
    an uncrashed run over the same event stream to ≤1e-9.
    """
    from repro.serving.ingest import AnswerIngestor
    from repro.serving.snapshots import CheckpointManager, ParameterSnapshot

    state_dir = Path(state_dir)
    report = RecoveryReport()
    checkpoints = CheckpointManager(state_dir / "checkpoints")
    state, skipped = checkpoints.load_latest()
    report.corrupt_checkpoints_skipped = skipped

    if state is not None:
        for worker in state.workers:
            inference.add_worker(worker)
        for task in state.tasks:
            inference.add_task(task)
        inference.warm_start(state.store)
        snapshots.adopt(
            ParameterSnapshot(
                version=state.snapshot_version,
                store=state.store.copy().freeze(),
                published_at=state.published_at,
                source="restore",
            )
        )
        report.checkpoint_seq = state.journal_seq
        report.checkpoint_version = state.snapshot_version
        report.checkpoint_answers = len(state.answers)
    else:
        report.cold_start = True

    journal = AnswerJournal(
        state_dir / "journal",
        max_segment_records=journal_segment_records,
        fsync=journal_fsync,
    )
    ingestor = AnswerIngestor(
        inference,
        snapshots,
        config=ingest_config,
        answers=answers,
        journal=journal,
        guard=guard,
        faults=faults,
        checkpoints=checkpoints,
        tracer=tracer,
        reputation=reputation,
    )
    if state is not None:
        ingestor.restore(state)
    for seq, event in journal.replay(after=report.checkpoint_seq):
        ingestor.replay_event(seq, event)
        report.replayed_events += 1
    report.torn_tail = journal.stats.torn_records_dropped > 0
    return ingestor, report
