"""The assignment frontend: live task assignment against published snapshots.

When a worker arrives, the frontend asks its assignment strategy (AccOpt,
uncertainty-first, spatial-first or random — built through
:func:`repro.assign.build_assigner`) for that worker's HIT, computed against
the **latest published snapshot** rather than the live inference object: the
ingestion layer may be mid-update at any moment, and snapshots are the
read-side boundary that makes that safe.

Parameters are pushed into the assigner only when the snapshot version
actually changed since the last request (assigners keep their own
:class:`~repro.core.params.ModelParameters` reference), and every request
records its wall-clock latency so the service can report p50/p95 assignment
latencies — the paper's Figure 14 concern, measured on the serving path.
AccOpt requests run on the batched ΔAcc kernels
(:mod:`repro.core.accuracy_kernel`) by default; ``engine="reference"``
selects the scalar oracle path instead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.assign import build_assigner
from repro.data.models import AnswerSet, Task, Worker
from repro.obs.metrics import Histogram
from repro.obs.trace import Tracer
from repro.serving.snapshots import SnapshotStore
from repro.spatial.distance import DistanceModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.guard import ReputationTracker

#: Version reported while no snapshot has been published yet.
NO_SNAPSHOT = -1

#: Latency samples retained by :class:`LatencyReservoir` — percentiles are
#: exact up to this many requests, a uniform random sample beyond it.
LATENCY_RESERVOIR_SIZE = 4096


class LatencyReservoir:
    """Bounded uniform sample of latency observations (Vitter's Algorithm R).

    A long-lived frontend serves an unbounded number of requests; keeping
    every latency sample is O(requests) memory for percentile reporting that
    a fixed-size sample answers just as well.  The reservoir keeps the first
    ``capacity`` observations verbatim — percentiles are **exact** below the
    cap — and from then on each new observation replaces a uniformly random
    retained one with probability ``capacity / n``, yielding an unbiased
    uniform sample of the whole stream.  Replacement draws use a dedicated
    seeded generator so reported percentiles are reproducible run to run.
    """

    __slots__ = ("_capacity", "_samples", "_count", "_rng")

    def __init__(self, capacity: int = LATENCY_RESERVOIR_SIZE, seed: int = 0x1A7E) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._samples: list[float] = []
        self._count = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        """Number of retained samples (≤ capacity)."""
        return len(self._samples)

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Total observations ever recorded (retained or not)."""
        return self._count

    @property
    def samples(self) -> list[float]:
        """The retained samples, in no particular order."""
        return self._samples

    @property
    def saturated(self) -> bool:
        """Whether observations have started displacing retained samples."""
        return self._count > self._capacity

    def add(self, value: float) -> None:
        self._count += 1
        if len(self._samples) < self._capacity:
            self._samples.append(float(value))
            return
        slot = int(self._rng.integers(self._count))
        if slot < self._capacity:
            self._samples[slot] = float(value)

    def percentile(self, percentile: float) -> float:
        """Latency percentile over the retained sample.

        Contract: an empty reservoir returns exactly ``0.0`` — never ``NaN``
        and never a division error — so rate/latency reporting is total.
        """
        if not self._samples:
            return 0.0
        return float(np.percentile(self._samples, percentile))


@dataclass(frozen=True)
class AssignmentResponse:
    """Outcome of one assignment request."""

    worker_id: str
    task_ids: tuple[str, ...]
    snapshot_version: int
    latency_ms: float
    #: Age of the snapshot this response was computed against, measured from
    #: that snapshot's own monotonic publish stamp at serve time (clamped at
    #: 0; 0.0 when no snapshot existed yet).
    snapshot_age_s: float = 0.0


@dataclass
class FrontendStats:
    """Aggregate request counters plus a bounded latency reservoir.

    ``latencies`` holds at most :data:`LATENCY_RESERVOIR_SIZE` samples —
    exact percentiles below the cap, an unbiased uniform sample of the whole
    request stream beyond it — so a long-lived frontend's stats stay O(1)
    in the number of requests served.
    """

    requests: int = 0
    tasks_assigned: int = 0
    empty_responses: int = 0
    parameter_refreshes: int = 0
    #: Requests served while the snapshot store was marked degraded — the
    #: update path was failing and the response came off the last good
    #: snapshot instead of a fresh estimate.  Nonzero means the frontend kept
    #: answering through a fault storm; it never raises for staleness.
    stale_serves: int = 0
    #: Requests from quarantined workers refused with an empty HIT — the
    #: reputation tracker demoted the worker and the frontend stopped spending
    #: assignment budget on them (they may still be serving probation answers
    #: through the ingest path at reduced weight).
    blocked_requests: int = 0
    #: Assignments where one optimiser-picked task was swapped for the
    #: worker's nearest unanswered task (a trust probe).
    probes: int = 0
    latencies: LatencyReservoir = field(default_factory=LatencyReservoir)

    @property
    def latencies_ms(self) -> list[float]:
        """The retained latency samples (compatibility view of the reservoir)."""
        return self.latencies.samples

    def latency_percentile(self, percentile: float) -> float:
        """Latency percentile in milliseconds.

        Contract: exactly ``0.0`` when no requests were served (empty
        reservoir) — never ``NaN`` or a raised error.
        """
        return self.latencies.percentile(percentile)

    @property
    def p50_latency_ms(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p95_latency_ms(self) -> float:
        return self.latency_percentile(95.0)


class AssignmentFrontend:
    """Serves per-worker assignments computed against the latest snapshot."""

    def __init__(
        self,
        tasks: list[Task],
        workers: list[Worker],
        distance_model: DistanceModel,
        snapshots: SnapshotStore,
        strategy: str = "accopt",
        seed: int | None = None,
        engine: str = "vectorized",
        tracer: Tracer | None = None,
        candidate_radius: float | None = None,
        reputation: "ReputationTracker | None" = None,
        probe_interval: int = 0,
    ) -> None:
        self._assigner = build_assigner(
            strategy,
            tasks,
            workers,
            distance_model=distance_model,
            seed=seed,
            engine=engine,
            candidate_radius=candidate_radius,
            metrics=tracer.metrics if tracer is not None else None,
        )
        self._snapshots = snapshots
        self._strategy = strategy
        self._seen_version: int | None = None
        self._reputation = reputation
        # Trust probes: every ``probe_interval``-th request per worker swaps
        # one optimiser-picked task for the worker's nearest unanswered task.
        # Near-task behaviour is the only evidence that separates a *local*
        # honest profile from an adversarial coin (far from a task, both are
        # statistically coins under the paper's bell-function family), so the
        # platform has to actively collect it for every worker — the
        # optimiser alone can starve a worker of near tasks indefinitely.
        self._probe_interval = probe_interval
        self._distance_model = distance_model
        self._probe_tasks: dict[str, Task] = {t.task_id: t for t in tasks}
        self._probe_workers: dict[str, Worker] = {w.worker_id: w for w in workers}
        # Tracker version whose quarantine set was last pushed into the
        # assigner's exclusion list; synced lazily per request.
        self._seen_reputation_version: int | None = None
        self._stats = FrontendStats()
        # The registry histogram is the authoritative percentile source when
        # telemetry is wired; the reservoir stays as a compatibility view.
        self._tracer = tracer
        self._latency_hist: Histogram | None = None
        self._age_hist: Histogram | None = None
        if tracer is not None and tracer.metrics is not None:
            self._latency_hist = tracer.metrics.histogram("assign_latency_seconds")
            self._age_hist = tracer.metrics.histogram("snapshot_age_at_serve_seconds")

    @property
    def strategy(self) -> str:
        return self._strategy

    @property
    def stats(self) -> FrontendStats:
        return self._stats

    @property
    def seen_version(self) -> int | None:
        """Version of the snapshot the assigner's parameters came from."""
        return self._seen_version

    def latency_percentile_ms(self, percentile: float) -> float:
        """Assignment latency percentile in milliseconds (0.0 before any request).

        Prefers the registry histogram (exact counts over the whole request
        stream) and falls back to the reservoir's retained sample when the
        frontend runs without telemetry.
        """
        if self._latency_hist is not None and self._latency_hist.count > 0:
            return self._latency_hist.percentile(percentile) * 1000.0
        return self._stats.latency_percentile(percentile)

    # --------------------------------------------------------- open-world growth
    def add_task(self, task: Task) -> bool:
        """Admit a task posted after startup into the assignment universe.

        The strategy's task-side structures (including the accuracy kernel's
        cached distance matrix for AccOpt) grow with it; until the inference
        catches up, the new task scores with its footnote-3 prior.
        """
        admitted = self._assigner.add_task(task)
        if admitted:
            self._probe_tasks[task.task_id] = task
        return admitted

    def add_worker(self, worker: Worker) -> bool:
        """Admit a worker who joined after startup into the assignment universe."""
        admitted = self._assigner.add_worker(worker)
        if admitted:
            self._probe_workers[worker.worker_id] = worker
        return admitted

    # ------------------------------------------------------------ trust probes
    def _maybe_probe(
        self, worker_id: str, h: int, task_ids: tuple[str, ...], answers: AnswerSet
    ) -> tuple[str, ...]:
        """Swap the last optimiser pick for the nearest unanswered task.

        Fires on every ``probe_interval``-th request per worker, counted as a
        pure function of the worker's *answered-task* total (``len(answered)
        // h``), not in-memory request counters — a recovered session derives
        the identical probe schedule from the replayed answer log.
        """
        answered = answers.tasks_of_worker(worker_id)
        if (len(answered) // max(h, 1)) % self._probe_interval != 0:
            return task_ids
        worker = self._probe_workers.get(worker_id)
        if worker is None:
            return task_ids
        best_id: str | None = None
        best_distance = float("inf")
        for task_id, task in self._probe_tasks.items():
            if task_id in answered:
                continue
            distance = self._distance_model.worker_task_distance(
                worker.locations, task.location
            )
            if distance < best_distance:
                best_id, best_distance = task_id, distance
        if best_id is None or best_id in task_ids:
            return task_ids
        self._stats.probes += 1
        return task_ids[:-1] + (best_id,)

    def assign(self, worker_id: str, h: int, answers: AnswerSet) -> AssignmentResponse:
        """Assign up to ``h`` tasks to the arriving ``worker_id``.

        Before any snapshot exists the assigner runs on its optimistic priors
        (the paper's footnote-3 cold start); afterwards it always reflects the
        latest published version.  While the snapshot store is degraded (the
        update path is failing) the frontend keeps serving off the last good
        snapshot and counts the request as a stale serve — degraded mode
        trades freshness for availability, never raising at the read side.
        """
        started = time.perf_counter()
        if self._reputation is not None:
            if self._reputation.version != self._seen_reputation_version:
                self._assigner.set_excluded_workers(self._reputation.quarantined_ids)
                self._seen_reputation_version = self._reputation.version
            if self._reputation.is_quarantined(worker_id):
                # Refuse the HIT outright: a quarantined worker's answers are
                # (at best) heavily down-weighted by the EM step, so spending
                # assignment budget on them buys nothing.  The request is
                # answered (empty), never raised, and counted separately from
                # assigner-empty responses.
                snapshot = self._snapshots.latest()
                self._stats.requests += 1
                self._stats.blocked_requests += 1
                return AssignmentResponse(
                    worker_id=worker_id,
                    task_ids=(),
                    snapshot_version=(
                        snapshot.version if snapshot is not None else NO_SNAPSHOT
                    ),
                    latency_ms=(time.perf_counter() - started) * 1000.0,
                )
        snapshot = self._snapshots.latest()
        if self._snapshots.degraded:
            self._stats.stale_serves += 1
        version = NO_SNAPSHOT
        if snapshot is not None:
            version = snapshot.version
            if snapshot.version != self._seen_version:
                self._assigner.update_parameters(snapshot.as_model())
                self._seen_version = snapshot.version
                self._stats.parameter_refreshes += 1
        assignment = self._assigner.assign([worker_id], h, answers)
        task_ids = tuple(assignment.get(worker_id, ()))
        if self._probe_interval > 0 and task_ids:
            task_ids = self._maybe_probe(worker_id, h, task_ids, answers)
        latency_ms = (time.perf_counter() - started) * 1000.0

        # Age of the *served* snapshot — the one this request's parameters
        # came from, which a concurrent publish cannot retroactively change —
        # against its own monotonic stamp, clamped so clock granularity can
        # never report a negative age.
        age_s = 0.0
        if snapshot is not None:
            age_s = max(0.0, time.monotonic() - snapshot.published_wall)
        self._stats.requests += 1
        self._stats.tasks_assigned += len(task_ids)
        if not task_ids:
            self._stats.empty_responses += 1
        self._stats.latencies.add(latency_ms)
        if self._tracer is not None:
            self._tracer.record("assign", latency_ms / 1000.0)
            if self._latency_hist is not None:
                self._latency_hist.observe(latency_ms / 1000.0)
            if self._age_hist is not None and snapshot is not None:
                self._age_hist.observe(age_s)
        return AssignmentResponse(
            worker_id=worker_id,
            task_ids=task_ids,
            snapshot_version=version,
            latency_ms=latency_ms,
            snapshot_age_s=age_s,
        )
