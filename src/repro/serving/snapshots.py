"""Versioned, immutable parameter snapshots for the online serving path.

The ingestion layer mutates the inference model continuously (incremental EM
between periodic full re-fits), but the assignment frontend must never observe
a half-applied update.  :class:`SnapshotStore` decouples the two with a
copy-on-write publish protocol:

* :meth:`SnapshotStore.publish` deep-copies the
  :class:`~repro.core.params.ArrayParameterStore`, marks every array read-only
  and stamps the copy with a monotonically increasing version id — writers keep
  mutating their own store, readers keep whatever version they already hold;
* :meth:`SnapshotStore.publish_delta` is the **O(changed) publish**: instead
  of a full store copy, the new version records only a
  :class:`~repro.core.params.StoreDelta` (the dirty rows since the previous
  publish) on top of the previous snapshot as its immutable base.  The full
  array form is **materialised lazily** — on the first read of
  :attr:`ParameterSnapshot.store` the delta chain is applied onto the nearest
  materialised ancestor in one pass — so publishes a reader never looks at
  cost O(changed rows), and a read costs at most what a full-copy publish
  used to.  Chains are bounded (:attr:`SnapshotStore.max_delta_chain`):
  every so many delta publishes the new snapshot is materialised eagerly,
  keeping both materialisation latency and retained-history memory bounded;
* retention is bounded (:attr:`SnapshotStore.max_snapshots`): publishing past
  the cap drops the oldest versions, mirroring a production parameter server
  that keeps a short history for rollback (delta snapshots keep their base
  chain alive until materialised);
* :meth:`ParameterSnapshot.save` / :func:`load_snapshot` persist a snapshot to
  disk as a plain ``.npz`` archive (no pickling) so a service can restore its
  parameters across restarts; versions keep increasing across a restore.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.params import ArrayParameterStore, ModelParameters, StoreDelta
from repro.data.io import (
    answers_from_dict,
    answers_to_dict,
    tasks_from_dict,
    tasks_to_dict,
    workers_from_dict,
    workers_to_dict,
)
from repro.data.models import Answer, Task, Worker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry


class ParameterSnapshot:
    """One immutable, versioned copy of all model parameters.

    A snapshot is either **materialised** (it owns a frozen
    :class:`~repro.core.params.ArrayParameterStore`) or a **delta** recorded
    on top of a base snapshot; accessing :attr:`store` materialises a delta
    snapshot on first read by applying the delta chain onto the nearest
    materialised ancestor.  Either way the arrays handed out are frozen
    (read-only).  Consumers that need the id-oriented
    :class:`~repro.core.params.ModelParameters` view (the task assigners) call
    :meth:`as_model`, which converts lazily and caches — the same snapshot is
    typically read by many assignment requests.
    """

    __slots__ = (
        "version",
        "published_at",
        "published_wall",
        "source",
        "num_workers",
        "num_tasks",
        "_store",
        "_base",
        "_delta",
        "_model",
        "_lock",
    )

    def __init__(
        self,
        version: int,
        store: ArrayParameterStore | None = None,
        published_at: float = 0.0,
        source: str = "publish",
        base: "ParameterSnapshot | None" = None,
        delta: StoreDelta | None = None,
    ) -> None:
        if version < 0:
            raise ValueError(f"version must be non-negative, got {version}")
        if (store is None) == (base is None or delta is None):
            raise ValueError(
                "a snapshot needs either a store or a (base, delta) pair"
            )
        self.version = version
        self.published_at = published_at
        #: Monotonic wall-clock stamp of creation, for snapshot-age-at-serve.
        self.published_wall = time.monotonic()
        self.source = source
        self._store = store
        self._base = base
        self._delta = delta
        if store is not None:
            self.num_workers = store.num_workers
            self.num_tasks = store.num_tasks
        else:
            self.num_workers = delta.num_workers
            self.num_tasks = delta.num_tasks
        self._model: ModelParameters | None = None
        # Reentrant: as_model() materialises the store under the same lock.
        self._lock = threading.RLock()

    def __repr__(self) -> str:
        kind = "delta" if self._store is None else "full"
        return (
            f"ParameterSnapshot(version={self.version}, "
            f"workers={self.num_workers}, tasks={self.num_tasks}, "
            f"source={self.source!r}, {kind})"
        )

    @property
    def materialized(self) -> bool:
        """Whether the full array form already exists (no chain walk on read)."""
        return self._store is not None

    @property
    def store(self) -> ArrayParameterStore:
        """The full array form of this version, materialising it on first read.

        For a delta snapshot this copies the nearest materialised ancestor
        once and applies every delta up the chain (oldest first) — O(universe)
        on the first read, cached afterwards, and never paid for versions no
        reader looks at.  Every delta is row/shape-validated against the base
        as it is applied; a chain that does not fit its base raises
        :class:`~repro.serving.SnapshotIntegrityError` instead of patching
        the wrong rows.

        Thread-safe: concurrent first reads materialise once, under the
        snapshot's own lock (the lock-free fast path covers every later
        read — ``_store`` is only ever written while holding the lock and
        never reset).
        """
        store = self._store
        if store is not None:
            return store
        with self._lock:
            if self._store is None:
                from repro.serving import SnapshotIntegrityError

                # Walk the base chain capturing (version, delta) pairs.  An
                # ancestor may be materialising concurrently under its *own*
                # lock (it sets ``_store`` first, then clears ``_base`` and
                # ``_delta``), so each node's fields are captured base/delta
                # before store: if the store read comes back non-None the
                # captured pair is simply unused — the materialised array
                # already includes that delta.
                deltas: list[tuple[int, StoreDelta]] = [(self.version, self._delta)]
                node = self._base
                while True:
                    base = node._base
                    delta = node._delta
                    store = node._store
                    if store is not None:
                        base_version = node.version
                        out = store.copy()
                        break
                    deltas.append((node.version, delta))
                    node = base
                for version, delta in reversed(deltas):
                    try:
                        delta.apply(out)
                    except (ValueError, IndexError) as error:
                        raise SnapshotIntegrityError(
                            f"materialising snapshot version {self.version} failed: "
                            f"the delta of version {version} does not fit "
                            f"its base (version {base_version}): {error}. The "
                            "delta chain is inconsistent — republish a full "
                            "snapshot instead of reading this version."
                        ) from error
                self._store = out.freeze()
                self._base = None
                self._delta = None
            return self._store

    def as_model(self) -> ModelParameters:
        """The dict-of-dataclasses view of this snapshot (converted once).

        The returned object is shared between callers; treat it as read-only,
        like the snapshot itself.  Thread-safe: concurrent first calls convert
        once (double-checked under the snapshot lock).
        """
        model = self._model
        if model is not None:
            return model
        with self._lock:
            if self._model is None:
                self._model = self.store.to_model()
            return self._model

    def save(self, path: str | Path) -> Path:
        """Persist the snapshot (parameters + version metadata) as ``.npz``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.store.to_npz_dict()
        payload["snapshot_version"] = np.asarray(self.version, dtype=np.int64)
        payload["published_at"] = np.asarray(self.published_at, dtype=float)
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        return path


def load_snapshot(path: str | Path) -> ParameterSnapshot:
    """Restore a snapshot written by :meth:`ParameterSnapshot.save`.

    The archive is integrity-checked on the way in (readable ``.npz``, all
    required arrays present, the store's ragged layout and probability ranges
    coherent); any violation raises
    :class:`~repro.serving.SnapshotIntegrityError` naming the file, instead
    of handing a half-read store to the serving path.
    """
    from repro.serving import SnapshotIntegrityError

    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            store = ArrayParameterStore.from_npz_dict(data).validate()
            version = int(np.asarray(data["snapshot_version"]))
            published_at = float(np.asarray(data["published_at"]))
    except SnapshotIntegrityError:
        raise
    except Exception as error:
        raise SnapshotIntegrityError(
            f"snapshot file {path} is unreadable or inconsistent: {error}. "
            "The file is corrupt or was not written by ParameterSnapshot.save; "
            "restore it from a backup or republish a snapshot."
        ) from error
    return ParameterSnapshot(
        version=version, store=store.freeze(), published_at=published_at, source="restore"
    )


class SnapshotStore:
    """Bounded history of published parameter snapshots, newest last."""

    #: Delta publishes allowed before the next one is materialised eagerly:
    #: bounds both the first-read materialisation latency and the memory held
    #: by unmaterialised history, at an amortised O(universe / cap) copy cost
    #: per publish.
    max_delta_chain = 16

    def __init__(
        self,
        max_snapshots: int = 8,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if max_snapshots <= 0:
            raise ValueError(f"max_snapshots must be positive, got {max_snapshots}")
        self._max_snapshots = max_snapshots
        self._metrics = metrics
        self._snapshots: list[ParameterSnapshot] = []
        self._next_version = 0
        self._chain_length = 0
        # One writer (the ingest thread) and many readers (assignment
        # frontends, the pipelined refresh worker's launch site): every
        # publish/adopt and every history read holds this.  Reentrant because
        # publish_delta() reads latest() while publishing.
        self._mutex = threading.RLock()
        # Degraded mode: set by the ingestion supervisor when updates keep
        # failing; readers keep serving the latest retained snapshot and the
        # frontend counts those serves as stale instead of raising.
        self._degraded_reason: str | None = None
        self._degraded_marks = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def max_snapshots(self) -> int:
        return self._max_snapshots

    @property
    def versions(self) -> list[int]:
        """Retained version ids, oldest first (strictly increasing)."""
        return [snapshot.version for snapshot in self._snapshots]

    @property
    def next_version(self) -> int:
        return self._next_version

    def bind_metrics(self, metrics: "MetricsRegistry") -> None:
        """Mirror publish kinds, chain depth, and degraded marks into ``metrics``."""
        self._metrics = metrics

    def _note_publish(self, kind: str) -> None:
        if self._metrics is not None:
            self._metrics.counter("snapshot_publishes_total", kind=kind).inc()
            self._metrics.gauge("snapshot_delta_chain_depth").set(self._chain_length)

    def publish(
        self,
        store: ArrayParameterStore,
        published_at: float = 0.0,
        source: str = "publish",
        copy: bool = True,
    ) -> ParameterSnapshot:
        """Copy-on-write publish of ``store`` as the next version.

        With ``copy=True`` (the default) the caller's store stays writable and
        is never aliased: the snapshot owns a frozen copy, so a reader holding
        version ``v`` is unaffected by any update applied after ``v`` was
        published.  A caller handing over a store it will never touch again
        (the ingestion layer's full-publish path) can pass ``copy=False`` to
        transfer ownership and skip the copy; the store is frozen in place
        either way.
        """
        with self._mutex:
            snapshot = ParameterSnapshot(
                version=self._next_version,
                store=(store.copy() if copy else store).freeze(),
                published_at=published_at,
                source=source,
            )
            self._chain_length = 0
            self._note_publish("full")
            return self._append(snapshot)

    def publish_delta(
        self,
        delta: StoreDelta,
        published_at: float = 0.0,
        source: str = "incremental",
    ) -> ParameterSnapshot:
        """O(changed) publish: record only the dirty rows on the latest base.

        The new version shares everything with the previous snapshot except
        the rows carried by ``delta``; the full array form is materialised
        only when (and if) a reader asks for it.  Requires a published base
        over the same entity universe — callers fall back to :meth:`publish`
        on the first publish or whenever the universe changed.
        """
        with self._mutex:
            base = self.latest()
            if base is None:
                raise ValueError("cannot publish a delta before any full snapshot")
            if (base.num_workers, base.num_tasks) != (
                delta.num_workers,
                delta.num_tasks,
            ):
                raise ValueError(
                    f"delta universe {delta.num_workers} workers / {delta.num_tasks} "
                    f"tasks does not match the latest snapshot "
                    f"({base.num_workers} / {base.num_tasks})"
                )
            snapshot = ParameterSnapshot(
                version=self._next_version,
                published_at=published_at,
                source=source,
                base=base,
                delta=delta,
            )
            self._append(snapshot)
            self._chain_length += 1
            if self._chain_length >= self.max_delta_chain:
                snapshot.store  # materialise eagerly: bound the chain
                self._chain_length = 0
            self._note_publish("delta")
            return snapshot

    def _append(self, snapshot: ParameterSnapshot) -> ParameterSnapshot:
        self._next_version = snapshot.version + 1
        self._snapshots.append(snapshot)
        if len(self._snapshots) > self._max_snapshots:
            del self._snapshots[: len(self._snapshots) - self._max_snapshots]
        return snapshot

    def adopt(self, snapshot: ParameterSnapshot) -> ParameterSnapshot:
        """Insert a restored snapshot and keep versions monotonic.

        Used when a service restarts from disk: the loaded snapshot keeps its
        original version id and every later publish strictly increases from
        there.
        """
        with self._mutex:
            if self._snapshots and snapshot.version <= self._snapshots[-1].version:
                raise ValueError(
                    f"cannot adopt version {snapshot.version}: latest retained "
                    f"version is {self._snapshots[-1].version}"
                )
            self._snapshots.append(snapshot)
            self._next_version = max(self._next_version, snapshot.version + 1)
            self._chain_length = 0
            if len(self._snapshots) > self._max_snapshots:
                del self._snapshots[: len(self._snapshots) - self._max_snapshots]
            return snapshot

    # ---------------------------------------------------------- degraded mode
    @property
    def degraded(self) -> bool:
        """Whether the writer declared the latest snapshot stale (updates failing)."""
        return self._degraded_reason is not None

    @property
    def degraded_reason(self) -> str | None:
        return self._degraded_reason

    @property
    def degraded_marks(self) -> int:
        """How many times the store entered degraded mode over its lifetime."""
        return self._degraded_marks

    def mark_degraded(self, reason: str) -> None:
        """Declare the retained snapshots stale: the update path is failing.

        Readers are *not* cut off — the whole point of degraded mode is that
        the last good snapshot keeps serving — but the frontend counts serves
        made in this state (``FrontendStats.stale_serves``).  Idempotent while
        already degraded (one failure storm is one mark).
        """
        with self._mutex:
            if self._degraded_reason is None:
                self._degraded_marks += 1
                if self._metrics is not None:
                    self._metrics.counter("snapshot_degraded_marks_total").inc()
            self._degraded_reason = reason

    def clear_degraded(self) -> None:
        """Leave degraded mode: a publish succeeded, snapshots are fresh again."""
        self._degraded_reason = None

    def latest(self) -> ParameterSnapshot | None:
        """The most recently published snapshot, or ``None`` before the first."""
        with self._mutex:
            return self._snapshots[-1] if self._snapshots else None

    def get(self, version: int) -> ParameterSnapshot:
        """The retained snapshot with exactly ``version``; ``KeyError`` if evicted."""
        with self._mutex:
            for snapshot in reversed(self._snapshots):
                if snapshot.version == version:
                    return snapshot
            raise KeyError(
                f"snapshot version {version} is not retained "
                f"(have {self.versions}, retention {self._max_snapshots})"
            )


@dataclass
class CheckpointState:
    """Everything a checkpoint persists to rebuild the live serving state.

    ``store`` is the latest *published* snapshot's parameter store (live rows
    plus carried-over entities), ``answers`` is the live tensor's answer log
    exported in row order (rebuilding a tensor from it is bit-equal to the
    crashed run's — see
    :meth:`~repro.core.em_kernel.AnswerTensor.export_answers`), and
    ``workers``/``tasks`` carry the metadata of every entity registered in the
    inference model, so a resumed session can re-register mid-stream arrivals
    the startup universe never knew.  ``journal_seq`` is the newest journal
    record reflected in this state; recovery replays strictly after it.
    """

    store: ArrayParameterStore
    journal_seq: int
    snapshot_version: int
    published_at: float
    answers: list[Answer] = field(default_factory=list)
    workers: list[Worker] = field(default_factory=list)
    tasks: list[Task] = field(default_factory=list)
    answers_since_full_refresh: int = 0
    counters: dict = field(default_factory=dict)
    #: Free-form JSON-serializable state carried by optional subsystems
    #: (decayed-statistic epochs, reputation tiers, guard quarantine totals).
    #: Absent from checkpoints written before these subsystems existed —
    #: loading such a file yields an empty dict.
    extra: dict = field(default_factory=dict)


class CheckpointManager:
    """Durable, CRC-guarded checkpoints with bounded retention.

    One checkpoint is a single ``.npz`` archive (the parameter store's arrays
    plus JSON strings for the answer log, entity metadata and counters) and a
    ``.crc`` sidecar holding the CRC32 of the archive bytes.  :meth:`save`
    writes archive-then-sidecar, so a crash mid-checkpoint leaves a file that
    fails its CRC (or has none) and is skipped by :meth:`load_latest` —
    falling back to the previous checkpoint rather than restoring garbage.
    """

    def __init__(self, directory: str | Path, keep: int = 3) -> None:
        if keep <= 0:
            raise ValueError(f"keep must be positive, got {keep}")
        self._directory = Path(directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._keep = keep
        self.saves = 0

    @property
    def directory(self) -> Path:
        return self._directory

    def checkpoint_paths(self) -> list[Path]:
        """Existing checkpoint archives, oldest first."""
        return sorted(self._directory.glob("ckpt-*.npz"))

    def oldest_covered_seq(self) -> int:
        """Journal seq covered by the *oldest retained* checkpoint (0 if none).

        The journal may only be truncated up to this point: recovery skips
        corrupt checkpoints newest-first, so every retained checkpoint must
        still find its journal tail intact to be a usable fallback.
        """
        paths = self.checkpoint_paths()
        if not paths:
            return 0
        try:
            return int(paths[0].stem.split("-", 1)[1])
        except (IndexError, ValueError):
            return 0

    def save(self, state: CheckpointState) -> Path:
        """Persist ``state`` as ``ckpt-<journal_seq>.npz`` (+ CRC sidecar)."""
        path = self._directory / f"ckpt-{state.journal_seq:010d}.npz"
        payload = state.store.to_npz_dict()
        payload["journal_seq"] = np.asarray(state.journal_seq, dtype=np.int64)
        payload["snapshot_version"] = np.asarray(
            state.snapshot_version, dtype=np.int64
        )
        payload["published_at"] = np.asarray(state.published_at, dtype=float)
        payload["answers_since_full_refresh"] = np.asarray(
            state.answers_since_full_refresh, dtype=np.int64
        )
        from repro.data.models import AnswerSet as _AnswerSet

        payload["answers_json"] = np.asarray(
            json.dumps(answers_to_dict(_AnswerSet(state.answers))), dtype=np.str_
        )
        payload["workers_json"] = np.asarray(
            json.dumps(workers_to_dict(state.workers)), dtype=np.str_
        )
        payload["tasks_json"] = np.asarray(
            json.dumps(tasks_to_dict(state.tasks)), dtype=np.str_
        )
        payload["counters_json"] = np.asarray(
            json.dumps(state.counters), dtype=np.str_
        )
        payload["extra_json"] = np.asarray(
            json.dumps(state.extra), dtype=np.str_
        )
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        crc = zlib.crc32(path.read_bytes())
        path.with_suffix(".npz.crc").write_text(f"{crc:08x}\n", encoding="utf-8")
        self.saves += 1
        self._prune()
        return path

    def load(self, path: str | Path) -> CheckpointState:
        """Load one checkpoint, raising on any CRC or content violation."""
        from repro.serving import CheckpointCorruptionError

        path = Path(path)
        sidecar = path.with_suffix(".npz.crc")
        if not sidecar.exists():
            raise CheckpointCorruptionError(
                f"checkpoint {path.name} has no CRC sidecar — the save was "
                "interrupted before the checkpoint became durable; an older "
                "checkpoint (or a full journal replay) will be used instead."
            )
        try:
            expected = int(sidecar.read_text(encoding="utf-8").strip(), 16)
        except ValueError as error:
            raise CheckpointCorruptionError(
                f"checkpoint {path.name} has an unreadable CRC sidecar: {error}"
            ) from error
        actual = zlib.crc32(path.read_bytes())
        if actual != expected:
            raise CheckpointCorruptionError(
                f"checkpoint {path.name} fails its CRC "
                f"({actual:08x} != {expected:08x}) — the file is torn or "
                "rotten; recovery falls back to the previous checkpoint."
            )
        try:
            with np.load(path, allow_pickle=False) as data:
                store = ArrayParameterStore.from_npz_dict(data).validate()
                journal_seq = int(np.asarray(data["journal_seq"]))
                snapshot_version = int(np.asarray(data["snapshot_version"]))
                published_at = float(np.asarray(data["published_at"]))
                since_refresh = int(np.asarray(data["answers_since_full_refresh"]))
                answers = list(
                    answers_from_dict(json.loads(str(np.asarray(data["answers_json"]))))
                )
                workers = workers_from_dict(
                    json.loads(str(np.asarray(data["workers_json"])))
                )
                tasks = tasks_from_dict(
                    json.loads(str(np.asarray(data["tasks_json"])))
                )
                counters = json.loads(str(np.asarray(data["counters_json"])))
                extra = (
                    json.loads(str(np.asarray(data["extra_json"])))
                    if "extra_json" in data.files
                    else {}
                )
        except CheckpointCorruptionError:
            raise
        except Exception as error:
            raise CheckpointCorruptionError(
                f"checkpoint {path.name} passed its CRC but cannot be decoded "
                f"({error}) — the format is damaged or from an incompatible "
                "version; recovery falls back to the previous checkpoint."
            ) from error
        return CheckpointState(
            store=store,
            journal_seq=journal_seq,
            snapshot_version=snapshot_version,
            published_at=published_at,
            answers=answers,
            workers=workers,
            tasks=tasks,
            answers_since_full_refresh=since_refresh,
            counters=counters,
            extra=extra,
        )

    def load_latest(self) -> tuple[CheckpointState | None, int]:
        """The newest loadable checkpoint, skipping corrupt ones.

        Returns ``(state, corrupt_skipped)``; ``state`` is ``None`` when no
        checkpoint is usable (cold start).
        """
        from repro.serving import CheckpointCorruptionError

        skipped = 0
        for path in reversed(self.checkpoint_paths()):
            try:
                return self.load(path), skipped
            except CheckpointCorruptionError:
                skipped += 1
        return None, skipped

    def _prune(self) -> None:
        paths = self.checkpoint_paths()
        for path in paths[: max(0, len(paths) - self._keep)]:
            path.unlink(missing_ok=True)
            path.with_suffix(".npz.crc").unlink(missing_ok=True)
