"""Versioned, immutable parameter snapshots for the online serving path.

The ingestion layer mutates the inference model continuously (incremental EM
between periodic full re-fits), but the assignment frontend must never observe
a half-applied update.  :class:`SnapshotStore` decouples the two with a
copy-on-write publish protocol:

* :meth:`SnapshotStore.publish` deep-copies the
  :class:`~repro.core.params.ArrayParameterStore`, marks every array read-only
  and stamps the copy with a monotonically increasing version id — writers keep
  mutating their own store, readers keep whatever version they already hold;
* :meth:`SnapshotStore.publish_delta` is the **O(changed) publish**: instead
  of a full store copy, the new version records only a
  :class:`~repro.core.params.StoreDelta` (the dirty rows since the previous
  publish) on top of the previous snapshot as its immutable base.  The full
  array form is **materialised lazily** — on the first read of
  :attr:`ParameterSnapshot.store` the delta chain is applied onto the nearest
  materialised ancestor in one pass — so publishes a reader never looks at
  cost O(changed rows), and a read costs at most what a full-copy publish
  used to.  Chains are bounded (:attr:`SnapshotStore.max_delta_chain`):
  every so many delta publishes the new snapshot is materialised eagerly,
  keeping both materialisation latency and retained-history memory bounded;
* retention is bounded (:attr:`SnapshotStore.max_snapshots`): publishing past
  the cap drops the oldest versions, mirroring a production parameter server
  that keeps a short history for rollback (delta snapshots keep their base
  chain alive until materialised);
* :meth:`ParameterSnapshot.save` / :func:`load_snapshot` persist a snapshot to
  disk as a plain ``.npz`` archive (no pickling) so a service can restore its
  parameters across restarts; versions keep increasing across a restore.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.params import ArrayParameterStore, ModelParameters, StoreDelta


class ParameterSnapshot:
    """One immutable, versioned copy of all model parameters.

    A snapshot is either **materialised** (it owns a frozen
    :class:`~repro.core.params.ArrayParameterStore`) or a **delta** recorded
    on top of a base snapshot; accessing :attr:`store` materialises a delta
    snapshot on first read by applying the delta chain onto the nearest
    materialised ancestor.  Either way the arrays handed out are frozen
    (read-only).  Consumers that need the id-oriented
    :class:`~repro.core.params.ModelParameters` view (the task assigners) call
    :meth:`as_model`, which converts lazily and caches — the same snapshot is
    typically read by many assignment requests.
    """

    __slots__ = (
        "version",
        "published_at",
        "source",
        "num_workers",
        "num_tasks",
        "_store",
        "_base",
        "_delta",
        "_model",
    )

    def __init__(
        self,
        version: int,
        store: ArrayParameterStore | None = None,
        published_at: float = 0.0,
        source: str = "publish",
        base: "ParameterSnapshot | None" = None,
        delta: StoreDelta | None = None,
    ) -> None:
        if version < 0:
            raise ValueError(f"version must be non-negative, got {version}")
        if (store is None) == (base is None or delta is None):
            raise ValueError(
                "a snapshot needs either a store or a (base, delta) pair"
            )
        self.version = version
        self.published_at = published_at
        self.source = source
        self._store = store
        self._base = base
        self._delta = delta
        if store is not None:
            self.num_workers = store.num_workers
            self.num_tasks = store.num_tasks
        else:
            self.num_workers = delta.num_workers
            self.num_tasks = delta.num_tasks
        self._model: ModelParameters | None = None

    def __repr__(self) -> str:
        kind = "delta" if self._store is None else "full"
        return (
            f"ParameterSnapshot(version={self.version}, "
            f"workers={self.num_workers}, tasks={self.num_tasks}, "
            f"source={self.source!r}, {kind})"
        )

    @property
    def materialized(self) -> bool:
        """Whether the full array form already exists (no chain walk on read)."""
        return self._store is not None

    @property
    def store(self) -> ArrayParameterStore:
        """The full array form of this version, materialising it on first read.

        For a delta snapshot this copies the nearest materialised ancestor
        once and applies every delta up the chain (oldest first) — O(universe)
        on the first read, cached afterwards, and never paid for versions no
        reader looks at.
        """
        if self._store is None:
            chain: list[ParameterSnapshot] = [self]
            node = self._base
            while node._store is None:
                chain.append(node)
                node = node._base
            out = node._store.copy()
            for snapshot in reversed(chain):
                snapshot._delta.apply(out)
            self._store = out.freeze()
            self._base = None
            self._delta = None
        return self._store

    def as_model(self) -> ModelParameters:
        """The dict-of-dataclasses view of this snapshot (converted once).

        The returned object is shared between callers; treat it as read-only,
        like the snapshot itself.
        """
        if self._model is None:
            self._model = self.store.to_model()
        return self._model

    def save(self, path: str | Path) -> Path:
        """Persist the snapshot (parameters + version metadata) as ``.npz``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.store.to_npz_dict()
        payload["snapshot_version"] = np.asarray(self.version, dtype=np.int64)
        payload["published_at"] = np.asarray(self.published_at, dtype=float)
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        return path


def load_snapshot(path: str | Path) -> ParameterSnapshot:
    """Restore a snapshot written by :meth:`ParameterSnapshot.save`."""
    with np.load(Path(path), allow_pickle=False) as data:
        store = ArrayParameterStore.from_npz_dict(data)
        version = int(np.asarray(data["snapshot_version"]))
        published_at = float(np.asarray(data["published_at"]))
    return ParameterSnapshot(
        version=version, store=store.freeze(), published_at=published_at, source="restore"
    )


class SnapshotStore:
    """Bounded history of published parameter snapshots, newest last."""

    #: Delta publishes allowed before the next one is materialised eagerly:
    #: bounds both the first-read materialisation latency and the memory held
    #: by unmaterialised history, at an amortised O(universe / cap) copy cost
    #: per publish.
    max_delta_chain = 16

    def __init__(self, max_snapshots: int = 8) -> None:
        if max_snapshots <= 0:
            raise ValueError(f"max_snapshots must be positive, got {max_snapshots}")
        self._max_snapshots = max_snapshots
        self._snapshots: list[ParameterSnapshot] = []
        self._next_version = 0
        self._chain_length = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def max_snapshots(self) -> int:
        return self._max_snapshots

    @property
    def versions(self) -> list[int]:
        """Retained version ids, oldest first (strictly increasing)."""
        return [snapshot.version for snapshot in self._snapshots]

    @property
    def next_version(self) -> int:
        return self._next_version

    def publish(
        self,
        store: ArrayParameterStore,
        published_at: float = 0.0,
        source: str = "publish",
        copy: bool = True,
    ) -> ParameterSnapshot:
        """Copy-on-write publish of ``store`` as the next version.

        With ``copy=True`` (the default) the caller's store stays writable and
        is never aliased: the snapshot owns a frozen copy, so a reader holding
        version ``v`` is unaffected by any update applied after ``v`` was
        published.  A caller handing over a store it will never touch again
        (the ingestion layer's full-publish path) can pass ``copy=False`` to
        transfer ownership and skip the copy; the store is frozen in place
        either way.
        """
        snapshot = ParameterSnapshot(
            version=self._next_version,
            store=(store.copy() if copy else store).freeze(),
            published_at=published_at,
            source=source,
        )
        self._chain_length = 0
        return self._append(snapshot)

    def publish_delta(
        self,
        delta: StoreDelta,
        published_at: float = 0.0,
        source: str = "incremental",
    ) -> ParameterSnapshot:
        """O(changed) publish: record only the dirty rows on the latest base.

        The new version shares everything with the previous snapshot except
        the rows carried by ``delta``; the full array form is materialised
        only when (and if) a reader asks for it.  Requires a published base
        over the same entity universe — callers fall back to :meth:`publish`
        on the first publish or whenever the universe changed.
        """
        base = self.latest()
        if base is None:
            raise ValueError("cannot publish a delta before any full snapshot")
        if (base.num_workers, base.num_tasks) != (delta.num_workers, delta.num_tasks):
            raise ValueError(
                f"delta universe {delta.num_workers} workers / {delta.num_tasks} "
                f"tasks does not match the latest snapshot "
                f"({base.num_workers} / {base.num_tasks})"
            )
        snapshot = ParameterSnapshot(
            version=self._next_version,
            published_at=published_at,
            source=source,
            base=base,
            delta=delta,
        )
        self._append(snapshot)
        self._chain_length += 1
        if self._chain_length >= self.max_delta_chain:
            snapshot.store  # materialise eagerly: bound the chain
            self._chain_length = 0
        return snapshot

    def _append(self, snapshot: ParameterSnapshot) -> ParameterSnapshot:
        self._next_version = snapshot.version + 1
        self._snapshots.append(snapshot)
        if len(self._snapshots) > self._max_snapshots:
            del self._snapshots[: len(self._snapshots) - self._max_snapshots]
        return snapshot

    def adopt(self, snapshot: ParameterSnapshot) -> ParameterSnapshot:
        """Insert a restored snapshot and keep versions monotonic.

        Used when a service restarts from disk: the loaded snapshot keeps its
        original version id and every later publish strictly increases from
        there.
        """
        if self._snapshots and snapshot.version <= self._snapshots[-1].version:
            raise ValueError(
                f"cannot adopt version {snapshot.version}: latest retained version "
                f"is {self._snapshots[-1].version}"
            )
        self._snapshots.append(snapshot)
        self._next_version = max(self._next_version, snapshot.version + 1)
        self._chain_length = 0
        if len(self._snapshots) > self._max_snapshots:
            del self._snapshots[: len(self._snapshots) - self._max_snapshots]
        return snapshot

    def latest(self) -> ParameterSnapshot | None:
        """The most recently published snapshot, or ``None`` before the first."""
        return self._snapshots[-1] if self._snapshots else None

    def get(self, version: int) -> ParameterSnapshot:
        """The retained snapshot with exactly ``version``; ``KeyError`` if evicted."""
        for snapshot in reversed(self._snapshots):
            if snapshot.version == version:
                return snapshot
        raise KeyError(
            f"snapshot version {version} is not retained "
            f"(have {self.versions}, retention {self._max_snapshots})"
        )
