"""Versioned, immutable parameter snapshots for the online serving path.

The ingestion layer mutates the inference model continuously (incremental EM
between periodic full re-fits), but the assignment frontend must never observe
a half-applied update.  :class:`SnapshotStore` decouples the two with a
copy-on-write publish protocol:

* :meth:`SnapshotStore.publish` deep-copies the
  :class:`~repro.core.params.ArrayParameterStore`, marks every array read-only
  and stamps the copy with a monotonically increasing version id — writers keep
  mutating their own store, readers keep whatever version they already hold;
* retention is bounded (:attr:`SnapshotStore.max_snapshots`): publishing past
  the cap drops the oldest versions, mirroring a production parameter server
  that keeps a short history for rollback;
* :meth:`ParameterSnapshot.save` / :func:`load_snapshot` persist a snapshot to
  disk as a plain ``.npz`` archive (no pickling) so a service can restore its
  parameters across restarts; versions keep increasing across a restore.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.params import ArrayParameterStore, ModelParameters


class ParameterSnapshot:
    """One immutable, versioned copy of all model parameters.

    The wrapped :class:`~repro.core.params.ArrayParameterStore` has every
    array frozen (read-only); consumers that need the id-oriented
    :class:`~repro.core.params.ModelParameters` view (the task assigners) call
    :meth:`as_model`, which converts lazily and caches — the same snapshot is
    typically read by many assignment requests.
    """

    __slots__ = ("version", "store", "published_at", "source", "_model")

    def __init__(
        self,
        version: int,
        store: ArrayParameterStore,
        published_at: float = 0.0,
        source: str = "publish",
    ) -> None:
        if version < 0:
            raise ValueError(f"version must be non-negative, got {version}")
        self.version = version
        self.store = store
        self.published_at = published_at
        self.source = source
        self._model: ModelParameters | None = None

    def __repr__(self) -> str:
        return (
            f"ParameterSnapshot(version={self.version}, "
            f"workers={self.store.num_workers}, tasks={self.store.num_tasks}, "
            f"source={self.source!r})"
        )

    def as_model(self) -> ModelParameters:
        """The dict-of-dataclasses view of this snapshot (converted once).

        The returned object is shared between callers; treat it as read-only,
        like the snapshot itself.
        """
        if self._model is None:
            self._model = self.store.to_model()
        return self._model

    def save(self, path: str | Path) -> Path:
        """Persist the snapshot (parameters + version metadata) as ``.npz``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self.store.to_npz_dict()
        payload["snapshot_version"] = np.asarray(self.version, dtype=np.int64)
        payload["published_at"] = np.asarray(self.published_at, dtype=float)
        with open(path, "wb") as handle:
            np.savez(handle, **payload)
        return path


def load_snapshot(path: str | Path) -> ParameterSnapshot:
    """Restore a snapshot written by :meth:`ParameterSnapshot.save`."""
    with np.load(Path(path), allow_pickle=False) as data:
        store = ArrayParameterStore.from_npz_dict(data)
        version = int(np.asarray(data["snapshot_version"]))
        published_at = float(np.asarray(data["published_at"]))
    return ParameterSnapshot(
        version=version, store=store.freeze(), published_at=published_at, source="restore"
    )


class SnapshotStore:
    """Bounded history of published parameter snapshots, newest last."""

    def __init__(self, max_snapshots: int = 8) -> None:
        if max_snapshots <= 0:
            raise ValueError(f"max_snapshots must be positive, got {max_snapshots}")
        self._max_snapshots = max_snapshots
        self._snapshots: list[ParameterSnapshot] = []
        self._next_version = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    @property
    def max_snapshots(self) -> int:
        return self._max_snapshots

    @property
    def versions(self) -> list[int]:
        """Retained version ids, oldest first (strictly increasing)."""
        return [snapshot.version for snapshot in self._snapshots]

    @property
    def next_version(self) -> int:
        return self._next_version

    def publish(
        self,
        store: ArrayParameterStore,
        published_at: float = 0.0,
        source: str = "publish",
        copy: bool = True,
    ) -> ParameterSnapshot:
        """Copy-on-write publish of ``store`` as the next version.

        With ``copy=True`` (the default) the caller's store stays writable and
        is never aliased: the snapshot owns a frozen copy, so a reader holding
        version ``v`` is unaffected by any update applied after ``v`` was
        published.  A caller handing over a store it will never touch again
        (the ingestion layer flattens a fresh one per publish) can pass
        ``copy=False`` to transfer ownership and skip the copy; the store is
        frozen in place either way.
        """
        snapshot = ParameterSnapshot(
            version=self._next_version,
            store=(store.copy() if copy else store).freeze(),
            published_at=published_at,
            source=source,
        )
        self._next_version += 1
        self._snapshots.append(snapshot)
        if len(self._snapshots) > self._max_snapshots:
            del self._snapshots[: len(self._snapshots) - self._max_snapshots]
        return snapshot

    def adopt(self, snapshot: ParameterSnapshot) -> ParameterSnapshot:
        """Insert a restored snapshot and keep versions monotonic.

        Used when a service restarts from disk: the loaded snapshot keeps its
        original version id and every later publish strictly increases from
        there.
        """
        if self._snapshots and snapshot.version <= self._snapshots[-1].version:
            raise ValueError(
                f"cannot adopt version {snapshot.version}: latest retained version "
                f"is {self._snapshots[-1].version}"
            )
        self._snapshots.append(snapshot)
        self._next_version = max(self._next_version, snapshot.version + 1)
        if len(self._snapshots) > self._max_snapshots:
            del self._snapshots[: len(self._snapshots) - self._max_snapshots]
        return snapshot

    def latest(self) -> ParameterSnapshot | None:
        """The most recently published snapshot, or ``None`` before the first."""
        return self._snapshots[-1] if self._snapshots else None

    def get(self, version: int) -> ParameterSnapshot:
        """The retained snapshot with exactly ``version``; ``KeyError`` if evicted."""
        for snapshot in reversed(self._snapshots):
            if snapshot.version == version:
                return snapshot
        raise KeyError(
            f"snapshot version {version} is not retained "
            f"(have {self.versions}, retention {self._max_snapshots})"
        )
