"""Streaming answer ingestion: micro-batched incremental EM, log-free.

Running any EM update after every single answer submission wastes most of its
work re-reading the same neighbourhood; the serving path therefore buffers
arriving :class:`AnswerEvent` records and closes a **micro-batch** when either

* the buffer reaches ``max_batch_answers`` events, or
* the oldest buffered event is older than ``max_batch_delay`` simulated
  seconds (so sparse traffic still gets timely refreshes).

Every model update is O(changed), never O(stream):

* each closed batch is applied through the array-backed
  :class:`~repro.core.incremental.IncrementalUpdater` — localized sweeps
  against its live, incrementally grown answer tensor, with per-entity
  convergence early-exit so settled neighbourhoods stop burning iterations;
* every ``full_refresh_interval`` ingested answers the model is re-fit on the
  vectorised engine **directly from the live tensor**
  (:meth:`~repro.core.incremental.IncrementalUpdater.full_refresh`): zero
  ``AnswerSet`` → tensor flattens, and warm starts hand the live row-aligned
  store straight to the EM loop.  Because of this the ingestor does not need
  to keep the answer log at all — retention is **opt-in**
  (:attr:`IngestConfig.retain_answer_log`), capping ingestor memory at the
  live tensor instead of tensor + an ever-growing duplicate log.  The log is
  retained automatically when the caller shares its own
  :class:`~repro.data.models.AnswerSet` (the simulator/platform case) or runs
  the per-record ``engine="reference"``, which has no tensor form;
* after every update a new snapshot is published to the
  :class:`~repro.serving.snapshots.SnapshotStore` — the only surface the
  assignment frontend reads.  Steady-state publishes are **dirty-row
  deltas** (:meth:`~repro.serving.snapshots.SnapshotStore.publish_delta`):
  only the rows the micro-batch touched are copied onto the previous
  snapshot's immutable base; the full-copy path remains for the first
  publish, full refreshes and universe growth.

The ingestion layer is **open-world**: an :class:`AnswerEvent` may reference a
worker or task the model has never seen, as long as it carries the entity's
metadata (:attr:`AnswerEvent.worker` / :attr:`AnswerEvent.task`).  First-sight
entities are registered into the inference model before the batch is applied,
admitted into the live tensor/store with the paper's footnote-3 trusted
priors, and show up in every snapshot published from then on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.incremental import IncrementalUpdater
from repro.core.inference import LocationAwareInference
from repro.data.models import Answer, AnswerSet, Task, Worker
from repro.serving.snapshots import ParameterSnapshot, SnapshotStore


@dataclass(frozen=True)
class AnswerEvent:
    """One answer submission with its simulated arrival time (seconds).

    ``worker`` and ``task`` are optional first-sight payloads: events from
    entities unknown to the serving model MUST carry the corresponding
    metadata so the ingestor can register them; for already-known entities the
    payloads are ignored.
    """

    answer: Answer
    time: float = 0.0
    worker: Worker | None = None
    task: Task | None = None


@dataclass
class IngestConfig:
    """Micro-batching and refresh policy of the ingestion layer.

    ``max_batch_answers`` bounds a micro-batch by count, ``max_batch_delay``
    by simulated-time window; whichever triggers first closes the batch.
    ``full_refresh_interval`` is the paper's two-tier refresh: a full EM re-run
    every that many ingested answers, incremental updates in between.

    ``retain_answer_log`` opts back in to keeping every ingested answer in the
    ingestor's own :class:`~repro.data.models.AnswerSet`.  The default is
    off: the vectorised update path (incremental sweeps *and* full refreshes)
    runs entirely from the live tensor, so retaining the log only duplicates
    it — O(stream) memory for nothing.  Retention is forced on when the
    caller shares an external answer set or uses the reference engine.

    ``local_convergence_threshold`` is the per-entity early-exit for the
    incremental sweeps (see
    :attr:`~repro.core.incremental.IncrementalUpdater.early_exit_threshold`);
    ``None`` inherits the inference model's EM convergence threshold, ``0.0``
    disables the exit.
    """

    max_batch_answers: int = 64
    max_batch_delay: float = 5.0
    full_refresh_interval: int = 1000
    local_iterations: int = 2
    retain_answer_log: bool = False
    local_convergence_threshold: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch_answers <= 0:
            raise ValueError(
                f"max_batch_answers must be positive, got {self.max_batch_answers}"
            )
        if self.max_batch_delay <= 0:
            raise ValueError(
                f"max_batch_delay must be positive, got {self.max_batch_delay}"
            )
        if self.full_refresh_interval <= 0:
            raise ValueError(
                f"full_refresh_interval must be positive, got {self.full_refresh_interval}"
            )
        if self.local_iterations <= 0:
            raise ValueError(
                f"local_iterations must be positive, got {self.local_iterations}"
            )
        if (
            self.local_convergence_threshold is not None
            and self.local_convergence_threshold < 0
        ):
            raise ValueError(
                f"local_convergence_threshold must be non-negative, "
                f"got {self.local_convergence_threshold}"
            )


@dataclass
class IngestStats:
    """Counters and timings accumulated by one :class:`AnswerIngestor`."""

    answers: int = 0
    batches: int = 0
    incremental_updates: int = 0
    full_refreshes: int = 0
    snapshots_published: int = 0
    delta_publishes: int = 0
    workers_registered: int = 0
    tasks_registered: int = 0
    #: AnswerSet → tensor flattens the updater performed (0 on the pure
    #: live-tensor path — the log-free acceptance counter).
    log_flattens: int = 0
    update_seconds: float = 0.0

    @property
    def answers_per_second(self) -> float:
        """Ingestion throughput over the time spent inside model updates."""
        if self.update_seconds <= 0.0:
            return 0.0
        return self.answers / self.update_seconds


class AnswerIngestor:
    """Buffers answer events and turns them into model updates + snapshots.

    Parameters
    ----------
    inference:
        The live inference model the updates are applied to.
    snapshots:
        The store every refreshed estimate is published into.
    config:
        Micro-batching and refresh policy.
    answers:
        An external answer log to share (e.g. the platform's own
        :class:`~repro.data.models.AnswerSet`); sharing implies retention —
        every submitted event is appended to it.  By default the ingestor is
        **log-free**: it owns an empty answer set that stays empty unless
        :attr:`IngestConfig.retain_answer_log` is set (or the reference
        engine, which cannot run without the log, is configured).
    """

    def __init__(
        self,
        inference: LocationAwareInference,
        snapshots: SnapshotStore,
        config: IngestConfig | None = None,
        answers: AnswerSet | None = None,
    ) -> None:
        self._inference = inference
        self._snapshots = snapshots
        self._config = config or IngestConfig()
        self._retain = (
            self._config.retain_answer_log
            or answers is not None
            or inference.config.engine == "reference"
        )
        self._answers = answers if answers is not None else AnswerSet()
        threshold = self._config.local_convergence_threshold
        if threshold is None:
            threshold = inference.config.convergence_threshold
        self._updater = IncrementalUpdater(
            inference=inference,
            full_refresh_interval=self._config.full_refresh_interval,
            local_iterations=self._config.local_iterations,
            early_exit_threshold=threshold,
        )
        # Estimates to carry across re-fits: a model warm-started from a
        # restored snapshot knows entities the growing answer log may not
        # cover yet, and a full EM re-fit only returns entities present in
        # its tensor — without priming the updater's carryover, the first
        # publish after a restart would silently revert un-reanswered
        # workers/tasks to cold-start priors.
        if inference.is_fitted:
            self._updater.prime_carryover(inference.parameters)
        self._buffer: list[AnswerEvent] = []
        self._buffer_opened_at: float | None = None
        self._stats = IngestStats()

    # ------------------------------------------------------------------ state
    @property
    def answers(self) -> AnswerSet:
        """The retained answer log (empty on the default log-free path)."""
        return self._answers

    @property
    def retains_answer_log(self) -> bool:
        return self._retain

    @property
    def config(self) -> IngestConfig:
        return self._config

    @property
    def stats(self) -> IngestStats:
        return self._stats

    @property
    def pending(self) -> int:
        """Events buffered but not yet applied."""
        return len(self._buffer)

    # ------------------------------------------------------------------ intake
    def submit(self, event: AnswerEvent) -> ParameterSnapshot | None:
        """Buffer one answer event; flush if a batch boundary is crossed.

        Returns the snapshot published by the flush, or ``None`` while the
        batch is still open.
        """
        if self._buffer_opened_at is None:
            self._buffer_opened_at = event.time
        self._buffer.append(event)
        if (
            len(self._buffer) >= self._config.max_batch_answers
            or event.time - self._buffer_opened_at >= self._config.max_batch_delay
        ):
            return self.flush(now=event.time)
        return None

    def tick(self, now: float) -> ParameterSnapshot | None:
        """Time-based flush: close the open batch if it has aged past the window.

        Call this when the simulated clock advances without new answers (e.g.
        a round of arrivals produced no assignments), so sparse traffic cannot
        leave a batch open forever.
        """
        if (
            self._buffer
            and self._buffer_opened_at is not None
            and now - self._buffer_opened_at >= self._config.max_batch_delay
        ):
            return self.flush(now=now)
        return None

    def flush(
        self, now: float | None = None, full: bool = False, warm: bool = True
    ) -> ParameterSnapshot | None:
        """Apply the buffered micro-batch and publish a fresh snapshot.

        ``full=True`` forces a full re-fit even if the interval has not
        elapsed (the service calls this once at shutdown so the final snapshot
        reflects a converged estimate); ``warm=False`` makes that re-fit a
        cold start instead of warm-starting from the current estimate, so the
        result is identical to an offline fit on the same answer stream (the
        live tensor is maintained bit-equal to a from-scratch flatten).
        Returns ``None`` only when there is nothing at all to do.
        """
        events = list(self._buffer)
        new_answers = [event.answer for event in events]
        if now is None:
            now = self._buffer[-1].time if self._buffer else 0.0
        self._buffer.clear()
        self._buffer_opened_at = None
        has_history = self._stats.answers > 0 or len(self._answers) > 0
        if not new_answers and not (full and has_history):
            return None

        for event in events:
            self._register_event_entities(event)
        if self._retain:
            for answer in new_answers:
                self._answers.add(answer)
        log = self._answers if self._retain else None

        started = time.perf_counter()
        run_full = (
            full or not self._inference.is_fitted or self._updater.full_refresh_due
        )
        if run_full:
            self._updater.full_refresh(new_answers, answers=log, warm=warm)
            self._stats.full_refreshes += 1
            source = "full_refresh"
        else:
            self._updater.apply(log, new_answers)
            self._stats.incremental_updates += 1
            source = "incremental"
        self._stats.update_seconds += time.perf_counter() - started
        self._stats.answers += len(new_answers)
        self._stats.log_flattens = self._updater.tensor_rebuilds
        if new_answers:
            self._stats.batches += 1

        return self._publish(published_at=now, source=source)

    # ---------------------------------------------------------------- internal
    def _register_event_entities(self, event: AnswerEvent) -> None:
        """Register first-sight workers/tasks carried by ``event``.

        Unknown entities without a payload are a protocol error: the tensor
        append would fail later anyway, but failing here names the missing
        piece (the metadata, not the answer).
        """
        answer = event.answer
        inference = self._inference
        if answer.task_id not in inference._tasks:
            if event.task is None:
                raise KeyError(
                    f"answer references unknown task {answer.task_id!r} and the "
                    "event carries no task payload to register it"
                )
            if event.task.task_id != answer.task_id:
                raise ValueError(
                    f"event task payload {event.task.task_id!r} does not match "
                    f"the answer's task {answer.task_id!r}"
                )
            inference.add_task(event.task)
            self._stats.tasks_registered += 1
        if answer.worker_id not in inference._workers:
            if event.worker is None:
                raise KeyError(
                    f"answer references unknown worker {answer.worker_id!r} and "
                    "the event carries no worker payload to register it"
                )
            if event.worker.worker_id != answer.worker_id:
                raise ValueError(
                    f"event worker payload {event.worker.worker_id!r} does not "
                    f"match the answer's worker {answer.worker_id!r}"
                )
            inference.add_worker(event.worker)
            self._stats.workers_registered += 1

    def _publish(self, published_at: float, source: str) -> ParameterSnapshot:
        """Publish the live estimate over every known entity, O(changed)-first.

        Steady-state micro-batches publish a dirty-row delta onto the
        previous snapshot's immutable base — only the rows this batch touched
        are copied.  The full-copy path (one C-level array copy of the live
        store plus carried-over entities, never a ``ModelParameters``
        flatten) remains for the first publish, full refreshes, universe
        growth, and whenever an external publisher interleaved with ours.
        """
        delta = self._updater.collect_publish_delta()
        latest = self._snapshots.latest()
        if (
            delta is not None
            and latest is not None
            and (latest.num_workers, latest.num_tasks)
            == (delta.num_workers, delta.num_tasks)
        ):
            snapshot = self._snapshots.publish_delta(
                delta, published_at=published_at, source=source
            )
            self._updater.mark_published()
            self._stats.delta_publishes += 1
        else:
            store = self._updater.publish_store(
                self._answers if self._retain else None
            )
            # The store copy was made solely for this publish — hand it over
            # instead of paying a second full-array copy inside the snapshot.
            snapshot = self._snapshots.publish(
                store, published_at=published_at, source=source, copy=False
            )
        self._stats.snapshots_published += 1
        return snapshot
