"""Streaming answer ingestion: micro-batched incremental EM, log-free.

Running any EM update after every single answer submission wastes most of its
work re-reading the same neighbourhood; the serving path therefore buffers
arriving :class:`AnswerEvent` records and closes a **micro-batch** when either

* the buffer reaches ``max_batch_answers`` events, or
* the oldest buffered event is older than ``max_batch_delay`` simulated
  seconds (so sparse traffic still gets timely refreshes).

Every model update is O(changed), never O(stream):

* each closed batch is applied through the array-backed
  :class:`~repro.core.incremental.IncrementalUpdater` — localized sweeps
  against its live, incrementally grown answer tensor, with per-entity
  convergence early-exit so settled neighbourhoods stop burning iterations;
* every ``full_refresh_interval`` ingested answers the model is re-fit on the
  vectorised engine **directly from the live tensor**
  (:meth:`~repro.core.incremental.IncrementalUpdater.full_refresh`): zero
  ``AnswerSet`` → tensor flattens, and warm starts hand the live row-aligned
  store straight to the EM loop.  Because of this the ingestor does not need
  to keep the answer log at all — retention is **opt-in**
  (:attr:`IngestConfig.retain_answer_log`), capping ingestor memory at the
  live tensor instead of tensor + an ever-growing duplicate log.  The log is
  retained automatically when the caller shares its own
  :class:`~repro.data.models.AnswerSet` (the simulator/platform case) or runs
  the per-record ``engine="reference"``, which has no tensor form;
* after every update a new snapshot is published to the
  :class:`~repro.serving.snapshots.SnapshotStore` — the only surface the
  assignment frontend reads.  Steady-state publishes are **dirty-row
  deltas** (:meth:`~repro.serving.snapshots.SnapshotStore.publish_delta`):
  only the rows the micro-batch touched are copied onto the previous
  snapshot's immutable base; the full-copy path remains for the first
  publish, full refreshes and universe growth.

The ingestion layer is **open-world**: an :class:`AnswerEvent` may reference a
worker or task the model has never seen, as long as it carries the entity's
metadata (:attr:`AnswerEvent.worker` / :attr:`AnswerEvent.task`).  First-sight
entities are registered into the inference model before the batch is applied,
admitted into the live tensor/store with the paper's footnote-3 trusted
priors, and show up in every snapshot published from then on.

The ingestor is also the durability seam (see :mod:`repro.serving` for the
full lifecycle): an optional :class:`~repro.serving.guard.EventGuard`
quarantines malformed events before they can poison a batch, an optional
:class:`~repro.serving.journal.AnswerJournal` makes every accepted event
durable *before* it is buffered (write-ahead), model updates and snapshot
publishes run under a bounded-retry supervisor that degrades the snapshot
store instead of raising, and an optional
:class:`~repro.serving.snapshots.CheckpointManager` persists the live state
every :attr:`IngestConfig.checkpoint_interval` applied answers so recovery
only replays the journal tail.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.incremental import IncrementalUpdater
from repro.core.inference import LocationAwareInference
from repro.data.models import Answer, AnswerSet, Task, Worker
from repro.obs.trace import Tracer
from repro.serving.faults import FaultInjector
from repro.serving.pipeline import PendingRefresh, RefreshWorker
from repro.utils.timing import Timer
from repro.serving.guard import EventGuard, ReputationTracker, trust_scores
from repro.serving.journal import AnswerJournal
from repro.serving.snapshots import (
    CheckpointManager,
    CheckpointState,
    ParameterSnapshot,
    SnapshotStore,
)


@dataclass(frozen=True)
class AnswerEvent:
    """One answer submission with its simulated arrival time (seconds).

    ``worker`` and ``task`` are optional first-sight payloads: events from
    entities unknown to the serving model MUST carry the corresponding
    metadata so the ingestor can register them; for already-known entities the
    payloads are ignored.
    """

    answer: Answer
    time: float = 0.0
    worker: Worker | None = None
    task: Task | None = None


@dataclass
class IngestConfig:
    """Micro-batching and refresh policy of the ingestion layer.

    ``max_batch_answers`` bounds a micro-batch by count, ``max_batch_delay``
    by simulated-time window; whichever triggers first closes the batch.
    ``full_refresh_interval`` is the paper's two-tier refresh: a full EM re-run
    every that many ingested answers, incremental updates in between.

    ``retain_answer_log`` opts back in to keeping every ingested answer in the
    ingestor's own :class:`~repro.data.models.AnswerSet`.  The default is
    off: the vectorised update path (incremental sweeps *and* full refreshes)
    runs entirely from the live tensor, so retaining the log only duplicates
    it — O(stream) memory for nothing.  Retention is forced on when the
    caller shares an external answer set or uses the reference engine.

    ``local_convergence_threshold`` is the per-entity early-exit for the
    incremental sweeps (see
    :attr:`~repro.core.incremental.IncrementalUpdater.early_exit_threshold`);
    ``None`` inherits the inference model's EM convergence threshold, ``0.0``
    disables the exit.

    ``pipeline`` selects the pipelined serving loop: interval full refreshes
    run as background fits on a :class:`~repro.serving.pipeline.RefreshWorker`
    while the ingest thread keeps applying incremental sweeps, and the fresh
    store is reconciled + published ``pipeline_lag_answers`` applied answers
    after launch (``None`` resolves to
    ``max(max_batch_answers, full_refresh_interval // 4)``).  ``False`` keeps
    the serial loop — the equivalence oracle the pipelined path is tested
    against.  The reference engine always runs serially (it has no tensor
    form to snapshot).
    """

    max_batch_answers: int = 64
    max_batch_delay: float = 5.0
    full_refresh_interval: int = 1000
    local_iterations: int = 2
    retain_answer_log: bool = False
    local_convergence_threshold: float | None = None
    #: Overlap interval full refreshes with ingest (see class docstring).
    pipeline: bool = True
    #: Applied answers between a background-fit launch and its integration
    #: point; ``None`` resolves from the batching/refresh config.
    pipeline_lag_answers: int | None = None
    #: Maintain per-row sufficient statistics so incremental sweeps fold only
    #: the batch's own rows instead of re-reading whole neighbourhoods (see
    #: :attr:`~repro.core.incremental.IncrementalUpdater.sufficient_stats`).
    sufficient_stats: bool = True
    #: Batches a per-entity-converged (settled) entity sits out of the M-step
    #: before being re-estimated (0 disables deferral).
    settle_defer_batches: int = 2
    #: Exponential decay applied to the sufficient statistics per applied
    #: micro-batch (see
    #: :attr:`~repro.core.incremental.IncrementalUpdater.stat_decay`): an
    #: answer ``k`` batches old contributes ``stat_decay**k`` of its original
    #: evidence, so the estimate tracks workers whose quality *drifts*.  The
    #: default ``1.0`` keeps the exact historical path bit-for-bit.
    stat_decay: float = 1.0
    #: Admission prior for workers first seen on the stream (see
    #: :attr:`~repro.core.incremental.IncrementalUpdater.admission_p_qualified`).
    #: ``None`` keeps the footnote-3 trusted seed, which is numerically
    #: absorbing — reputation tracking needs a learnable prior here to see
    #: adversaries at all.
    admission_p_qualified: float | None = None
    #: Write a checkpoint every this many applied answers (0 disables; only
    #: effective when the ingestor was built with a ``checkpoints`` manager).
    checkpoint_interval: int = 0
    #: Retries granted to a failing model update / snapshot publish before the
    #: batch is dropped and the store is marked degraded.
    max_update_retries: int = 2
    #: Initial sleep before the first retry (real seconds; kept tiny so the
    #: simulated-time serving loop never stalls noticeably).
    retry_backoff: float = 0.001
    #: Multiplier applied to the backoff after every failed retry.
    retry_backoff_factor: float = 2.0
    #: Ceiling on a single retry sleep (real seconds).
    max_retry_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.max_batch_answers <= 0:
            raise ValueError(
                f"max_batch_answers must be positive, got {self.max_batch_answers}"
            )
        if self.max_batch_delay <= 0:
            raise ValueError(
                f"max_batch_delay must be positive, got {self.max_batch_delay}"
            )
        if self.full_refresh_interval <= 0:
            raise ValueError(
                f"full_refresh_interval must be positive, got {self.full_refresh_interval}"
            )
        if self.local_iterations <= 0:
            raise ValueError(
                f"local_iterations must be positive, got {self.local_iterations}"
            )
        if (
            self.local_convergence_threshold is not None
            and self.local_convergence_threshold < 0
        ):
            raise ValueError(
                f"local_convergence_threshold must be non-negative, "
                f"got {self.local_convergence_threshold}"
            )
        if self.checkpoint_interval < 0:
            raise ValueError(
                f"checkpoint_interval must be non-negative, "
                f"got {self.checkpoint_interval}"
            )
        if self.max_update_retries < 0:
            raise ValueError(
                f"max_update_retries must be non-negative, "
                f"got {self.max_update_retries}"
            )
        if self.retry_backoff < 0:
            raise ValueError(f"retry_backoff must be non-negative, got {self.retry_backoff}")
        if self.retry_backoff_factor < 1.0:
            raise ValueError(
                f"retry_backoff_factor must be >= 1, got {self.retry_backoff_factor}"
            )
        if self.max_retry_backoff < 0:
            raise ValueError(
                f"max_retry_backoff must be non-negative, got {self.max_retry_backoff}"
            )
        if self.pipeline_lag_answers is not None and self.pipeline_lag_answers <= 0:
            raise ValueError(
                f"pipeline_lag_answers must be positive when given, "
                f"got {self.pipeline_lag_answers}"
            )
        if self.settle_defer_batches < 0:
            raise ValueError(
                f"settle_defer_batches must be non-negative, "
                f"got {self.settle_defer_batches}"
            )
        if self.admission_p_qualified is not None and not (
            0.0 < self.admission_p_qualified < 1.0
        ):
            raise ValueError(
                "admission_p_qualified must lie strictly inside (0, 1), got "
                f"{self.admission_p_qualified}"
            )
        if not 0.0 < self.stat_decay <= 1.0:
            raise ValueError(
                f"stat_decay must be in (0, 1], got {self.stat_decay}"
            )


@dataclass
class IngestStats:
    """Counters and timings accumulated by one :class:`AnswerIngestor`."""

    answers: int = 0
    batches: int = 0
    incremental_updates: int = 0
    full_refreshes: int = 0
    snapshots_published: int = 0
    delta_publishes: int = 0
    workers_registered: int = 0
    tasks_registered: int = 0
    #: AnswerSet → tensor flattens the updater performed (0 on the pure
    #: live-tensor path — the log-free acceptance counter).
    log_flattens: int = 0
    update_seconds: float = 0.0
    #: Events the guard rejected at the intake boundary (never journaled).
    events_quarantined: int = 0
    #: Events refused because their worker is reputation-quarantined — a
    #: subset of the guard's ``reputation`` reason counter, kept separately so
    #: the trust degradation ladder is visible without a guard attached.
    events_rejected_reputation: int = 0
    #: Events made durable in the write-ahead journal.
    journal_appends: int = 0
    #: Events dropped because the journal append itself failed (an event that
    #: cannot be made durable is never applied).
    journal_append_failures: int = 0
    checkpoints_written: int = 0
    #: Checkpoint attempts that failed; never fatal — the previous checkpoint
    #: and the (untruncated) journal still cover the state.
    checkpoint_failures: int = 0
    #: Individual model-update attempt failures seen by the supervisor.
    update_failures: int = 0
    #: Retries the supervisor granted after an update failure.
    update_retries: int = 0
    #: Micro-batches durably dropped after retry exhaustion (degraded mode).
    dropped_batches: int = 0
    #: Answers inside those dropped batches.
    answers_dropped: int = 0
    #: Snapshot publishes abandoned after retry exhaustion (degraded mode).
    publish_failures: int = 0
    #: Full refreshes that ran as background fits overlapped with ingest.
    refreshes_overlapped: int = 0
    #: Answers applied mid-background-fit and replayed as localized sweeps
    #: against the fresh store at integration.
    answers_reconciled: int = 0
    #: Background fits that raised an ordinary exception (counted, non-fatal;
    #: the stream kept serving incrementally and the next interval retries).
    refresh_failures: int = 0
    #: Wall time the ingest thread actually blocked waiting for a background
    #: fit at an integration point (0 when the stream out-runs the fit).
    refresh_wait_seconds: float = 0.0
    #: Longest single flush (update through checkpoint) in wall milliseconds —
    #: the worst ingest stall a steady stream observes between batch applies.
    max_flush_stall_ms: float = 0.0

    @property
    def answers_per_second(self) -> float:
        """Ingestion throughput over the time spent inside model updates."""
        if self.update_seconds <= 0.0:
            return 0.0
        return self.answers / self.update_seconds


class AnswerIngestor:
    """Buffers answer events and turns them into model updates + snapshots.

    Parameters
    ----------
    inference:
        The live inference model the updates are applied to.
    snapshots:
        The store every refreshed estimate is published into.
    config:
        Micro-batching and refresh policy.
    answers:
        An external answer log to share (e.g. the platform's own
        :class:`~repro.data.models.AnswerSet`); sharing implies retention —
        every submitted event is appended to it.  By default the ingestor is
        **log-free**: it owns an empty answer set that stays empty unless
        :attr:`IngestConfig.retain_answer_log` is set (or the reference
        engine, which cannot run without the log, is configured).
    journal:
        Optional write-ahead :class:`~repro.serving.journal.AnswerJournal`;
        accepted events are appended (and flushed) *before* they are buffered,
        so a crash can never lose an acknowledged submission.
    guard:
        Optional :class:`~repro.serving.guard.EventGuard` consulted before
        journaling; rejected events are quarantined, counted, and dropped
        without raising.
    faults:
        Optional :class:`~repro.serving.faults.FaultInjector` for chaos
        testing; production paths pass ``None`` and pay one ``is None`` check.
    checkpoints:
        Optional :class:`~repro.serving.snapshots.CheckpointManager`; with
        :attr:`IngestConfig.checkpoint_interval` > 0 the live state is
        persisted after qualifying publishes and the journal is truncated up
        to the covered sequence number.
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when given, every pipeline
        stage (guard/journal/apply/refresh/publish/checkpoint) reports
        phase-attributed wall time and counters into its registry, and the
        journal/guard/snapshot-store/fault-injector are bound to the same
        registry so one surface carries the whole pipeline's telemetry.
    """

    def __init__(
        self,
        inference: LocationAwareInference,
        snapshots: SnapshotStore,
        config: IngestConfig | None = None,
        answers: AnswerSet | None = None,
        journal: AnswerJournal | None = None,
        guard: EventGuard | None = None,
        faults: FaultInjector | None = None,
        checkpoints: CheckpointManager | None = None,
        tracer: Tracer | None = None,
        reputation: ReputationTracker | None = None,
    ) -> None:
        self._inference = inference
        self._snapshots = snapshots
        self._config = config or IngestConfig()
        self._journal = journal
        self._guard = guard
        self._faults = faults
        self._checkpoints = checkpoints
        self._reputation = reputation
        if reputation is not None and inference.config.engine == "reference":
            raise ValueError(
                "reputation tracking requires the vectorized engine: the "
                "reference path has no per-answer weighting to down-weight "
                "quarantined workers with"
            )
        # A metricless tracer keeps the span/record call sites branch-free;
        # it observes nothing and costs one no-op call per micro-batch.
        self._tracer = tracer if tracer is not None else Tracer()
        # Per-event guard/journal time is accumulated here and attributed as
        # one per-batch observation at the next flush.
        self._guard_timer = Timer()
        self._journal_timer = Timer()
        if tracer is not None and tracer.metrics is not None:
            metrics = tracer.metrics
            if guard is not None:
                guard.bind_metrics(metrics)
            if journal is not None:
                journal.bind_metrics(metrics)
            if faults is not None:
                faults.bind_metrics(metrics)
            if reputation is not None:
                reputation.bind_metrics(metrics)
            snapshots.bind_metrics(metrics)
        #: Journal seq of the newest event handed to :meth:`flush` (pending)
        #: and of the newest event whose batch has been flushed (applied).
        #: ``applied`` advances even for dropped batches — dropped means
        #: *durably* dropped, so recovery must not replay those events into a
        #: state the crashed run never reached.
        self._pending_seq = 0
        self._applied_seq = 0
        self._answers_at_checkpoint = 0
        self._answers_at_stat_epoch = 0
        self._retain = (
            self._config.retain_answer_log
            or answers is not None
            or inference.config.engine == "reference"
        )
        self._answers = answers if answers is not None else AnswerSet()
        threshold = self._config.local_convergence_threshold
        if threshold is None:
            threshold = inference.config.convergence_threshold
        self._updater = IncrementalUpdater(
            inference=inference,
            full_refresh_interval=self._config.full_refresh_interval,
            local_iterations=self._config.local_iterations,
            early_exit_threshold=threshold,
            metrics=self._tracer.metrics,
            sufficient_stats=self._config.sufficient_stats,
            settle_defer_batches=self._config.settle_defer_batches,
            stat_decay=self._config.stat_decay,
            admission_p_qualified=self._config.admission_p_qualified,
        )
        if reputation is not None:
            # Full refreshes down-weight quarantined workers' *historical*
            # answers (their new submissions are refused at intake).
            self._updater.trust_weight_fn = reputation.trust_weight
        # Pipelined refreshes need a tensor to snapshot — the reference
        # engine has none, so it always runs the serial loop.
        self._pipeline = (
            self._config.pipeline and inference.config.engine != "reference"
        )
        lag = self._config.pipeline_lag_answers
        if lag is None:
            lag = max(
                self._config.max_batch_answers,
                self._config.full_refresh_interval // 4,
            )
        self._pipeline_lag = lag
        self._refresh_worker = RefreshWorker()
        self._pending_refresh: PendingRefresh | None = None
        # Estimates to carry across re-fits: a model warm-started from a
        # restored snapshot knows entities the growing answer log may not
        # cover yet, and a full EM re-fit only returns entities present in
        # its tensor — without priming the updater's carryover, the first
        # publish after a restart would silently revert un-reanswered
        # workers/tasks to cold-start priors.
        if inference.is_fitted:
            self._updater.prime_carryover(inference.parameters)
        self._buffer: list[AnswerEvent] = []
        self._buffer_opened_at: float | None = None
        self._stats = IngestStats()

    # ------------------------------------------------------------------ state
    @property
    def answers(self) -> AnswerSet:
        """The retained answer log (empty on the default log-free path)."""
        return self._answers

    @property
    def retains_answer_log(self) -> bool:
        return self._retain

    @property
    def config(self) -> IngestConfig:
        return self._config

    @property
    def stats(self) -> IngestStats:
        return self._stats

    @property
    def pending(self) -> int:
        """Events buffered but not yet applied."""
        return len(self._buffer)

    @property
    def journal(self) -> AnswerJournal | None:
        return self._journal

    @property
    def guard(self) -> EventGuard | None:
        return self._guard

    @property
    def reputation(self) -> ReputationTracker | None:
        return self._reputation

    @property
    def checkpoints(self) -> CheckpointManager | None:
        return self._checkpoints

    @property
    def applied_seq(self) -> int:
        """Journal seq of the newest event whose micro-batch has been flushed."""
        return self._applied_seq

    @property
    def tracer(self) -> Tracer:
        """The tracer every pipeline stage reports into (metricless if unwired)."""
        return self._tracer

    # ------------------------------------------------------------------ intake
    def submit(self, event: AnswerEvent) -> ParameterSnapshot | None:
        """Admit, journal, and buffer one answer event; flush on a boundary.

        The durable intake order is guard → journal → buffer: an event the
        guard rejects is quarantined (counted, never raised) before it can
        reach the journal, and an accepted event is made durable *before* it
        can influence any in-memory state — write-ahead, so a crash can never
        lose an acknowledged submission.  An event whose journal append fails
        is dropped (counted) rather than applied: applying it would make the
        in-memory state unrecoverable from disk.

        Returns the snapshot published by the flush, or ``None`` while the
        batch is still open (or the event was quarantined/dropped).
        """
        if self._faults is not None:
            self._faults.check("ingest.submit")
        if self._reputation is not None and self._reputation.is_quarantined(
            event.answer.worker_id
        ):
            # A quarantined worker's new submissions never reach the journal:
            # replay then reproduces the same accepted stream without needing
            # the tracker's state at the moment of each rejection.
            self._stats.events_rejected_reputation += 1
            self._stats.events_quarantined += 1
            if self._guard is not None:
                self._guard.reject(
                    event,
                    "reputation",
                    f"worker {event.answer.worker_id!r} is quarantined",
                )
            return None
        if self._guard is not None:
            self._guard_timer.start()
            try:
                verdict = self._guard.admit(event, self._inference)
            finally:
                self._guard_timer.stop()
            if verdict is not None:
                self._stats.events_quarantined += 1
                return None
        if self._journal is not None:
            self._journal_timer.start()
            try:
                if self._faults is not None:
                    self._faults.check("journal.append")
                seq = self._journal.append(event)
            except Exception:
                self._stats.journal_append_failures += 1
                return None
            finally:
                self._journal_timer.stop()
            self._stats.journal_appends += 1
            self._pending_seq = seq
        return self._buffer_event(event)

    def replay_event(self, seq: int, event: AnswerEvent) -> ParameterSnapshot | None:
        """Re-ingest one journaled event during crash recovery.

        The event was admitted and journaled before the crash, so replay skips
        the guard's validation (only updating its duplicate/rate history) and
        must not re-journal.  Buffering and flushing run through the ordinary
        micro-batch path, so batch boundaries — and therefore the recovered
        estimate — reproduce the crashed run exactly.
        """
        if self._guard is not None:
            self._guard.observe(event)
        self._pending_seq = seq
        return self._buffer_event(event)

    def _buffer_event(self, event: AnswerEvent) -> ParameterSnapshot | None:
        if self._buffer_opened_at is None:
            self._buffer_opened_at = event.time
        self._buffer.append(event)
        if (
            len(self._buffer) >= self._config.max_batch_answers
            or event.time - self._buffer_opened_at >= self._config.max_batch_delay
        ):
            return self.flush(now=event.time)
        return None

    def tick(self, now: float) -> ParameterSnapshot | None:
        """Time-based flush: close the open batch if it has aged past the window.

        Call this when the simulated clock advances without new answers (e.g.
        a round of arrivals produced no assignments), so sparse traffic cannot
        leave a batch open forever.
        """
        if (
            self._buffer
            and self._buffer_opened_at is not None
            and now - self._buffer_opened_at >= self._config.max_batch_delay
        ):
            return self.flush(now=now)
        return None

    def flush(
        self, now: float | None = None, full: bool = False, warm: bool = True
    ) -> ParameterSnapshot | None:
        """Apply the buffered micro-batch and publish a fresh snapshot.

        ``full=True`` forces a full re-fit even if the interval has not
        elapsed (the service calls this once at shutdown so the final snapshot
        reflects a converged estimate); ``warm=False`` makes that re-fit a
        cold start instead of warm-starting from the current estimate, so the
        result is identical to an offline fit on the same answer stream (the
        live tensor is maintained bit-equal to a from-scratch flatten).
        Returns ``None`` only when there is nothing at all to do.
        """
        events = list(self._buffer)
        new_answers = [event.answer for event in events]
        if now is None:
            now = self._buffer[-1].time if self._buffer else 0.0
        self._buffer.clear()
        self._buffer_opened_at = None
        has_history = self._stats.answers > 0 or len(self._answers) > 0
        if not new_answers and not (full and has_history):
            return None

        for event in events:
            self._register_event_entities(event)
        if self._retain:
            for answer in new_answers:
                self._answers.add(answer)
        log = self._answers if self._retain else None

        # Attribute the guard/journal time this batch's events accumulated in
        # submit() as one per-batch observation each.
        if self._guard_timer.elapsed > 0.0:
            self._tracer.record("guard", self._guard_timer.elapsed, events=len(events))
            self._guard_timer.reset()
        if self._journal_timer.elapsed > 0.0:
            self._tracer.record(
                "journal", self._journal_timer.elapsed, events=len(events)
            )
            self._journal_timer.reset()

        started = time.perf_counter()
        try:
            return self._flush_update(
                new_answers, log, now=now, full=full, warm=warm
            )
        finally:
            stall_ms = (time.perf_counter() - started) * 1000.0
            if stall_ms > self._stats.max_flush_stall_ms:
                self._stats.max_flush_stall_ms = stall_ms
            if self._tracer.metrics is not None:
                self._tracer.metrics.histogram("ingest_stall_seconds").observe(
                    stall_ms / 1000.0
                )

    def _flush_update(
        self,
        new_answers: list[Answer],
        log: AnswerSet | None,
        now: float,
        full: bool,
        warm: bool,
    ) -> ParameterSnapshot | None:
        """Apply one closed micro-batch, schedule refreshes, and publish.

        Pipelined refresh scheduling is deliberately a pure function of
        applied-answer counts (launch when the refresh interval trips,
        integrate ``pipeline_lag_answers`` applied answers later, waiting if
        the fit is still running) so journal replay reproduces the exact same
        launch/integrate/publish sequence — wall clock and thread timing only
        ever change how long the deterministic wait takes.
        """
        started = time.perf_counter()
        if full and self._pending_refresh is not None:
            # A forced (final) refresh is synchronous by contract: fold the
            # in-flight background fit in first so the closing serial fit
            # starts from the reconciled state.
            self._integrate_refresh()
        run_full = (
            full
            or not self._inference.is_fitted
            or (self._pending_refresh is None and self._updater.full_refresh_due)
        )
        # The interval refresh runs in the background only once there is a
        # fitted estimate to keep serving from; the first fit and the forced
        # final fit stay serial.
        launch_background = (
            run_full and not full and self._pipeline and self._inference.is_fitted
        )
        if run_full and not launch_background:
            source = "full_refresh"
            with self._tracer.span("refresh", events=len(new_answers)):
                applied = self._supervised(
                    "refresh",
                    lambda: self._updater.full_refresh(
                        new_answers, answers=log, warm=warm
                    ),
                )
        else:
            # The batch that trips the interval is applied incrementally; the
            # background fit snapshots the tensor *after* it, so the fitted
            # store covers every answer up to the launch watermark.
            source = "incremental"
            with self._tracer.span("apply", events=len(new_answers)):
                applied = self._supervised(
                    "apply", lambda: self._updater.apply(log, new_answers)
                )
        self._stats.update_seconds += time.perf_counter() - started
        # Either way these events' fate is settled: a batch dropped after
        # retry exhaustion is *durably* dropped, so recovery must not replay
        # it into a state the live run never reached.
        self._applied_seq = self._pending_seq
        self._stats.log_flattens = self._updater.tensor_rebuilds
        if not applied:
            self._stats.dropped_batches += 1
            self._stats.answers_dropped += len(new_answers)
            if self._tracer.metrics is not None:
                self._tracer.metrics.counter("ingest_dropped_batches_total").inc()
            self._snapshots.mark_degraded(
                f"{source} update failed after "
                f"{self._config.max_update_retries} retries; serving the last "
                "good snapshot"
            )
            return None
        if run_full and not launch_background:
            self._stats.full_refreshes += 1
        else:
            self._stats.incremental_updates += 1
        self._stats.answers += len(new_answers)
        if new_answers:
            self._stats.batches += 1

        pipeline_started = time.perf_counter()
        pending = self._pending_refresh
        if pending is not None:
            pending.note_batch(new_answers)
            if pending.answers_since_launch >= self._pipeline_lag:
                if self._integrate_refresh():
                    source = "full_refresh"
        elif launch_background:
            self._launch_refresh(warm)
        self._stats.update_seconds += time.perf_counter() - pipeline_started

        metrics = self._tracer.metrics
        if metrics is not None:
            metrics.counter("ingest_answers_total").inc(len(new_answers))
            metrics.counter("ingest_batches_total", kind=source).inc()

        snapshot: ParameterSnapshot | None = None

        def publish() -> None:
            nonlocal snapshot
            snapshot = self._publish(published_at=now, source=source)

        with self._tracer.span("publish"):
            published = self._supervised("publish", publish)
        if not published:
            self._stats.publish_failures += 1
            self._snapshots.mark_degraded(
                f"snapshot publish failed after "
                f"{self._config.max_update_retries} retries; serving the last "
                "good snapshot"
            )
            return None
        self._snapshots.clear_degraded()
        self._evaluate_reputation()
        self._maybe_checkpoint(snapshot)
        self._maybe_reset_stat_epoch()
        return snapshot

    def _evaluate_reputation(self) -> None:
        """Re-judge every worker's trust tier from the fresh live estimate.

        Runs after each successful flush, against the live store's
        ``p_qualified`` posteriors and per-worker answer counts taken straight
        off the live tensor — pure functions of the applied answer stream, so
        a journal replay re-walks the exact same tier transitions.  Evaluated
        *before* the checkpoint cut so the persisted tracker state matches
        the persisted answer log.
        """
        tracker = self._reputation
        if tracker is None:
            return
        tensor = self._updater.live_tensor
        store = self._updater.live_store
        if tensor is None or store is None or not tensor.num_answers:
            return
        counts = np.bincount(tensor.a_worker, minlength=tensor.num_workers)
        answer_counts = {
            worker_id: int(count)
            for worker_id, count in zip(tensor.worker_ids, counts)
        }
        with self._tracer.span("reputation"):
            # Trust score per worker: a distance-aware likelihood-ratio test
            # of the worker's agreement with the *other* workers' firm
            # leave-one-out majority votes (see
            # :func:`repro.serving.guard.trust_scores` for why neither the
            # EM's mean-form ``p_qualified`` nor its weighted label
            # posterior is used here).  A pure function of the live tensor,
            # so crash recovery replays re-walk identical tier transitions.
            scores = trust_scores(tensor, excluded=tracker.quarantined_ids)
            tracker.evaluate(tensor.worker_ids, scores, answer_counts)

    def _maybe_reset_stat_epoch(self) -> None:
        """Re-seed the sufficient-stat cache on the checkpoint cadence.

        The cache is path-dependent (each row's contribution is frozen at the
        parameters current when it was last folded), so a run replayed from a
        checkpoint cannot reproduce an arbitrary-aged cache.  Resetting it
        every ``checkpoint_interval`` applied answers — on the *interval*
        alone, whether or not a checkpoint manager is attached, and deferred
        while a background refresh is in flight exactly like checkpoint cuts
        — keeps the reset schedule a pure function of the answer stream, so
        durable, non-durable and recovered runs all re-seed at the same
        points and remain bit-equal.
        """
        interval = self._config.checkpoint_interval
        if interval <= 0 or not self._config.sufficient_stats:
            return
        if self._pending_refresh is not None:
            return
        if self._stats.answers - self._answers_at_stat_epoch < interval:
            return
        self._updater.reset_sufficient_stats()
        self._answers_at_stat_epoch = self._stats.answers

    def _launch_refresh(self, warm: bool) -> bool:
        """Hand the interval full refresh to the background worker.

        The fit runs on a frozen copy of the live tensor (and, for warm
        starts, a copy of the live store) so the ingest thread may keep
        growing both; the refresh counter resets *now* — the launch is the
        refresh event as far as scheduling is concerned, and integration is
        just its deferred publish.
        """
        watermark = self._stats.answers

        def capture_and_launch() -> None:
            tensor, initial, initial_store, weights = (
                self._updater.capture_refresh_state(warm=warm)
            )
            faults = self._faults
            inference = self._inference

            def fit() -> object:
                # Runs on the worker thread; the fault check lives here so
                # chaos can kill the process *inside* an overlapped fit.
                if faults is not None:
                    faults.check("refresh.background")
                return inference.run_em_detached(
                    tensor,
                    initial=initial,
                    initial_store=initial_store,
                    answer_weights=weights,
                )

            self._refresh_worker.launch(fit)

        with self._tracer.span("refresh", kind="launch"):
            ok = self._supervised("refresh", capture_and_launch)
        if not ok:
            # The batch itself was already applied incrementally; a failed
            # launch just means this interval's refresh never happened — the
            # counter keeps growing and the next due flush retries.
            return False
        self._pending_refresh = PendingRefresh(
            watermark_answers=watermark, warm=warm
        )
        self._updater.notify_full_refresh()
        self._stats.full_refreshes += 1
        self._stats.refreshes_overlapped += 1
        if self._tracer.metrics is not None:
            self._tracer.metrics.counter("ingest_refreshes_overlapped_total").inc()
        return True

    def _integrate_refresh(self) -> bool:
        """Collect the in-flight background fit and fold it into serving.

        Blocks (rarely — only when the fit is slower than ``pipeline_lag``
        answers of stream) until the worker finishes; the wait is recorded as
        the ``refresh_wait`` stage.  An ordinary exception from the fit is a
        counted, non-fatal refresh failure; a
        :class:`~repro.serving.faults.SimulatedCrash` re-raises on this
        thread so injected process death tears through exactly like the
        serial path.  Returns ``True`` when a fresh store was adopted.
        """
        pending = self._pending_refresh
        if pending is None:
            return False
        wait_started = time.perf_counter()
        outcome = self._refresh_worker.wait()
        waited = time.perf_counter() - wait_started
        self._pending_refresh = None
        self._stats.refresh_wait_seconds += waited
        self._tracer.record("refresh_wait", waited)
        if outcome.error is not None:
            if not isinstance(outcome.error, Exception):
                raise outcome.error
            self._stats.refresh_failures += 1
            self._stats.update_failures += 1
            if self._tracer.metrics is not None:
                self._tracer.metrics.counter(
                    "ingest_update_failures_total", point="refresh.background"
                ).inc()
            return False
        with self._tracer.span("refresh", kind="reconcile"):
            self._updater.integrate_refresh_result(
                outcome.result,
                pending.reconcile_workers,
                pending.reconcile_tasks,
            )
        self._stats.answers_reconciled += pending.answers_since_launch
        metrics = self._tracer.metrics
        if metrics is not None:
            metrics.histogram("refresh_fit_seconds").observe(outcome.fit_seconds)
            metrics.counter("ingest_reconciled_answers_total").inc(
                pending.answers_since_launch
            )
        return True

    def close(self) -> None:
        """Drain the background worker (discarding any in-flight fit).

        Shutdown seam: the service flushes ``full=True`` first — which
        integrates any in-flight fit — so a fit still running here belongs to
        an abandoned stream and is simply discarded.
        """
        self._pending_refresh = None
        self._refresh_worker.close()

    # ---------------------------------------------------------------- internal
    def _register_event_entities(self, event: AnswerEvent) -> None:
        """Register first-sight workers/tasks carried by ``event``.

        Unknown entities without a payload are a protocol error: the tensor
        append would fail later anyway, but failing here names the missing
        piece (the metadata, not the answer).
        """
        answer = event.answer
        inference = self._inference
        if answer.task_id not in inference._tasks:
            if event.task is None:
                raise KeyError(
                    f"answer references unknown task {answer.task_id!r} and the "
                    "event carries no task payload to register it"
                )
            if event.task.task_id != answer.task_id:
                raise ValueError(
                    f"event task payload {event.task.task_id!r} does not match "
                    f"the answer's task {answer.task_id!r}"
                )
            inference.add_task(event.task)
            self._stats.tasks_registered += 1
        if answer.worker_id not in inference._workers:
            if event.worker is None:
                raise KeyError(
                    f"answer references unknown worker {answer.worker_id!r} and "
                    "the event carries no worker payload to register it"
                )
            if event.worker.worker_id != answer.worker_id:
                raise ValueError(
                    f"event worker payload {event.worker.worker_id!r} does not "
                    f"match the answer's worker {answer.worker_id!r}"
                )
            inference.add_worker(event.worker)
            self._stats.workers_registered += 1

    def _publish(self, published_at: float, source: str) -> ParameterSnapshot:
        """Publish the live estimate over every known entity, O(changed)-first.

        Steady-state micro-batches publish a dirty-row delta onto the
        previous snapshot's immutable base — only the rows this batch touched
        are copied.  The full-copy path (one C-level array copy of the live
        store plus carried-over entities, never a ``ModelParameters``
        flatten) remains for the first publish, full refreshes, universe
        growth, and whenever an external publisher interleaved with ours.
        """
        delta = self._updater.collect_publish_delta()
        latest = self._snapshots.latest()
        if (
            delta is not None
            and latest is not None
            and (latest.num_workers, latest.num_tasks)
            == (delta.num_workers, delta.num_tasks)
        ):
            snapshot = self._snapshots.publish_delta(
                delta, published_at=published_at, source=source
            )
            self._updater.mark_published()
            self._stats.delta_publishes += 1
        else:
            store = self._updater.publish_store(
                self._answers if self._retain else None
            )
            # The store copy was made solely for this publish — hand it over
            # instead of paying a second full-array copy inside the snapshot.
            snapshot = self._snapshots.publish(
                store, published_at=published_at, source=source, copy=False
            )
        self._stats.snapshots_published += 1
        return snapshot

    # -------------------------------------------------------------- durability
    #: Stats carried through a checkpoint so a resumed session's counters
    #: continue from the crashed run instead of restarting at zero.
    _CHECKPOINTED_COUNTERS = (
        "answers",
        "batches",
        "incremental_updates",
        "full_refreshes",
        "snapshots_published",
        "delta_publishes",
        "workers_registered",
        "tasks_registered",
        "events_quarantined",
        "events_rejected_reputation",
        "journal_appends",
        "refreshes_overlapped",
        "answers_reconciled",
        "update_seconds",
    )

    def _supervised(self, point: str, operation: Callable[[], object]) -> bool:
        """Run ``operation`` under bounded retry with exponential backoff.

        Returns ``True`` on success, ``False`` after exhausting
        :attr:`IngestConfig.max_update_retries` — the caller then drops the
        work and marks the snapshot store degraded instead of raising into
        the serving loop.  Only :class:`Exception` is absorbed;
        :class:`~repro.serving.faults.SimulatedCrash` (a ``BaseException``)
        tears through like a real ``kill -9``.
        """
        backoff = self._config.retry_backoff
        for attempt in range(self._config.max_update_retries + 1):
            try:
                if self._faults is not None:
                    self._faults.check(point)
                operation()
                return True
            except Exception:
                self._stats.update_failures += 1
                if self._tracer.metrics is not None:
                    self._tracer.metrics.counter(
                        "ingest_update_failures_total", point=point
                    ).inc()
                if attempt >= self._config.max_update_retries:
                    return False
                self._stats.update_retries += 1
                if self._tracer.metrics is not None:
                    self._tracer.metrics.counter(
                        "ingest_update_retries_total", point=point
                    ).inc()
                if backoff > 0:
                    time.sleep(min(backoff, self._config.max_retry_backoff))
                    backoff *= self._config.retry_backoff_factor
        return False  # pragma: no cover - loop always returns

    def _maybe_checkpoint(self, snapshot: ParameterSnapshot) -> None:
        """Persist the live state if the checkpoint interval has elapsed.

        Checkpoints are cut only here — right after a successful publish,
        with the event buffer empty — so a checkpoint always sits on a
        micro-batch boundary and journal replay from ``journal_seq`` rebuilds
        the exact batch boundaries the crashed run would have produced.
        Failures are counted, never raised: the previous checkpoint plus the
        untruncated journal still cover the full state.
        """
        if self._checkpoints is None or self._config.checkpoint_interval <= 0:
            return
        if self._pending_refresh is not None:
            # Never cut a checkpoint while a background refresh is in flight:
            # a checkpoint must be a state journal replay can reproduce, and
            # an in-flight fit is not part of that durable state — replay
            # re-launches it at the same deterministic answer count instead.
            # The cut happens at the first boundary after integration.
            return
        if (
            self._stats.answers - self._answers_at_checkpoint
            < self._config.checkpoint_interval
        ):
            return
        try:
            if self._faults is not None:
                self._faults.check("checkpoint.save")
            with self._tracer.span("checkpoint"):
                self._write_checkpoint(snapshot)
        except Exception:
            self._stats.checkpoint_failures += 1

    def _write_checkpoint(self, snapshot: ParameterSnapshot) -> None:
        counters: dict[str, float] = {
            name: getattr(self._stats, name) for name in self._CHECKPOINTED_COUNTERS
        }
        extra: dict = {}
        if self._config.stat_decay < 1.0 and self._updater.live_tensor is not None:
            decay_epoch, arrival_epochs = self._updater.export_decay_state()
            extra["decay_epoch"] = decay_epoch
            extra["arrival_epochs"] = arrival_epochs.tolist()
        if self._guard is not None and self._guard.stats.reasons:
            # Quarantined events are never journaled; replay cannot recount
            # them, so the per-reason totals travel with the checkpoint.
            extra["guard_reasons"] = dict(self._guard.stats.reasons)
        if self._reputation is not None:
            extra["reputation"] = self._reputation.state_dict()
        state = CheckpointState(
            store=snapshot.store,
            journal_seq=self._applied_seq,
            snapshot_version=snapshot.version,
            published_at=snapshot.published_at,
            answers=self._updater.export_answers(),
            workers=list(self._inference._workers.values()),
            tasks=list(self._inference._tasks.values()),
            answers_since_full_refresh=self._updater.answers_since_full_refresh,
            counters=counters,
            extra=extra,
        )
        self._checkpoints.save(state)
        self._stats.checkpoints_written += 1
        self._answers_at_checkpoint = self._stats.answers
        if self._journal is not None:
            # Truncate only what the OLDEST retained checkpoint covers:
            # recovery falls back across corrupt checkpoints newest-first, and
            # every retained one must still find its journal tail on disk.
            self._journal.truncate_covered(self._checkpoints.oldest_covered_seq())

    def restore(self, state: CheckpointState) -> None:
        """Adopt a checkpoint's live state (the crash-recovery entry point).

        The caller (:func:`~repro.serving.journal.recover_ingestor`) has
        already re-registered the checkpointed entities and warm-started the
        inference model from the checkpointed store; this restores the
        ingestor's side: the live answer tensor/store (bit-equal, via
        :meth:`~repro.core.incremental.IncrementalUpdater.restore_live_state`),
        the carried-over counters, the guard's duplicate history, and the
        journal cursor.
        """
        self._updater.restore_live_state(
            AnswerSet(state.answers), state.answers_since_full_refresh
        )
        if self._retain:
            for answer in state.answers:
                self._answers.add(answer)
        for name in self._CHECKPOINTED_COUNTERS:
            if name in state.counters:
                value = state.counters[name]
                setattr(
                    self._stats,
                    name,
                    float(value) if name == "update_seconds" else int(value),
                )
        self._stats.log_flattens = self._updater.tensor_rebuilds
        if self._guard is not None:
            self._guard.seed_history(state.answers)
        extra = state.extra
        if "decay_epoch" in extra:
            self._updater.restore_decay_state(
                int(extra["decay_epoch"]),
                np.asarray(extra.get("arrival_epochs", []), dtype=np.int64),
            )
        if self._guard is not None and extra.get("guard_reasons"):
            self._guard.restore_quarantine_stats(extra["guard_reasons"])
        if self._reputation is not None and "reputation" in extra:
            self._reputation.restore_state(extra["reputation"])
        self._pending_seq = state.journal_seq
        self._applied_seq = state.journal_seq
        self._answers_at_checkpoint = self._stats.answers
        # Checkpoints are only cut on stat-epoch boundaries (both follow the
        # same interval + in-flight deferral), so restoring one lands exactly
        # on a reset point: the original run re-seeded its cache here too.
        self._answers_at_stat_epoch = self._stats.answers
