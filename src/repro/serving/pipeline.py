"""Background refresh worker for the pipelined serving loop.

The blocking serving loop runs the periodic full EM re-fit inline on the
ingest thread, stalling every batch (and every publish) behind tens of EM
iterations.  The pipelined loop instead hands the fit to a
:class:`RefreshWorker` — a single daemon thread fitting a frozen
:meth:`~repro.core.em_kernel.AnswerTensor.snapshot` of the live tensor via
:meth:`~repro.core.inference.LocationAwareInference.run_em_detached` — while
the ingest thread keeps appending, sweeping and publishing deltas.  The EM
kernels are NumPy-bound, so the fit releases the GIL for the bulk of its
work and genuinely overlaps the ingest thread.

Determinism is the design constraint: the serving stack's crash-recovery
contract replays a journal through the exact same batching code path and
expects bit-equal state, so nothing about a refresh may depend on wall
clock or thread timing.  The worker therefore never *signals* completion
into the pipeline — the ingest loop launches at a fixed applied-answer
count (the refresh-interval trip), integrates at a fixed count (launch
watermark + configured lag), and *waits* there if the fit is still running.
The only nondeterministic quantity is how long that wait takes, which is
recorded as the ``refresh_wait`` stage and is zero when the stream out-runs
the fit.

A :class:`PendingRefresh` rides along between launch and integration,
accumulating the entities touched by every batch applied mid-fit; the
updater replays exactly those as localized sweeps against the fresh store
before it is atomically published (see
:meth:`~repro.core.incremental.IncrementalUpdater.integrate_refresh_result`).

Failure semantics mirror the blocking path: an ordinary exception inside
the fit is captured and surfaced at integration as a counted, non-fatal
refresh failure (the stream kept serving incrementally; the next interval
retries), while a :class:`~repro.serving.faults.SimulatedCrash` — injected
at the ``"refresh.background"`` check point inside the worker body — is
re-raised on the ingest thread so chaos tests exercise process death during
an overlapped refresh.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.inference import InferenceResult
    from repro.data.models import Answer


@dataclass
class RefreshOutcome:
    """What a background fit produced: a result or the exception that killed it."""

    result: "InferenceResult | None"
    error: BaseException | None
    fit_seconds: float


@dataclass
class PendingRefresh:
    """Book-keeping for one in-flight background refresh.

    ``answers_since_launch`` drives the deterministic integration point;
    ``reconcile_workers`` / ``reconcile_tasks`` accumulate the entities of
    every batch applied while the fit runs, i.e. exactly the neighbourhood
    the fitted store must replay before it may serve.
    """

    #: Applied answers at launch (the snapshot covers exactly these).
    watermark_answers: int
    #: Warm start flag the fit was launched with (report/debugging only).
    warm: bool
    answers_since_launch: int = 0
    reconcile_workers: set[str] = field(default_factory=set)
    reconcile_tasks: set[str] = field(default_factory=set)

    def note_batch(self, new_answers: "list[Answer]") -> None:
        """Record a batch applied while the refresh is in flight."""
        self.answers_since_launch += len(new_answers)
        for answer in new_answers:
            self.reconcile_workers.add(answer.worker_id)
            self.reconcile_tasks.add(answer.task_id)


class RefreshWorker:
    """Runs one detached EM fit at a time on a daemon thread.

    The thread body captures *every* exception — including
    :class:`BaseException` subclasses such as
    :class:`~repro.serving.faults.SimulatedCrash` — into the
    :class:`RefreshOutcome`, so a failure never dies silently on a
    background thread: the ingest loop re-raises or counts it at the
    integration point, on its own thread, deterministically.
    """

    def __init__(self, name: str = "serving-refresh") -> None:
        self._name = name
        self._thread: threading.Thread | None = None
        self._done = threading.Event()
        self._outcome: RefreshOutcome | None = None
        self._launches = 0

    @property
    def in_flight(self) -> bool:
        """Whether a fit has been launched and not yet collected."""
        return self._thread is not None

    @property
    def launches(self) -> int:
        """Fits launched over this worker's lifetime."""
        return self._launches

    def launch(self, fit: "Callable[[], InferenceResult]") -> None:
        """Start ``fit`` on the background thread.

        One fit at a time: launching while a previous fit is uncollected is
        a pipeline sequencing bug and raises.
        """
        if self._thread is not None:
            raise RuntimeError(
                "a background refresh is already in flight; wait() for it "
                "before launching another"
            )
        self._done.clear()
        self._outcome = None
        self._launches += 1

        def _run() -> None:
            started = time.perf_counter()
            try:
                result = fit()
                outcome = RefreshOutcome(
                    result=result,
                    error=None,
                    fit_seconds=time.perf_counter() - started,
                )
            except BaseException as exc:  # noqa: BLE001 - relayed, not handled
                outcome = RefreshOutcome(
                    result=None,
                    error=exc,
                    fit_seconds=time.perf_counter() - started,
                )
            self._outcome = outcome
            self._done.set()

        thread = threading.Thread(target=_run, name=self._name, daemon=True)
        self._thread = thread
        thread.start()

    def wait(self) -> RefreshOutcome:
        """Block until the in-flight fit finishes and return its outcome.

        Joins and releases the thread; the worker is ready for the next
        :meth:`launch` afterwards.
        """
        thread = self._thread
        if thread is None:
            raise RuntimeError("no background refresh is in flight")
        self._done.wait()
        thread.join()
        self._thread = None
        outcome = self._outcome
        self._outcome = None
        return outcome

    def close(self) -> RefreshOutcome | None:
        """Drain an in-flight fit (if any) without integrating it.

        Used at service shutdown so the daemon thread never outlives the
        state it reads.  Returns the discarded outcome, or ``None`` when
        nothing was in flight.
        """
        if self._thread is None:
            return None
        return self.wait()
