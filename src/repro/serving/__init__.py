"""Online serving subsystem: streaming ingestion, snapshots, live assignment.

The paper's system is *online*: workers arrive continuously, answers stream in,
result inference is refreshed incrementally, and the next task assignment must
be computed against the freshest parameters.  This package is that serving
path, layered on the vectorised EM engine and the array-backed incremental
updater of :mod:`repro.core`:

* :mod:`repro.serving.ingest`    — accepts streams of answer events and
  micro-batches them (by count and/or simulated-time window) into
  :class:`~repro.core.incremental.IncrementalUpdater`; the periodic full
  re-fit runs **directly off the updater's live tensor** (zero answer-log
  re-flattens), so the ingestor is log-free by default
  (``IngestConfig.retain_answer_log`` opts back in);
* :mod:`repro.serving.pipeline`  — the background
  :class:`~repro.serving.pipeline.RefreshWorker` that overlaps the periodic
  full EM re-fit with continued ingest (see the pipelined loop below);
* :mod:`repro.serving.snapshots` — immutable, versioned views of the
  :class:`~repro.core.params.ArrayParameterStore` (copy-on-write publish,
  O(changed) dirty-row delta publishes with lazy materialisation,
  monotonically increasing versions, bounded retention, ``.npz`` persistence)
  so reads never observe a half-applied update;
* :mod:`repro.serving.frontend`  — serves an AccOpt / uncertainty /
  spatial-first assignment to each arriving worker against the latest
  published snapshot, recording per-request latency;
* :mod:`repro.serving.journal`   — the segmented, checksummed write-ahead
  :class:`~repro.serving.journal.AnswerJournal` plus the
  :func:`~repro.serving.journal.recover_ingestor` crash-recovery entry point;
* :mod:`repro.serving.guard`     — the event-validation / quarantine gate that
  keeps malformed, duplicate or rate-anomalous submissions out of the EM
  kernel;
* :mod:`repro.serving.faults`    — the deterministic fault-injection harness
  (seeded crash points, refresh exceptions, torn journal tails, corrupt
  checkpoint files) driving the chaos test suite;
* :mod:`repro.serving.service`   — wires everything together over a
  :class:`~repro.crowd.platform.CrowdPlatform` workload and exposes a
  run-to-completion simulation (the ``repro-poi serve-sim`` CLI subcommand).

**The pipelined serving loop.**  By default (``IngestConfig.pipeline``) the
periodic full EM re-fit no longer stalls the stream: when the refresh
interval trips, the triggering batch is applied incrementally and the fit is
handed to a :class:`~repro.serving.pipeline.RefreshWorker` thread over frozen
copies of the live tensor and store, while the ingest thread keeps applying
localized sweeps and publishing dirty-row delta snapshots::

    ingest thread   ... A A A [launch] A A A A [integrate] A A ...
                              |  capture tensor/store  ^ replay mid-fit
                              v  copies (O(state))     | answers, publish
    refresh thread           [========= full EM fit ==========]

Determinism is preserved for crash recovery: launch happens at a fixed
applied-answer count (the interval trip), integration at a fixed count
(launch watermark + ``IngestConfig.pipeline_lag_answers``), and the ingest
thread *waits* at the integration point if the fit is still running (the
only nondeterministic quantity is that wait, recorded as the
``refresh_wait`` stage).  Answers applied mid-fit are accumulated by a
:class:`~repro.serving.pipeline.PendingRefresh` and replayed as localized
sweeps against the fresh store before it is atomically published.
``pipeline=False`` (CLI ``--no-pipeline``) restores the blocking serial
loop, which doubles as the equivalence oracle: both modes end in stores
matching to ≤1e-9.  Micro-batch applies themselves are O(changed) via the
sufficient-statistic cache of :mod:`repro.core.em_kernel` — a sweep folds
only the dirty rows' new answer slots into cached per-entity posteriors
totals instead of re-running E-steps over whole neighbourhoods, and
recently settled entities are deferred for
``IngestConfig.settle_defer_batches`` batches.

**Durability and crash recovery.**  By default the serving stack is purely
in-memory; giving the service a *state directory* turns on the
journal → checkpoint → replay → degraded-mode lifecycle:

1. **Journal (write-ahead).**  Every accepted answer event is appended to the
   segmented, CRC-checksummed :class:`~repro.serving.journal.AnswerJournal`
   *before* it is buffered or applied, so a crash at any point loses at most
   the single record that was mid-write (a *torn tail*, detected and dropped
   on recovery).  Segments rotate at a bounded record count.
2. **Checkpoint.**  Every ``IngestConfig.checkpoint_interval`` applied
   answers, the ingestor persists a
   :class:`~repro.serving.snapshots.CheckpointManager` checkpoint: the latest
   published parameter store, the reconstructed answer log, the entity
   metadata of every registered worker/task, and the update counters —
   everything needed to rebuild the live
   :class:`~repro.core.incremental.IncrementalUpdater` state.  Journal
   segments wholly covered by the checkpoint are truncated.
3. **Replay (recovery).**  :func:`~repro.serving.journal.recover_ingestor`
   loads the newest *valid* checkpoint (corrupt ones are skipped with a
   diagnostic, falling back to older checkpoints or a cold start), rebuilds
   the inference model and the live tensor/store, then replays the journal
   tail through the exact same micro-batching code path — so the recovered
   live store matches the uncrashed run to ≤1e-9, including batch boundaries.
   ``repro-poi serve-sim --state-dir DIR --resume`` drives this end to end.
4. **Degraded mode.**  Model refreshes and snapshot publishes run under a
   supervisor with bounded retries and exponential backoff; when an update
   keeps failing, the batch is dropped, the
   :class:`~repro.serving.snapshots.SnapshotStore` is marked *degraded* and
   the frontend keeps serving the last good snapshot — requests served in
   that state are counted in ``FrontendStats.stale_serves`` instead of
   raising mid-stream.  Invalid events never get this far: the
   :class:`~repro.serving.guard.EventGuard` quarantines them with per-reason
   counters before they touch the journal or the EM kernel.

**Typed failure surface.**  Everything that can go wrong with persisted or
live serving state raises a :class:`ServingStateError` subclass with an
actionable message: :class:`JournalCorruptionError` (a checksummed journal
record failed validation away from the tail), :class:`CheckpointCorruptionError`
(a checkpoint failed its CRC or shape validation),
:class:`SnapshotIntegrityError` (a persisted snapshot or a delta chain failed
row-count/shape validation), and :class:`LiveStateError` (the in-memory
tensor/store lifecycle was violated, e.g. an externally fitted model with no
answer log to rebuild from).

**Open-world serving.**  The stack does not assume the worker/task universe is
known at startup — new entities flow through every layer as they arrive:

1. an :class:`~repro.serving.ingest.AnswerEvent` referencing an unknown worker
   or task carries the entity's metadata as a first-sight payload; the
   ingestor registers it into the inference model before the micro-batch is
   applied (``add_worker`` / ``add_task``);
2. the incremental updater appends the batch to its live, growable
   :class:`~repro.core.em_kernel.AnswerTensor` and admits the new entity into
   the row-aligned :class:`~repro.core.params.ArrayParameterStore` with the
   paper's footnote-3 trusted prior (fully qualified, flattest distance
   function), then refines it with localized masked sweeps — no per-batch
   rebuild of tensors or stores;
3. the next published snapshot's entity universe has grown accordingly
   (snapshots are append-only in entity space: universes never shrink between
   versions);
4. the frontend admits the entity into its assignment strategy — for AccOpt
   the cached distance matrix and the task-side ragged label layout grow with
   the store — so the very next request can be scored over the expanded
   universe;
5. :class:`~repro.serving.service.OnlineServingService` drives the whole flow
   with the ``holdback_worker_fraction`` / ``holdback_task_fraction`` knobs
   of :class:`~repro.serving.service.ServingConfig` (CLI:
   ``--holdback-workers`` / ``--holdback-tasks``): withheld workers join on
   their first arrival batch, withheld tasks on a rolling release schedule,
   and the report records how much of the stream came from entities absent at
   startup.

**Threat model and degradation ladder.**  The stream is assumed *hostile*:
beyond malformed events (the guard's domain), the crowd itself may contain
always-wrong label inverters, coin-flipping spammers and colluding rings
(:data:`~repro.crowd.worker_pool.ADVERSARY_ARCHETYPES`), and even honest
workers' quality drifts over the session
(:class:`~repro.crowd.answer_model.QualityDrift`).  Defences are layered so
each one degrades the attacker's influence further without ever taxing a
clean stream:

1. **Evidence.**  :func:`~repro.serving.guard.trust_scores` judges every
   worker against the *leave-one-out unweighted majority* of the other
   workers on each firm label cell, scored through a distance-decayed
   honest-reference curve whose floor is exactly 0.5 — far-task rows carry
   no evidence (an honest local worker and a coin are indistinguishable
   there), so the frontend's *trust probes* (``ServingConfig.probe_interval``)
   keep swapping one optimiser pick per cycle for the worker's nearest
   unanswered task, guaranteeing the near-task evidence detection needs.
2. **Judgement.**  The :class:`~repro.serving.guard.ReputationTracker` walks
   workers down (and back up) the ``trusted → probation → quarantined``
   ladder with hysteresis: a ``min_answers`` evidence gate, smoothed
   posteriors, consecutive-evaluation patience on every transition, and a
   dead band so re-admission only happens through sustained recovery — a
   falsely quarantined worker keeps being scored against the consensus and
   can earn their way back.
3. **Degradation.**  Quarantine bites at three layers at once: the intake
   rejects the worker's new events (counted separately from guard
   quarantines), full EM refreshes down-weight their *historical* answers by
   ``ReputationConfig.quarantined_weight`` (nonzero, so their own posterior
   can still recover), and the assignment frontend refuses them HITs and
   strikes them from the optimiser's worker universe.  Their votes are also
   struck from the trust consensus itself, so a caught coin stops
   randomising the majority everyone else is judged by.
4. **Drift.**  ``IngestConfig.stat_decay < 1`` ages sufficient statistics
   per applied batch so the model tracks non-stationary workers;
   ``stat_decay=1.0`` keeps the exact historical path bit-for-bit, and the
   whole ladder state (tiers, streaks, posteriors) rides the checkpoint /
   journal-replay cycle, so crash recovery restores the trust view of the
   world bit-equal.

The named workloads in :mod:`repro.framework.scenarios` (``clean``,
``spam``, ``collusion``, ``drift``, ``churn`` — CLI
``repro-poi serve-sim --scenario NAME``) pin this behaviour down, and
``benchmarks/bench_scenario_matrix.py`` gates it in CI: the clean stream
must be indistinguishable from a reputation-blind run, spam detection must
hit 90% recall at 90% precision, and decayed statistics must beat frozen
ones on the practice-curve drift stream.

**Observability.**  The whole pipeline reports into the dependency-free
telemetry substrate of :mod:`repro.obs` — one
:class:`~repro.obs.metrics.MetricsRegistry` per service, one
:class:`~repro.obs.trace.Tracer` threading phase-attributed wall time through
every stage:

* **pipeline spans** — every micro-batch's guard / journal / apply / refresh /
  publish / checkpoint work and every frontend ``assign`` request record into
  the ``stage_seconds`` histogram (labelled by stage) plus
  ``stage_calls_total`` / ``stage_errors_total`` counters.  The top-level
  stages never nest among themselves, so summing their totals attributes wall
  time without double counting;
* **component counters** — guard acceptances and per-reason quarantines,
  journal appends (fsync-labelled latency histogram) and segment rotations,
  snapshot publishes by kind (full vs dirty-row delta) with the live delta
  chain depth, ingest answers/batches/retries/drops, fault-injector
  armed/fired counts, and the EM work rate (localized sweeps run, entities
  settled by early-exit, refresh iterations and final convergence deltas);
* **serving histograms** — assignment latency (the registry histogram is the
  authoritative percentile source; the frontend's
  :class:`~repro.serving.frontend.LatencyReservoir` stays as a compatibility
  view) and snapshot age at serve time;
* **the phase breakdown** — :class:`~repro.obs.trace.PhaseTimeline` samples
  cumulative stage totals every round, and
  :meth:`ServingReport.summary <repro.serving.service.ServingReport.summary>`
  renders the per-stream-quarter share of wall time spent in each stage —
  the instrument that answers *which stage eats the throughput as the stream
  ages* (apply vs refresh vs publish), not just that it decays;
* **exports** — ``ServingConfig(metrics_dir=...)`` writes stamped
  ``metrics.jsonl`` snapshots (every ``metrics_interval`` rounds and at
  shutdown), a Prometheus text rendering, and (``trace=True``) a bounded
  span ring as Chrome ``trace_event`` JSON.  CLI:
  ``repro-poi serve-sim --metrics-dir DIR --metrics-interval N --trace
  --metrics-summary``.

Telemetry is always on in-process (a handful of histogram observations per
micro-batch); components constructed without a tracer fall back to an inert
metricless :class:`~repro.obs.trace.Tracer`, so the hot path never branches.

Typical usage::

    from repro.serving import OnlineServingService, ServingConfig

    service = OnlineServingService(platform, config=ServingConfig())
    report = service.run()
    print(report.summary())

Durable usage (restart-safe)::

    config = ServingConfig(state_dir="serving-state")
    OnlineServingService(platform, config=config).run()      # crashes at t
    config = ServingConfig(state_dir="serving-state", resume=True)
    OnlineServingService(platform, config=config).run()      # resumes from t
"""


class ServingStateError(RuntimeError):
    """Base class for every durable/live serving-state failure.

    Raised (via its subclasses) instead of bare ``RuntimeError`` / ``ValueError``
    deep inside the serving stack, so callers can catch one type and every
    message names both what broke and what to do about it.
    """


class JournalCorruptionError(ServingStateError):
    """A write-ahead journal record failed its checksum away from the tail.

    A *torn tail* (the final record of the final segment cut short by a
    crash) is expected and silently dropped; corruption anywhere else means
    the journal cannot be trusted and replay refuses to continue past it.
    """


class CheckpointCorruptionError(ServingStateError):
    """A persisted checkpoint failed its CRC or its shape validation.

    Recovery skips corrupt checkpoints and falls back to the next older one
    (or a cold start + full journal replay); loading one directly raises.
    """


class SnapshotIntegrityError(ServingStateError):
    """A persisted snapshot or a delta chain failed integrity validation.

    Raised when a ``.npz`` snapshot cannot be read back consistently, or when
    materialising a delta chain meets rows/shapes that do not match the base
    store they claim to patch.
    """


class LiveStateError(ServingStateError):
    """The in-memory serving state lifecycle was violated.

    For example: the incremental updater is asked to rebuild its live tensor
    but the inference model was fitted outside the updater and no answer log
    (nor primed snapshot carryover) exists to rebuild from.
    """


from repro.serving.frontend import AssignmentFrontend, AssignmentResponse, FrontendStats
from repro.serving.ingest import AnswerEvent, AnswerIngestor, IngestConfig, IngestStats
from repro.serving.snapshots import (
    CheckpointManager,
    CheckpointState,
    ParameterSnapshot,
    SnapshotStore,
    load_snapshot,
)
from repro.serving.journal import AnswerJournal, RecoveryReport, recover_ingestor
from repro.serving.pipeline import PendingRefresh, RefreshOutcome, RefreshWorker
from repro.serving.guard import (
    TRUST_TIERS,
    EventGuard,
    GuardConfig,
    GuardStats,
    QuarantinedEvent,
    ReputationConfig,
    ReputationTracker,
)
from repro.serving.faults import FaultInjector, InjectedFault, SimulatedCrash
from repro.serving.service import (
    OnlineServingService,
    ServingConfig,
    ServingReport,
    TrustReport,
)

__all__ = [
    "AnswerEvent",
    "AnswerIngestor",
    "AnswerJournal",
    "AssignmentFrontend",
    "AssignmentResponse",
    "CheckpointCorruptionError",
    "CheckpointManager",
    "CheckpointState",
    "EventGuard",
    "FaultInjector",
    "FrontendStats",
    "GuardConfig",
    "GuardStats",
    "IngestConfig",
    "IngestStats",
    "InjectedFault",
    "JournalCorruptionError",
    "LiveStateError",
    "OnlineServingService",
    "ParameterSnapshot",
    "PendingRefresh",
    "QuarantinedEvent",
    "RecoveryReport",
    "RefreshOutcome",
    "RefreshWorker",
    "ReputationConfig",
    "ReputationTracker",
    "ServingConfig",
    "ServingReport",
    "ServingStateError",
    "SimulatedCrash",
    "SnapshotIntegrityError",
    "SnapshotStore",
    "TRUST_TIERS",
    "TrustReport",
    "load_snapshot",
]
