"""Online serving subsystem: streaming ingestion, snapshots, live assignment.

The paper's system is *online*: workers arrive continuously, answers stream in,
result inference is refreshed incrementally, and the next task assignment must
be computed against the freshest parameters.  This package is that serving
path, layered on the vectorised EM engine and the array-backed incremental
updater of :mod:`repro.core`:

* :mod:`repro.serving.ingest`    — accepts streams of answer events and
  micro-batches them (by count and/or simulated-time window) into
  :class:`~repro.core.incremental.IncrementalUpdater`; the periodic full
  re-fit runs **directly off the updater's live tensor** (zero answer-log
  re-flattens), so the ingestor is log-free by default
  (``IngestConfig.retain_answer_log`` opts back in);
* :mod:`repro.serving.snapshots` — immutable, versioned views of the
  :class:`~repro.core.params.ArrayParameterStore` (copy-on-write publish,
  O(changed) dirty-row delta publishes with lazy materialisation,
  monotonically increasing versions, bounded retention, ``.npz`` persistence)
  so reads never observe a half-applied update;
* :mod:`repro.serving.frontend`  — serves an AccOpt / uncertainty /
  spatial-first assignment to each arriving worker against the latest
  published snapshot, recording per-request latency;
* :mod:`repro.serving.service`   — wires the three together over a
  :class:`~repro.crowd.platform.CrowdPlatform` workload and exposes a
  run-to-completion simulation (the ``repro-poi serve-sim`` CLI subcommand).

**Open-world serving.**  The stack does not assume the worker/task universe is
known at startup — new entities flow through every layer as they arrive:

1. an :class:`~repro.serving.ingest.AnswerEvent` referencing an unknown worker
   or task carries the entity's metadata as a first-sight payload; the
   ingestor registers it into the inference model before the micro-batch is
   applied (``add_worker`` / ``add_task``);
2. the incremental updater appends the batch to its live, growable
   :class:`~repro.core.em_kernel.AnswerTensor` and admits the new entity into
   the row-aligned :class:`~repro.core.params.ArrayParameterStore` with the
   paper's footnote-3 trusted prior (fully qualified, flattest distance
   function), then refines it with localized masked sweeps — no per-batch
   rebuild of tensors or stores;
3. the next published snapshot's entity universe has grown accordingly
   (snapshots are append-only in entity space: universes never shrink between
   versions);
4. the frontend admits the entity into its assignment strategy — for AccOpt
   the cached distance matrix and the task-side ragged label layout grow with
   the store — so the very next request can be scored over the expanded
   universe;
5. :class:`~repro.serving.service.OnlineServingService` drives the whole flow
   with the ``holdback_worker_fraction`` / ``holdback_task_fraction`` knobs
   of :class:`~repro.serving.service.ServingConfig` (CLI:
   ``--holdback-workers`` / ``--holdback-tasks``): withheld workers join on
   their first arrival batch, withheld tasks on a rolling release schedule,
   and the report records how much of the stream came from entities absent at
   startup.

Typical usage::

    from repro.serving import OnlineServingService, ServingConfig

    service = OnlineServingService(platform, config=ServingConfig())
    report = service.run()
    print(report.summary())
"""

from repro.serving.frontend import AssignmentFrontend, AssignmentResponse, FrontendStats
from repro.serving.ingest import AnswerEvent, AnswerIngestor, IngestConfig, IngestStats
from repro.serving.snapshots import ParameterSnapshot, SnapshotStore, load_snapshot
from repro.serving.service import OnlineServingService, ServingConfig, ServingReport

__all__ = [
    "AnswerEvent",
    "AnswerIngestor",
    "AssignmentFrontend",
    "AssignmentResponse",
    "FrontendStats",
    "IngestConfig",
    "IngestStats",
    "OnlineServingService",
    "ParameterSnapshot",
    "ServingConfig",
    "ServingReport",
    "SnapshotStore",
    "load_snapshot",
]
