"""Online serving subsystem: streaming ingestion, snapshots, live assignment.

The paper's system is *online*: workers arrive continuously, answers stream in,
result inference is refreshed incrementally, and the next task assignment must
be computed against the freshest parameters.  This package is that serving
path, layered on the vectorised EM engine and the array-backed incremental
updater of :mod:`repro.core`:

* :mod:`repro.serving.ingest`    — accepts streams of answer events and
  micro-batches them (by count and/or simulated-time window) into
  :class:`~repro.core.incremental.IncrementalUpdater`, with a periodic full
  re-fit on the vectorised engine;
* :mod:`repro.serving.snapshots` — immutable, versioned copies of the
  :class:`~repro.core.params.ArrayParameterStore` (copy-on-write publish,
  monotonically increasing versions, bounded retention, ``.npz`` persistence)
  so reads never observe a half-applied update;
* :mod:`repro.serving.frontend`  — serves an AccOpt / uncertainty /
  spatial-first assignment to each arriving worker against the latest
  published snapshot, recording per-request latency;
* :mod:`repro.serving.service`   — wires the three together over a
  :class:`~repro.crowd.platform.CrowdPlatform` workload and exposes a
  run-to-completion simulation (the ``repro-poi serve-sim`` CLI subcommand).

Typical usage::

    from repro.serving import OnlineServingService, ServingConfig

    service = OnlineServingService(platform, config=ServingConfig())
    report = service.run()
    print(report.summary())
"""

from repro.serving.frontend import AssignmentFrontend, AssignmentResponse, FrontendStats
from repro.serving.ingest import AnswerEvent, AnswerIngestor, IngestConfig, IngestStats
from repro.serving.snapshots import ParameterSnapshot, SnapshotStore, load_snapshot
from repro.serving.service import OnlineServingService, ServingConfig, ServingReport

__all__ = [
    "AnswerEvent",
    "AnswerIngestor",
    "AssignmentFrontend",
    "AssignmentResponse",
    "FrontendStats",
    "IngestConfig",
    "IngestStats",
    "OnlineServingService",
    "ParameterSnapshot",
    "ServingConfig",
    "ServingReport",
    "SnapshotStore",
    "load_snapshot",
]
