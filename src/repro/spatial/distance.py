"""Normalised worker-to-POI distances.

The inference model (Section III of the paper) consumes a normalised distance
``d(w, t) in [0, 1]`` between a worker ``w`` and a task ``t``:

* a worker may declare *several* locations (home, office, interest zones); the
  paper takes the **minimum** distance from any of the worker's locations to the
  POI, because the worker is assumed to be familiar with the neighbourhood of
  every location they declared;
* raw distances are normalised by a maximum distance (the paper suggests the
  maximum pairwise POI distance) so that the bell-shaped quality functions see
  values in ``[0, 1]`` regardless of the dataset's geographic extent.

:class:`DistanceModel` encapsulates the metric choice, the normalisation
constant and a cache of already-computed pairs, and is shared between the
inference model, the assigners and the analysis code so they all agree on what
"distance 0.3" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal, Sequence

import numpy as np

from repro.spatial.geometry import (
    GeoPoint,
    euclidean_distance,
    euclidean_distances,
    haversine_distance,
    haversine_distances,
    points_to_arrays,
)

MetricName = Literal["euclidean", "haversine"]

_METRICS: dict[str, Callable[[GeoPoint, GeoPoint], float]] = {
    "euclidean": euclidean_distance,
    "haversine": haversine_distance,
}

#: Array counterparts of :data:`_METRICS`; signature ``(ax, ay, bx, by)`` with
#: NumPy broadcasting, where ``x``/``y`` are lon/lat for the haversine metric.
_ARRAY_METRICS: dict[str, Callable[..., "np.ndarray"]] = {
    "euclidean": euclidean_distances,
    "haversine": haversine_distances,
}


def max_pairwise_distance(
    points: Sequence[GeoPoint],
    metric: MetricName = "euclidean",
    chunk_size: int = 2048,
) -> float:
    """Maximum pairwise distance among ``points`` (the paper's normaliser).

    Computed as a chunked NumPy broadcast: ``chunk_size`` rows of the full
    pairwise matrix are materialised at a time, so the cost is O(n²) work but
    only O(chunk_size · n) memory.  A single point (or an empty collection) has
    no meaningful diameter; we return 0.0 and leave it to the caller to reject
    that as a normaliser.
    """
    if metric not in _ARRAY_METRICS:
        raise KeyError(metric)
    if len(points) < 2:
        return 0.0
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    distance_fn = _ARRAY_METRICS[metric]
    xs, ys = points_to_arrays(points)
    best = 0.0
    for start in range(0, xs.size, chunk_size):
        stop = min(start + chunk_size, xs.size)
        block = distance_fn(
            xs[start:stop, None], ys[start:stop, None], xs[None, :], ys[None, :]
        )
        best = max(best, float(block.max()))
    return best


@dataclass
class DistanceModel:
    """Computes normalised worker-to-task distances.

    Parameters
    ----------
    max_distance:
        Normalisation constant.  Raw distances are divided by it and clipped to
        ``[0, 1]``; anything at least ``max_distance`` away is "maximally far".
    metric:
        ``"euclidean"`` for planar coordinates or ``"haversine"`` for lon/lat.
    """

    max_distance: float
    metric: MetricName = "euclidean"
    _cache: dict[tuple[tuple[float, float], tuple[float, float]], float] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_distance <= 0 or not np.isfinite(self.max_distance):
            raise ValueError(
                f"max_distance must be positive and finite, got {self.max_distance}"
            )
        if self.metric not in _METRICS:
            raise ValueError(f"unknown metric {self.metric!r}")

    @classmethod
    def from_pois(
        cls, poi_locations: Sequence[GeoPoint], metric: MetricName = "euclidean"
    ) -> "DistanceModel":
        """Build a model normalised by the maximum pairwise POI distance."""
        diameter = max_pairwise_distance(list(poi_locations), metric=metric)
        if diameter <= 0:
            raise ValueError(
                "POI locations must span a positive diameter to define a normaliser"
            )
        return cls(max_distance=diameter, metric=metric)

    def raw_distance(self, a: GeoPoint, b: GeoPoint) -> float:
        """Unnormalised distance between two points under the configured metric."""
        key = (a.as_tuple(), b.as_tuple())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = _METRICS[self.metric](a, b)
        self._cache[key] = value
        self._cache[(key[1], key[0])] = value
        return value

    def normalised(self, a: GeoPoint, b: GeoPoint) -> float:
        """Normalised distance in ``[0, 1]`` between two points."""
        return min(1.0, self.raw_distance(a, b) / self.max_distance)

    def worker_task_distance(
        self, worker_locations: Iterable[GeoPoint], task_location: GeoPoint
    ) -> float:
        """Normalised distance from a worker to a task.

        Follows the paper's convention: the minimum over all of the worker's
        declared locations, then normalised and clipped to ``[0, 1]``.
        """
        locations = list(worker_locations)
        if not locations:
            raise ValueError("a worker must declare at least one location")
        best = min(self.raw_distance(loc, task_location) for loc in locations)
        return min(1.0, best / self.max_distance)

    def worker_task_distances(
        self,
        worker_locations: Sequence[Iterable[GeoPoint]],
        task_locations: Sequence[GeoPoint],
    ) -> np.ndarray:
        """Batched, paired version of :meth:`worker_task_distance`.

        ``worker_locations[i]`` is the collection of declared locations of the
        worker in pair ``i`` and ``task_locations[i]`` the POI location of the
        same pair; the result is the ``(len(pairs),)`` vector of normalised
        distances.  All pairs are computed in one NumPy pass (flatten every
        declared location with an owner index, evaluate the metric once, then
        segment-minimise per owner), replacing N scalar cache lookups when the
        inference engine builds its answer tensor.
        """
        if len(worker_locations) != len(task_locations):
            raise ValueError(
                f"worker_locations and task_locations must pair up, got "
                f"{len(worker_locations)} vs {len(task_locations)}"
            )
        num_pairs = len(worker_locations)
        if num_pairs == 0:
            return np.empty(0, dtype=float)

        flat_locations: list[GeoPoint] = []
        counts = np.empty(num_pairs, dtype=np.intp)
        for i, locations in enumerate(worker_locations):
            materialised = (
                locations
                if isinstance(locations, (list, tuple))
                else list(locations)
            )
            if len(materialised) == 0:
                raise ValueError("a worker must declare at least one location")
            counts[i] = len(materialised)
            flat_locations.extend(materialised)

        owner = np.repeat(np.arange(num_pairs, dtype=np.intp), counts)
        wx, wy = points_to_arrays(flat_locations)
        tx, ty = points_to_arrays(task_locations)
        raw = _ARRAY_METRICS[self.metric](wx, wy, tx[owner], ty[owner])
        # Each pair's locations are contiguous in `raw`, so the per-pair
        # minimum is a segmented reduce over the segment start offsets.
        starts = np.cumsum(counts) - counts
        best = np.minimum.reduceat(raw, starts)
        return np.minimum(1.0, best / self.max_distance)

    def clear_cache(self) -> None:
        """Drop the memoised raw distances (e.g. between independent trials)."""
        self._cache.clear()


def normalised_distance_matrix(
    worker_locations: Sequence[Sequence[GeoPoint]],
    task_locations: Sequence[GeoPoint],
    model: DistanceModel,
    chunk_size: int = 1024,
) -> np.ndarray:
    """Dense ``len(workers) x len(tasks)`` matrix of normalised distances.

    ``worker_locations[i]`` is the list of declared locations of worker ``i``.
    Used by the assignment scalability benchmarks where recomputing distances
    per pair would dominate the measured runtime.  Vectorised in blocks of
    ``chunk_size`` workers: each block broadcasts its declared locations
    against every task and reduces to the per-worker minimum with
    ``np.minimum.reduceat``, bounding peak memory at
    O(chunk_size · max_locations · len(tasks)).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    num_workers = len(worker_locations)
    num_tasks = len(task_locations)
    if num_workers == 0 or num_tasks == 0:
        return np.empty((num_workers, num_tasks), dtype=float)

    flat_locations: list[GeoPoint] = []
    counts = np.empty(num_workers, dtype=np.intp)
    for i, locations in enumerate(worker_locations):
        materialised = list(locations)
        if not materialised:
            raise ValueError("a worker must declare at least one location")
        counts[i] = len(materialised)
        flat_locations.extend(materialised)

    wx, wy = points_to_arrays(flat_locations)
    tx, ty = points_to_arrays(task_locations)
    distance_fn = _ARRAY_METRICS[model.metric]
    starts = np.cumsum(counts) - counts  # first flat row of each worker
    matrix = np.empty((num_workers, num_tasks), dtype=float)
    for block_start in range(0, num_workers, chunk_size):
        block_stop = min(block_start + chunk_size, num_workers)
        row_start = int(starts[block_start])
        row_stop = int(starts[block_stop - 1] + counts[block_stop - 1])
        raw = distance_fn(
            wx[row_start:row_stop, None],
            wy[row_start:row_stop, None],
            tx[None, :],
            ty[None, :],
        )
        matrix[block_start:block_stop] = np.minimum.reduceat(
            raw, starts[block_start:block_stop] - row_start, axis=0
        )
    return np.minimum(1.0, matrix / model.max_distance, out=matrix)
