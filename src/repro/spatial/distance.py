"""Normalised worker-to-POI distances.

The inference model (Section III of the paper) consumes a normalised distance
``d(w, t) in [0, 1]`` between a worker ``w`` and a task ``t``:

* a worker may declare *several* locations (home, office, interest zones); the
  paper takes the **minimum** distance from any of the worker's locations to the
  POI, because the worker is assumed to be familiar with the neighbourhood of
  every location they declared;
* raw distances are normalised by a maximum distance (the paper suggests the
  maximum pairwise POI distance) so that the bell-shaped quality functions see
  values in ``[0, 1]`` regardless of the dataset's geographic extent.

:class:`DistanceModel` encapsulates the metric choice, the normalisation
constant and a cache of already-computed pairs, and is shared between the
inference model, the assigners and the analysis code so they all agree on what
"distance 0.3" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal, Sequence

import numpy as np

from repro.spatial.geometry import (
    GeoPoint,
    euclidean_distance,
    haversine_distance,
)

MetricName = Literal["euclidean", "haversine"]

_METRICS: dict[str, Callable[[GeoPoint, GeoPoint], float]] = {
    "euclidean": euclidean_distance,
    "haversine": haversine_distance,
}


def max_pairwise_distance(
    points: Sequence[GeoPoint], metric: MetricName = "euclidean"
) -> float:
    """Maximum pairwise distance among ``points`` (the paper's normaliser).

    A single point (or an empty collection) has no meaningful diameter; we
    return 0.0 and leave it to the caller to reject that as a normaliser.
    """
    distance_fn = _METRICS[metric]
    best = 0.0
    for i, a in enumerate(points):
        for b in points[i + 1:]:
            d = distance_fn(a, b)
            if d > best:
                best = d
    return best


@dataclass
class DistanceModel:
    """Computes normalised worker-to-task distances.

    Parameters
    ----------
    max_distance:
        Normalisation constant.  Raw distances are divided by it and clipped to
        ``[0, 1]``; anything at least ``max_distance`` away is "maximally far".
    metric:
        ``"euclidean"`` for planar coordinates or ``"haversine"`` for lon/lat.
    """

    max_distance: float
    metric: MetricName = "euclidean"
    _cache: dict[tuple[tuple[float, float], tuple[float, float]], float] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_distance <= 0 or not np.isfinite(self.max_distance):
            raise ValueError(
                f"max_distance must be positive and finite, got {self.max_distance}"
            )
        if self.metric not in _METRICS:
            raise ValueError(f"unknown metric {self.metric!r}")

    @classmethod
    def from_pois(
        cls, poi_locations: Sequence[GeoPoint], metric: MetricName = "euclidean"
    ) -> "DistanceModel":
        """Build a model normalised by the maximum pairwise POI distance."""
        diameter = max_pairwise_distance(list(poi_locations), metric=metric)
        if diameter <= 0:
            raise ValueError(
                "POI locations must span a positive diameter to define a normaliser"
            )
        return cls(max_distance=diameter, metric=metric)

    def raw_distance(self, a: GeoPoint, b: GeoPoint) -> float:
        """Unnormalised distance between two points under the configured metric."""
        key = (a.as_tuple(), b.as_tuple())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = _METRICS[self.metric](a, b)
        self._cache[key] = value
        self._cache[(key[1], key[0])] = value
        return value

    def normalised(self, a: GeoPoint, b: GeoPoint) -> float:
        """Normalised distance in ``[0, 1]`` between two points."""
        return min(1.0, self.raw_distance(a, b) / self.max_distance)

    def worker_task_distance(
        self, worker_locations: Iterable[GeoPoint], task_location: GeoPoint
    ) -> float:
        """Normalised distance from a worker to a task.

        Follows the paper's convention: the minimum over all of the worker's
        declared locations, then normalised and clipped to ``[0, 1]``.
        """
        locations = list(worker_locations)
        if not locations:
            raise ValueError("a worker must declare at least one location")
        best = min(self.raw_distance(loc, task_location) for loc in locations)
        return min(1.0, best / self.max_distance)

    def clear_cache(self) -> None:
        """Drop the memoised raw distances (e.g. between independent trials)."""
        self._cache.clear()


def normalised_distance_matrix(
    worker_locations: Sequence[Sequence[GeoPoint]],
    task_locations: Sequence[GeoPoint],
    model: DistanceModel,
) -> np.ndarray:
    """Dense ``len(workers) x len(tasks)`` matrix of normalised distances.

    ``worker_locations[i]`` is the list of declared locations of worker ``i``.
    Used by the assignment scalability benchmarks where recomputing distances
    per pair would dominate the measured runtime.
    """
    matrix = np.empty((len(worker_locations), len(task_locations)), dtype=float)
    for i, locations in enumerate(worker_locations):
        for j, task_location in enumerate(task_locations):
            matrix[i, j] = model.worker_task_distance(locations, task_location)
    return matrix
