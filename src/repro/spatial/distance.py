"""Normalised worker-to-POI distances.

The inference model (Section III of the paper) consumes a normalised distance
``d(w, t) in [0, 1]`` between a worker ``w`` and a task ``t``:

* a worker may declare *several* locations (home, office, interest zones); the
  paper takes the **minimum** distance from any of the worker's locations to the
  POI, because the worker is assumed to be familiar with the neighbourhood of
  every location they declared;
* raw distances are normalised by a maximum distance (the paper suggests the
  maximum pairwise POI distance) so that the bell-shaped quality functions see
  values in ``[0, 1]`` regardless of the dataset's geographic extent.

:class:`DistanceModel` encapsulates the metric choice, the normalisation
constant and a cache of already-computed pairs, and is shared between the
inference model, the assigners and the analysis code so they all agree on what
"distance 0.3" means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Literal, Sequence

import numpy as np

from repro.spatial.geometry import (
    GeoPoint,
    convex_hull_indices,
    euclidean_distance,
    euclidean_distances,
    haversine_distance,
    haversine_distances,
    points_to_arrays,
)

MetricName = Literal["euclidean", "haversine"]

_METRICS: dict[str, Callable[[GeoPoint, GeoPoint], float]] = {
    "euclidean": euclidean_distance,
    "haversine": haversine_distance,
}

#: Array counterparts of :data:`_METRICS`; signature ``(ax, ay, bx, by)`` with
#: NumPy broadcasting, where ``x``/``y`` are lon/lat for the haversine metric.
_ARRAY_METRICS: dict[str, Callable[..., "np.ndarray"]] = {
    "euclidean": euclidean_distances,
    "haversine": haversine_distances,
}


#: Below this many points the brute-force diameter scan is as fast as building
#: a hull, so ``method="auto"`` keeps the O(N²) oracle path.
_HULL_CUTOFF = 1024


def _bruteforce_diameter(
    xs: np.ndarray,
    ys: np.ndarray,
    distance_fn: Callable[..., "np.ndarray"],
    chunk_size: int,
) -> float:
    """Exact diameter by chunked O(N²) broadcast over coordinate arrays."""
    best = 0.0
    for start in range(0, xs.size, chunk_size):
        stop = min(start + chunk_size, xs.size)
        block = distance_fn(
            xs[start:stop, None], ys[start:stop, None], xs[None, :], ys[None, :]
        )
        best = max(best, float(block.max()))
    return best


def max_pairwise_distance(
    points: Sequence[GeoPoint],
    metric: MetricName = "euclidean",
    chunk_size: int = 2048,
    method: Literal["auto", "hull", "bruteforce"] = "auto",
) -> float:
    """Maximum pairwise distance among ``points`` (the paper's normaliser).

    ``method="hull"`` computes the convex hull first (O(N log N)) and scans
    only pairs of hull vertices: the two farthest points of a set are always
    hull vertices, so the result is exact while the pair scan shrinks from N²
    to h² (h is typically O(log N) for random point sets).  For the haversine
    metric the hull is taken in lon/lat coordinates, which preserves the
    farthest pair away from the poles/antimeridian — exactly the regime of the
    paper's city/country datasets.  ``method="bruteforce"`` is the original
    chunked O(N²) broadcast, kept as the equivalence oracle for small N and
    selected automatically below ``1024`` points; ``method="auto"`` picks
    between the two by size.  A single point (or an empty collection) has no
    meaningful diameter; we return 0.0 and leave it to the caller to reject
    that as a normaliser.
    """
    if metric not in _ARRAY_METRICS:
        raise KeyError(metric)
    if method not in ("auto", "hull", "bruteforce"):
        raise ValueError(f"unknown method {method!r}")
    if len(points) < 2:
        return 0.0
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    distance_fn = _ARRAY_METRICS[metric]
    xs, ys = points_to_arrays(points)
    if method == "auto":
        method = "bruteforce" if xs.size <= _HULL_CUTOFF else "hull"
    if method == "hull":
        hull = convex_hull_indices(xs, ys)
        if hull.size >= 2:
            xs, ys = xs[hull], ys[hull]
    return _bruteforce_diameter(xs, ys, distance_fn, chunk_size)


@dataclass
class DistanceModel:
    """Computes normalised worker-to-task distances.

    Parameters
    ----------
    max_distance:
        Normalisation constant.  Raw distances are divided by it and clipped to
        ``[0, 1]``; anything at least ``max_distance`` away is "maximally far".
    metric:
        ``"euclidean"`` for planar coordinates or ``"haversine"`` for lon/lat.
    """

    max_distance: float
    metric: MetricName = "euclidean"
    _cache: dict[tuple[tuple[float, float], tuple[float, float]], float] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_distance <= 0 or not np.isfinite(self.max_distance):
            raise ValueError(
                f"max_distance must be positive and finite, got {self.max_distance}"
            )
        if self.metric not in _METRICS:
            raise ValueError(f"unknown metric {self.metric!r}")

    @classmethod
    def from_pois(
        cls, poi_locations: Sequence[GeoPoint], metric: MetricName = "euclidean"
    ) -> "DistanceModel":
        """Build a model normalised by the maximum pairwise POI distance."""
        diameter = max_pairwise_distance(list(poi_locations), metric=metric)
        if diameter <= 0:
            raise ValueError(
                "POI locations must span a positive diameter to define a normaliser"
            )
        return cls(max_distance=diameter, metric=metric)

    def raw_distance(self, a: GeoPoint, b: GeoPoint) -> float:
        """Unnormalised distance between two points under the configured metric."""
        key = (a.as_tuple(), b.as_tuple())
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = _METRICS[self.metric](a, b)
        self._cache[key] = value
        self._cache[(key[1], key[0])] = value
        return value

    def normalised(self, a: GeoPoint, b: GeoPoint) -> float:
        """Normalised distance in ``[0, 1]`` between two points."""
        return min(1.0, self.raw_distance(a, b) / self.max_distance)

    def worker_task_distance(
        self, worker_locations: Iterable[GeoPoint], task_location: GeoPoint
    ) -> float:
        """Normalised distance from a worker to a task.

        Follows the paper's convention: the minimum over all of the worker's
        declared locations, then normalised and clipped to ``[0, 1]``.
        """
        locations = list(worker_locations)
        if not locations:
            raise ValueError("a worker must declare at least one location")
        best = min(self.raw_distance(loc, task_location) for loc in locations)
        return min(1.0, best / self.max_distance)

    def worker_task_distances(
        self,
        worker_locations: Sequence[Iterable[GeoPoint]],
        task_locations: Sequence[GeoPoint],
    ) -> np.ndarray:
        """Batched, paired version of :meth:`worker_task_distance`.

        ``worker_locations[i]`` is the collection of declared locations of the
        worker in pair ``i`` and ``task_locations[i]`` the POI location of the
        same pair; the result is the ``(len(pairs),)`` vector of normalised
        distances.  All pairs are computed in one NumPy pass (flatten every
        declared location with an owner index, evaluate the metric once, then
        segment-minimise per owner), replacing N scalar cache lookups when the
        inference engine builds its answer tensor.
        """
        if len(worker_locations) != len(task_locations):
            raise ValueError(
                f"worker_locations and task_locations must pair up, got "
                f"{len(worker_locations)} vs {len(task_locations)}"
            )
        num_pairs = len(worker_locations)
        if num_pairs == 0:
            return np.empty(0, dtype=float)

        flat_locations: list[GeoPoint] = []
        counts = np.empty(num_pairs, dtype=np.intp)
        for i, locations in enumerate(worker_locations):
            materialised = (
                locations
                if isinstance(locations, (list, tuple))
                else list(locations)
            )
            if len(materialised) == 0:
                raise ValueError("a worker must declare at least one location")
            counts[i] = len(materialised)
            flat_locations.extend(materialised)

        owner = np.repeat(np.arange(num_pairs, dtype=np.intp), counts)
        wx, wy = points_to_arrays(flat_locations)
        tx, ty = points_to_arrays(task_locations)
        raw = _ARRAY_METRICS[self.metric](wx, wy, tx[owner], ty[owner])
        # Each pair's locations are contiguous in `raw`, so the per-pair
        # minimum is a segmented reduce over the segment start offsets.
        starts = np.cumsum(counts) - counts
        best = np.minimum.reduceat(raw, starts)
        return np.minimum(1.0, best / self.max_distance)

    def clear_cache(self) -> None:
        """Drop the memoised raw distances (e.g. between independent trials)."""
        self._cache.clear()


def normalised_distance_matrix(
    worker_locations: Sequence[Sequence[GeoPoint]],
    task_locations: Sequence[GeoPoint],
    model: DistanceModel,
    chunk_size: int = 1024,
) -> np.ndarray:
    """Dense ``len(workers) x len(tasks)`` matrix of normalised distances.

    ``worker_locations[i]`` is the list of declared locations of worker ``i``.
    Used by the assignment scalability benchmarks where recomputing distances
    per pair would dominate the measured runtime.  Vectorised in blocks of
    ``chunk_size`` workers: each block broadcasts its declared locations
    against every task and reduces to the per-worker minimum with
    ``np.minimum.reduceat``, bounding peak memory at
    O(chunk_size · max_locations · len(tasks)).
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    num_workers = len(worker_locations)
    num_tasks = len(task_locations)
    if num_workers == 0 or num_tasks == 0:
        return np.empty((num_workers, num_tasks), dtype=float)

    flat_locations: list[GeoPoint] = []
    counts = np.empty(num_workers, dtype=np.intp)
    for i, locations in enumerate(worker_locations):
        materialised = list(locations)
        if not materialised:
            raise ValueError("a worker must declare at least one location")
        counts[i] = len(materialised)
        flat_locations.extend(materialised)

    wx, wy = points_to_arrays(flat_locations)
    tx, ty = points_to_arrays(task_locations)
    distance_fn = _ARRAY_METRICS[model.metric]
    starts = np.cumsum(counts) - counts  # first flat row of each worker
    matrix = np.empty((num_workers, num_tasks), dtype=float)
    for block_start in range(0, num_workers, chunk_size):
        block_stop = min(block_start + chunk_size, num_workers)
        row_start = int(starts[block_start])
        row_stop = int(starts[block_stop - 1] + counts[block_stop - 1])
        raw = distance_fn(
            wx[row_start:row_stop, None],
            wy[row_start:row_stop, None],
            tx[None, :],
            ty[None, :],
        )
        matrix[block_start:block_stop] = np.minimum.reduceat(
            raw, starts[block_start:block_stop] - row_start, axis=0
        )
    return np.minimum(1.0, matrix / model.max_distance, out=matrix)


def sparse_distance_csr(
    worker_locations: Sequence[Sequence[GeoPoint]],
    task_locations: Sequence[GeoPoint],
    model: DistanceModel,
    indptr: np.ndarray,
    indices: np.ndarray,
    chunk_size: int = 1 << 18,
) -> np.ndarray:
    """Normalised distances for the candidate pairs of a CSR structure only.

    Sparse twin of :func:`normalised_distance_matrix`: ``indptr``/``indices``
    describe, per worker row ``i``, which task columns are candidates
    (``indices[indptr[i]:indptr[i + 1]]``), and the result is the ``(nnz,)``
    vector of normalised worker→task distances aligned with ``indices``.  The
    arithmetic matches the dense path exactly — same metric kernel, minimum
    over the worker's declared locations, then ``min(1, raw / max_distance)``
    — so a candidate pair gets a bit-identical distance to the one the dense
    matrix would hold.  Work and memory are O(nnz · max_locations), chunked
    over ``chunk_size`` candidate pairs.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk_size must be positive, got {chunk_size}")
    indptr = np.asarray(indptr, dtype=np.intp)
    indices = np.asarray(indices, dtype=np.intp)
    num_workers = len(worker_locations)
    if indptr.size != num_workers + 1:
        raise ValueError(
            f"indptr must have {num_workers + 1} entries, got {indptr.size}"
        )
    nnz = int(indptr[-1])
    if indices.size != nnz:
        raise ValueError(f"indices must have {nnz} entries, got {indices.size}")
    if nnz == 0:
        return np.empty(0, dtype=float)

    flat_locations: list[GeoPoint] = []
    loc_counts = np.empty(num_workers, dtype=np.intp)
    for i, locations in enumerate(worker_locations):
        materialised = list(locations)
        if not materialised:
            raise ValueError("a worker must declare at least one location")
        loc_counts[i] = len(materialised)
        flat_locations.extend(materialised)
    wx, wy = points_to_arrays(flat_locations)
    tx, ty = points_to_arrays(task_locations)
    loc_starts = np.cumsum(loc_counts) - loc_counts

    rows = np.repeat(np.arange(num_workers, dtype=np.intp), np.diff(indptr))
    distance_fn = _ARRAY_METRICS[model.metric]
    out = np.empty(nnz, dtype=float)
    for start in range(0, nnz, chunk_size):
        stop = min(start + chunk_size, nnz)
        chunk_rows = rows[start:stop]
        chunk_counts = loc_counts[chunk_rows]
        # Expand each candidate pair into one entry per declared worker
        # location: segment offsets via the repeat/cumsum-arange trick.
        seg_starts = np.cumsum(chunk_counts) - chunk_counts
        within = np.arange(int(chunk_counts.sum()), dtype=np.intp) - np.repeat(
            seg_starts, chunk_counts
        )
        flat_idx = np.repeat(loc_starts[chunk_rows], chunk_counts) + within
        task_idx = np.repeat(indices[start:stop], chunk_counts)
        raw = distance_fn(wx[flat_idx], wy[flat_idx], tx[task_idx], ty[task_idx])
        out[start:stop] = np.minimum.reduceat(raw, seg_starts)
    return np.minimum(1.0, out / model.max_distance, out=out)
