"""Spatial substrate: geometry primitives, normalised distances and a grid index.

The inference model and the Spatial-First assignment baseline only ever consume
*normalised* worker-to-POI distances in ``[0, 1]``.  This package provides the
geometry (:mod:`repro.spatial.geometry`), the normalisation and multi-location
minimum-distance logic (:mod:`repro.spatial.distance`), bounding boxes
(:mod:`repro.spatial.bbox`) and a uniform grid spatial index used by the
Spatial-First assigner and the dataset generators
(:mod:`repro.spatial.grid_index`).

For web-scale universes the grid index also answers *bulk* radius queries in
CSR layout (:meth:`~repro.spatial.grid_index.GridIndex.items_within_many`,
:meth:`~repro.spatial.grid_index.GridIndex.candidate_pairs`), and
:mod:`repro.spatial.candidates` builds on them: a
:class:`~repro.spatial.candidates.CandidateIndex` holds O(nnz) per-worker
candidate rows (exact normalised distances for in-radius pairs only) that the
``engine="sparse"`` inference and AccOpt paths consume instead of dense
O(W·T) matrices, with out-of-radius pairs collapsed to a shared far-field
default.
"""

from repro.spatial.geometry import GeoPoint, euclidean_distance, haversine_distance
from repro.spatial.bbox import BoundingBox
from repro.spatial.distance import (
    DistanceModel,
    normalised_distance_matrix,
    sparse_distance_csr,
)
from repro.spatial.grid_index import CandidatePairs, GridIndex
from repro.spatial.candidates import CandidateIndex

__all__ = [
    "GeoPoint",
    "euclidean_distance",
    "haversine_distance",
    "BoundingBox",
    "DistanceModel",
    "normalised_distance_matrix",
    "sparse_distance_csr",
    "CandidatePairs",
    "GridIndex",
    "CandidateIndex",
]
