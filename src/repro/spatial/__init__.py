"""Spatial substrate: geometry primitives, normalised distances and a grid index.

The inference model and the Spatial-First assignment baseline only ever consume
*normalised* worker-to-POI distances in ``[0, 1]``.  This package provides the
geometry (:mod:`repro.spatial.geometry`), the normalisation and multi-location
minimum-distance logic (:mod:`repro.spatial.distance`), bounding boxes
(:mod:`repro.spatial.bbox`) and a uniform grid spatial index used by the
Spatial-First assigner and the dataset generators
(:mod:`repro.spatial.grid_index`).
"""

from repro.spatial.geometry import GeoPoint, euclidean_distance, haversine_distance
from repro.spatial.bbox import BoundingBox
from repro.spatial.distance import DistanceModel, normalised_distance_matrix
from repro.spatial.grid_index import GridIndex

__all__ = [
    "GeoPoint",
    "euclidean_distance",
    "haversine_distance",
    "BoundingBox",
    "DistanceModel",
    "normalised_distance_matrix",
    "GridIndex",
]
