"""Geometric primitives: points and distance functions.

The paper works with POIs and workers located in a city (Beijing) or a country
(China).  Internally all algorithms consume distances normalised to ``[0, 1]``,
so the choice of metric only matters for the raw distance computation.  We
provide both planar Euclidean distance (used by the paper's running example,
whose coordinates are plain x/y values) and the haversine great-circle distance
for latitude/longitude coordinates produced by the dataset generators.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

#: Mean Earth radius in kilometres, used by :func:`haversine_distance`.
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A point identified by two coordinates.

    ``x``/``y`` are interpreted either as planar coordinates (Euclidean metric)
    or as longitude/latitude in degrees (haversine metric); the metric choice is
    made by the :class:`repro.spatial.distance.DistanceModel` that consumes the
    points, not by the point itself.
    """

    x: float
    y: float

    def __post_init__(self) -> None:
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise ValueError(f"coordinates must be finite, got ({self.x}, {self.y})")

    @property
    def lon(self) -> float:
        """Longitude alias for :attr:`x` when the point is geographic."""
        return self.x

    @property
    def lat(self) -> float:
        """Latitude alias for :attr:`y` when the point is geographic."""
        return self.y

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)

    def offset(self, dx: float, dy: float) -> "GeoPoint":
        """Return a new point displaced by ``(dx, dy)``."""
        return GeoPoint(self.x + dx, self.y + dy)


def euclidean_distance(a: GeoPoint, b: GeoPoint) -> float:
    """Planar Euclidean distance between two points."""
    return math.hypot(a.x - b.x, a.y - b.y)


def haversine_distance(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance in kilometres between two lon/lat points."""
    lon1, lat1 = math.radians(a.lon), math.radians(a.lat)
    lon2, lat2 = math.radians(b.lon), math.radians(b.lat)
    dlon = lon2 - lon1
    dlat = lat2 - lat1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    # Clamp to guard against floating-point overshoot for antipodal points.
    h = min(1.0, max(0.0, h))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(h))


def euclidean_distances(
    ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray
) -> np.ndarray:
    """Element-wise (broadcasting) planar Euclidean distances.

    Array counterpart of :func:`euclidean_distance`; ``np.hypot`` matches
    ``math.hypot`` so scalar and batched code paths agree bit-for-bit.
    """
    return np.hypot(np.asarray(ax, dtype=float) - bx, np.asarray(ay, dtype=float) - by)


def haversine_distances(
    alon: np.ndarray, alat: np.ndarray, blon: np.ndarray, blat: np.ndarray
) -> np.ndarray:
    """Element-wise (broadcasting) great-circle distances in kilometres.

    Array counterpart of :func:`haversine_distance` using the same formula and
    the same antipodal clamp.
    """
    lon1 = np.radians(np.asarray(alon, dtype=float))
    lat1 = np.radians(np.asarray(alat, dtype=float))
    lon2 = np.radians(np.asarray(blon, dtype=float))
    lat2 = np.radians(np.asarray(blat, dtype=float))
    h = (
        np.sin((lat2 - lat1) / 2.0) ** 2
        + np.cos(lat1) * np.cos(lat2) * np.sin((lon2 - lon1) / 2.0) ** 2
    )
    h = np.clip(h, 0.0, 1.0)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(h))


def points_to_arrays(points: Iterable[GeoPoint]) -> tuple[np.ndarray, np.ndarray]:
    """Split a collection of points into parallel x / y coordinate arrays."""
    materialised = points if isinstance(points, (list, tuple)) else list(points)
    xs = np.fromiter((p.x for p in materialised), dtype=float, count=len(materialised))
    ys = np.fromiter((p.y for p in materialised), dtype=float, count=len(materialised))
    return xs, ys


def convex_hull_indices(xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
    """Indices of the convex hull of ``(xs, ys)``, counter-clockwise.

    Andrew's monotone chain in O(N log N).  Collinear points on hull edges are
    dropped, duplicates are tolerated, and degenerate inputs (all points equal
    or collinear) reduce to the two extreme points (or a single point).  The
    returned indices refer to the *original* arrays.

    The hull is computed in the plane of the raw coordinates.  For lon/lat
    data this is the hull in equirectangular coordinates; away from the poles
    and the antimeridian the farthest great-circle pair still lies on that
    hull (spherical caps are quasi-convex in lon/lat there), which is the only
    property :func:`repro.spatial.distance.max_pairwise_distance` relies on.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("xs and ys must be 1-D arrays of equal length")
    n = xs.size
    if n == 0:
        return np.empty(0, dtype=np.intp)
    order = np.lexsort((ys, xs))
    # Collapse exact duplicates so the chain never stalls on repeated points.
    keep = np.ones(order.size, dtype=bool)
    keep[1:] = (np.diff(xs[order]) != 0.0) | (np.diff(ys[order]) != 0.0)
    order = order[keep]
    if order.size <= 2:
        return order

    def _chain(indices: np.ndarray) -> list[int]:
        hull: list[int] = []
        for idx in indices:
            while len(hull) >= 2:
                o, a = hull[-2], hull[-1]
                cross = (xs[a] - xs[o]) * (ys[idx] - ys[o]) - (
                    ys[a] - ys[o]
                ) * (xs[idx] - xs[o])
                if cross <= 0.0:
                    hull.pop()
                else:
                    break
            hull.append(int(idx))
        return hull

    lower = _chain(order)
    upper = _chain(order[::-1])
    return np.asarray(lower[:-1] + upper[:-1], dtype=np.intp)


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Arithmetic centroid of a non-empty collection of points."""
    xs, ys, count = 0.0, 0.0, 0
    for point in points:
        xs += point.x
        ys += point.y
        count += 1
    if count == 0:
        raise ValueError("cannot compute the centroid of zero points")
    return GeoPoint(xs / count, ys / count)
