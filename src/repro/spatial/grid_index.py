"""A uniform grid spatial index over point data.

The Spatial-First assignment baseline repeatedly asks "which not-yet-answered
task is closest to this worker?".  A brute-force scan is ``O(|T|)`` per query;
for the scalability experiments (Figure 14, up to 10,000 tasks and hundreds of
workers) a simple uniform grid keeps queries cheap without pulling in external
spatial libraries.  The index works on raw coordinates and any item type — items
are registered with an id and a :class:`~repro.spatial.geometry.GeoPoint`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Hashable, Iterable, Iterator

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import GeoPoint, euclidean_distance


class GridIndex:
    """Uniform grid index supporting insertion, removal and nearest queries.

    The grid uses the planar Euclidean metric on raw coordinates.  For lon/lat
    data over city- or country-scale extents this is a fine approximation for
    *ranking* candidates by proximity, which is all the Spatial-First baseline
    needs; exact distances are recomputed by the caller's
    :class:`~repro.spatial.distance.DistanceModel`.
    """

    def __init__(self, bounds: BoundingBox, cells_per_axis: int = 32) -> None:
        if cells_per_axis <= 0:
            raise ValueError(f"cells_per_axis must be positive, got {cells_per_axis}")
        self._bounds = bounds
        self._cells_per_axis = cells_per_axis
        self._cell_width = max(bounds.width, 1e-12) / cells_per_axis
        self._cell_height = max(bounds.height, 1e-12) / cells_per_axis
        self._cells: dict[tuple[int, int], set[Hashable]] = defaultdict(set)
        self._locations: dict[Hashable, GeoPoint] = {}

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, item_id: Hashable) -> bool:
        return item_id in self._locations

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._locations)

    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    def _cell_of(self, point: GeoPoint) -> tuple[int, int]:
        clamped = self._bounds.clamp(point)
        col = int((clamped.x - self._bounds.min_x) / self._cell_width)
        row = int((clamped.y - self._bounds.min_y) / self._cell_height)
        col = min(self._cells_per_axis - 1, max(0, col))
        row = min(self._cells_per_axis - 1, max(0, row))
        return (col, row)

    def insert(self, item_id: Hashable, location: GeoPoint) -> None:
        """Insert (or move) ``item_id`` at ``location``."""
        if item_id in self._locations:
            self.remove(item_id)
        self._locations[item_id] = location
        self._cells[self._cell_of(location)].add(item_id)

    def insert_many(self, items: Iterable[tuple[Hashable, GeoPoint]]) -> None:
        for item_id, location in items:
            self.insert(item_id, location)

    def remove(self, item_id: Hashable) -> None:
        """Remove ``item_id``; raises ``KeyError`` if it is not present."""
        location = self._locations.pop(item_id)
        cell = self._cell_of(location)
        self._cells[cell].discard(item_id)
        if not self._cells[cell]:
            del self._cells[cell]

    def location_of(self, item_id: Hashable) -> GeoPoint:
        return self._locations[item_id]

    def nearest(
        self, query: GeoPoint, count: int = 1, exclude: frozenset | set | None = None
    ) -> list[Hashable]:
        """Return up to ``count`` item ids closest to ``query``.

        The search expands ring by ring around the query cell and stops once
        enough candidates have been found *and* the next ring cannot contain a
        closer item.  Ties are broken by item id to keep results deterministic.
        """
        if count <= 0:
            return []
        exclude = exclude or frozenset()
        if not self._locations:
            return []

        center_col, center_row = self._cell_of(query)
        found: list[tuple[float, Hashable]] = []
        max_radius = self._cells_per_axis

        for radius in range(max_radius + 1):
            newly_scanned = False
            for col, row in self._ring_cells(center_col, center_row, radius):
                items = self._cells.get((col, row))
                if not items:
                    continue
                newly_scanned = True
                for item_id in items:
                    if item_id in exclude:
                        continue
                    d = euclidean_distance(query, self._locations[item_id])
                    found.append((d, item_id))
            if len(found) >= count:
                # A ring at distance `radius` cells guarantees that everything
                # strictly closer than (radius) * min_cell_size has been seen.
                found.sort(key=lambda pair: (pair[0], str(pair[1])))
                safe_distance = radius * min(self._cell_width, self._cell_height)
                if found[count - 1][0] <= safe_distance or radius == max_radius:
                    return [item_id for _, item_id in found[:count]]
            if radius == max_radius and not newly_scanned and found:
                break

        found.sort(key=lambda pair: (pair[0], str(pair[1])))
        return [item_id for _, item_id in found[:count]]

    def _ring_cells(
        self, center_col: int, center_row: int, radius: int
    ) -> Iterator[tuple[int, int]]:
        """Yield the cells forming the square ring at ``radius`` around a cell."""
        if radius == 0:
            yield (center_col, center_row)
            return
        low_col, high_col = center_col - radius, center_col + radius
        low_row, high_row = center_row - radius, center_row + radius
        for col in range(low_col, high_col + 1):
            for row in (low_row, high_row):
                if 0 <= col < self._cells_per_axis and 0 <= row < self._cells_per_axis:
                    yield (col, row)
        for row in range(low_row + 1, high_row):
            for col in (low_col, high_col):
                if 0 <= col < self._cells_per_axis and 0 <= row < self._cells_per_axis:
                    yield (col, row)

    def items_within(self, query: GeoPoint, radius: float) -> list[Hashable]:
        """All item ids within Euclidean ``radius`` of ``query``."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        cells_x = int(math.ceil(radius / self._cell_width)) if self._cell_width else 0
        cells_y = int(math.ceil(radius / self._cell_height)) if self._cell_height else 0
        center_col, center_row = self._cell_of(query)
        result = []
        for col in range(center_col - cells_x, center_col + cells_x + 1):
            for row in range(center_row - cells_y, center_row + cells_y + 1):
                for item_id in self._cells.get((col, row), ()):
                    if euclidean_distance(query, self._locations[item_id]) <= radius:
                        result.append(item_id)
        return sorted(result, key=str)
