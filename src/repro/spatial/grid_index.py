"""A uniform grid spatial index over point data.

The Spatial-First assignment baseline repeatedly asks "which not-yet-answered
task is closest to this worker?".  A brute-force scan is ``O(|T|)`` per query;
for the scalability experiments (Figure 14, up to 10,000 tasks and hundreds of
workers) a simple uniform grid keeps queries cheap without pulling in external
spatial libraries.  The index works on raw coordinates and any item type — items
are registered with an id and a :class:`~repro.spatial.geometry.GeoPoint`.

Beyond the scalar queries, the index supports *bulk* radius queries
(:meth:`GridIndex.items_within_many`) and the CSR candidate-pair extraction
(:meth:`GridIndex.candidate_pairs`) that feeds the sparse inference and
assignment engines: instead of a dense ``W×T`` distance matrix, only the
radius-bounded (worker, task) pairs are ever materialised, laid out as plain
NumPy ``indptr``/``indices``/``data`` arrays.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Sequence

import numpy as np

from repro.spatial.bbox import BoundingBox
from repro.spatial.geometry import GeoPoint, euclidean_distance, points_to_arrays


@dataclass(frozen=True)
class CandidatePairs:
    """Radius-bounded (row, item) pairs in CSR layout.

    ``indices[indptr[i]:indptr[i + 1]]`` are the positions (into
    :attr:`item_ids`) of the items within the query radius of row ``i``,
    sorted ascending, and ``data`` holds the matching raw planar Euclidean
    distances (the grid's metric — callers needing exact model distances
    recompute them with :func:`repro.spatial.distance.sparse_distance_csr`).
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    item_ids: tuple[Hashable, ...]

    @property
    def num_rows(self) -> int:
        return self.indptr.size - 1

    @property
    def nnz(self) -> int:
        return int(self.indptr[-1])

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        """Positions and distances of row ``i``'s candidates."""
        lo, hi = int(self.indptr[i]), int(self.indptr[i + 1])
        return self.indices[lo:hi], self.data[lo:hi]


class _BulkSnapshot:
    """Cell-key-sorted arrays backing the vectorized bulk queries.

    Rebuilt lazily whenever the index mutates: item positions follow the
    insertion order of the underlying dict, ``order`` lists those positions
    sorted by flattened cell key (``row * cells_per_axis + col``) so each
    grid-row window of a query is one contiguous run found by two
    ``searchsorted`` calls.
    """

    __slots__ = ("item_ids", "xs", "ys", "order", "sorted_keys")

    def __init__(
        self,
        item_ids: tuple[Hashable, ...],
        xs: np.ndarray,
        ys: np.ndarray,
        order: np.ndarray,
        sorted_keys: np.ndarray,
    ) -> None:
        self.item_ids = item_ids
        self.xs = xs
        self.ys = ys
        self.order = order
        self.sorted_keys = sorted_keys


class GridIndex:
    """Uniform grid index supporting insertion, removal and nearest queries.

    The grid uses the planar Euclidean metric on raw coordinates.  For lon/lat
    data over city- or country-scale extents this is a fine approximation for
    *ranking* candidates by proximity, which is all the Spatial-First baseline
    needs; exact distances are recomputed by the caller's
    :class:`~repro.spatial.distance.DistanceModel`.
    """

    def __init__(self, bounds: BoundingBox, cells_per_axis: int = 32) -> None:
        if cells_per_axis <= 0:
            raise ValueError(f"cells_per_axis must be positive, got {cells_per_axis}")
        self._bounds = bounds
        self._cells_per_axis = cells_per_axis
        self._cell_width = max(bounds.width, 1e-12) / cells_per_axis
        self._cell_height = max(bounds.height, 1e-12) / cells_per_axis
        self._cells: dict[tuple[int, int], set[Hashable]] = defaultdict(set)
        self._locations: dict[Hashable, GeoPoint] = {}
        self._version = 0
        self._bulk: _BulkSnapshot | None = None
        self._bulk_version = -1

    def __len__(self) -> int:
        return len(self._locations)

    def __contains__(self, item_id: Hashable) -> bool:
        return item_id in self._locations

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._locations)

    @property
    def bounds(self) -> BoundingBox:
        return self._bounds

    def _cell_of(self, point: GeoPoint) -> tuple[int, int]:
        clamped = self._bounds.clamp(point)
        col = int((clamped.x - self._bounds.min_x) / self._cell_width)
        row = int((clamped.y - self._bounds.min_y) / self._cell_height)
        col = min(self._cells_per_axis - 1, max(0, col))
        row = min(self._cells_per_axis - 1, max(0, row))
        return (col, row)

    def insert(self, item_id: Hashable, location: GeoPoint) -> None:
        """Insert (or move) ``item_id`` at ``location``."""
        if item_id in self._locations:
            self.remove(item_id)
        self._locations[item_id] = location
        self._cells[self._cell_of(location)].add(item_id)
        self._version += 1

    def insert_many(self, items: Iterable[tuple[Hashable, GeoPoint]]) -> None:
        for item_id, location in items:
            self.insert(item_id, location)

    def remove(self, item_id: Hashable) -> None:
        """Remove ``item_id``; raises ``KeyError`` if it is not present."""
        location = self._locations.pop(item_id)
        cell = self._cell_of(location)
        self._cells[cell].discard(item_id)
        if not self._cells[cell]:
            del self._cells[cell]
        self._version += 1

    def location_of(self, item_id: Hashable) -> GeoPoint:
        return self._locations[item_id]

    def nearest(
        self, query: GeoPoint, count: int = 1, exclude: frozenset | set | None = None
    ) -> list[Hashable]:
        """Return up to ``count`` item ids closest to ``query``.

        The search expands ring by ring around the query cell and stops once
        enough candidates have been found *and* the next ring cannot contain a
        closer item.  Ties are broken by item id to keep results deterministic.
        """
        if count <= 0:
            return []
        exclude = exclude or frozenset()
        if not self._locations:
            return []

        center_col, center_row = self._cell_of(query)
        found: list[tuple[float, Hashable]] = []
        max_radius = self._cells_per_axis

        for radius in range(max_radius + 1):
            newly_scanned = False
            for col, row in self._ring_cells(center_col, center_row, radius):
                items = self._cells.get((col, row))
                if not items:
                    continue
                newly_scanned = True
                for item_id in items:
                    if item_id in exclude:
                        continue
                    d = euclidean_distance(query, self._locations[item_id])
                    found.append((d, item_id))
            if len(found) >= count:
                # A ring at distance `radius` cells guarantees that everything
                # strictly closer than (radius) * min_cell_size has been seen.
                found.sort(key=lambda pair: (pair[0], str(pair[1])))
                safe_distance = radius * min(self._cell_width, self._cell_height)
                if found[count - 1][0] <= safe_distance or radius == max_radius:
                    return [item_id for _, item_id in found[:count]]
            if radius == max_radius and not newly_scanned and found:
                break

        found.sort(key=lambda pair: (pair[0], str(pair[1])))
        return [item_id for _, item_id in found[:count]]

    def _ring_cells(
        self, center_col: int, center_row: int, radius: int
    ) -> Iterator[tuple[int, int]]:
        """Yield the cells forming the square ring at ``radius`` around a cell."""
        if radius == 0:
            yield (center_col, center_row)
            return
        low_col, high_col = center_col - radius, center_col + radius
        low_row, high_row = center_row - radius, center_row + radius
        for col in range(low_col, high_col + 1):
            for row in (low_row, high_row):
                if 0 <= col < self._cells_per_axis and 0 <= row < self._cells_per_axis:
                    yield (col, row)
        for row in range(low_row + 1, high_row):
            for col in (low_col, high_col):
                if 0 <= col < self._cells_per_axis and 0 <= row < self._cells_per_axis:
                    yield (col, row)

    def items_within(self, query: GeoPoint, radius: float) -> list[Hashable]:
        """All item ids within Euclidean ``radius`` of ``query``.

        Delegates to :meth:`items_within_many` with a single query; results
        are sorted by the string form of the id for determinism.
        """
        _, positions, _ = self.items_within_many([query], radius)
        snapshot = self._snapshot()
        return sorted(
            (snapshot.item_ids[p] for p in positions.tolist()), key=str
        )

    @property
    def item_ids(self) -> tuple[Hashable, ...]:
        """All item ids in insertion order — the position space of the bulk
        queries: ``items_within_many`` / ``candidate_pairs`` return indices
        into this tuple rather than ids, so callers can stay in NumPy."""
        return self._snapshot().item_ids

    def _snapshot(self) -> _BulkSnapshot:
        """The cell-key-sorted bulk snapshot, rebuilt after any mutation."""
        if self._bulk is None or self._bulk_version != self._version:
            item_ids = tuple(self._locations)
            xs, ys = points_to_arrays([self._locations[i] for i in item_ids])
            if xs.size:
                cols, rows = self._cells_of_arrays(xs, ys)
                keys = rows * self._cells_per_axis + cols
                order = np.argsort(keys, kind="stable").astype(np.intp)
                sorted_keys = keys[order]
            else:
                order = np.empty(0, dtype=np.intp)
                sorted_keys = np.empty(0, dtype=np.intp)
            self._bulk = _BulkSnapshot(item_ids, xs, ys, order, sorted_keys)
            self._bulk_version = self._version
        return self._bulk

    def _cells_of_arrays(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_cell_of`: clamp to bounds, bucket, clamp cell."""
        top = self._cells_per_axis - 1
        cx = np.clip(xs, self._bounds.min_x, self._bounds.max_x)
        cy = np.clip(ys, self._bounds.min_y, self._bounds.max_y)
        cols = ((cx - self._bounds.min_x) / self._cell_width).astype(np.intp)
        rows = ((cy - self._bounds.min_y) / self._cell_height).astype(np.intp)
        np.clip(cols, 0, top, out=cols)
        np.clip(rows, 0, top, out=rows)
        return cols, rows

    def items_within_many(
        self,
        queries: Sequence[GeoPoint],
        radius: float,
        chunk_size: int = 4096,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Bulk :meth:`items_within`: all items within ``radius`` per query.

        Returns ``(indptr, positions, distances)`` in CSR layout over the
        queries: ``positions[indptr[i]:indptr[i + 1]]`` are the positions
        (into :attr:`item_ids`) of the items within Euclidean ``radius`` of
        ``queries[i]``, sorted ascending, and ``distances`` the matching raw
        Euclidean distances.  One pass of two ``searchsorted`` calls per
        window grid-row replaces the per-query Python lists of the scalar
        method; queries are processed in blocks of ``chunk_size`` to bound
        peak memory.  ``radius`` may be ``inf`` to scan the whole grid.
        """
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        num_queries = len(queries)
        snapshot = self._snapshot()
        indptr = np.zeros(num_queries + 1, dtype=np.intp)
        empty = (np.empty(0, dtype=np.intp), np.empty(0, dtype=float))
        if num_queries == 0 or not snapshot.item_ids:
            return (indptr, *empty)

        qx, qy = points_to_arrays(queries)
        top = self._cells_per_axis - 1
        owners: list[np.ndarray] = []
        positions: list[np.ndarray] = []
        distances: list[np.ndarray] = []
        for start in range(0, num_queries, chunk_size):
            stop = min(start + chunk_size, num_queries)
            cqx, cqy = qx[start:stop], qy[start:stop]
            if math.isfinite(radius):
                # Any in-radius item's cell lies between the (clamped) cells
                # of the query's coordinate ± radius, because the coordinate
                # → cell mapping is monotone.
                lo_col, lo_row = self._cells_of_arrays(cqx - radius, cqy - radius)
                hi_col, hi_row = self._cells_of_arrays(cqx + radius, cqy + radius)
            else:
                lo_col = np.zeros(cqx.size, dtype=np.intp)
                lo_row = np.zeros(cqx.size, dtype=np.intp)
                hi_col = np.full(cqx.size, top, dtype=np.intp)
                hi_row = np.full(cqx.size, top, dtype=np.intp)
            for step in range(int((hi_row - lo_row).max()) + 1):
                row = lo_row + step
                active = row <= hi_row
                key_lo = row * self._cells_per_axis + lo_col
                key_hi = row * self._cells_per_axis + hi_col
                run_start = np.searchsorted(snapshot.sorted_keys, key_lo, "left")
                run_end = np.searchsorted(snapshot.sorted_keys, key_hi, "right")
                counts = np.where(active, run_end - run_start, 0)
                total = int(counts.sum())
                if total == 0:
                    continue
                owner = np.repeat(np.arange(cqx.size, dtype=np.intp), counts)
                seg_starts = np.cumsum(counts) - counts
                within = np.arange(total, dtype=np.intp) - np.repeat(
                    seg_starts, counts
                )
                pos = snapshot.order[np.repeat(run_start, counts) + within]
                dist = np.hypot(
                    cqx[owner] - snapshot.xs[pos], cqy[owner] - snapshot.ys[pos]
                )
                keep = dist <= radius
                owners.append(owner[keep] + start)
                positions.append(pos[keep])
                distances.append(dist[keep])

        if not owners:
            return (indptr, *empty)
        all_owner = np.concatenate(owners)
        all_pos = np.concatenate(positions)
        all_dist = np.concatenate(distances)
        order = np.lexsort((all_pos, all_owner))
        counts = np.bincount(all_owner, minlength=num_queries)
        indptr[1:] = np.cumsum(counts)
        return indptr, all_pos[order], all_dist[order]

    def candidate_pairs(
        self,
        worker_locations: Sequence[Sequence[GeoPoint]],
        radius: float,
        chunk_size: int = 4096,
    ) -> CandidatePairs:
        """Radius-bounded (worker, item) pairs in CSR layout.

        ``worker_locations[i]`` is worker ``i``'s collection of declared
        locations; an item is a candidate of the worker when it lies within
        Euclidean ``radius`` of *any* of them (matching the paper's
        min-over-locations convention), and ``data`` records the minimum such
        distance.  Built on :meth:`items_within_many` over the flattened
        location list, then merged per worker — never materialising anything
        dense in the number of (worker, item) combinations.
        """
        num_workers = len(worker_locations)
        flat_locations: list[GeoPoint] = []
        loc_counts = np.empty(num_workers, dtype=np.intp)
        for i, locations in enumerate(worker_locations):
            materialised = list(locations)
            if not materialised:
                raise ValueError("a worker must declare at least one location")
            loc_counts[i] = len(materialised)
            flat_locations.extend(materialised)

        flat_indptr, pos, dist = self.items_within_many(
            flat_locations, radius, chunk_size=chunk_size
        )
        snapshot = self._snapshot()
        indptr = np.zeros(num_workers + 1, dtype=np.intp)
        if pos.size == 0:
            return CandidatePairs(
                indptr,
                np.empty(0, dtype=np.intp),
                np.empty(0, dtype=float),
                snapshot.item_ids,
            )
        query_owner = np.repeat(np.arange(num_workers, dtype=np.intp), loc_counts)
        owner = query_owner[
            np.repeat(np.arange(flat_indptr.size - 1), np.diff(flat_indptr))
        ]
        # A worker with several declared locations can see the same item more
        # than once; collapse to the minimum distance per (worker, item).
        key = owner.astype(np.int64) * len(snapshot.item_ids) + pos
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        first = np.ones(sorted_key.size, dtype=bool)
        first[1:] = sorted_key[1:] != sorted_key[:-1]
        seg_starts = np.flatnonzero(first)
        min_dist = np.minimum.reduceat(dist[order], seg_starts)
        unique_owner = owner[order][seg_starts]
        unique_pos = pos[order][seg_starts]
        indptr[1:] = np.cumsum(np.bincount(unique_owner, minlength=num_workers))
        return CandidatePairs(indptr, unique_pos, min_dist, snapshot.item_ids)
