"""Candidate-pair bookkeeping shared by the sparse inference and assignment engines.

:class:`CandidateIndex` owns the task-side grid and a per-worker cache of CSR
candidate rows: for each worker, the ascending task-column indices within the
candidate radius of any of the worker's declared locations, plus the *exact*
normalised model distance for each (bit-identical to what the dense
``normalised_distance_matrix`` would hold for the same pair).  Out-of-radius
pairs are never stored — the sparse engines substitute the shared far-field
default (normalised distance ``1.0`` on the EM side, the closed-form far-field
accuracy on the AccOpt side) — so total state is O(nnz) instead of O(W·T).

The candidate ``radius`` is expressed in raw planar coordinate units (the
grid's Euclidean metric), matching the pruning criterion of
:meth:`~repro.spatial.grid_index.GridIndex.candidate_pairs`; pass ``inf`` to
make every pair a candidate (the configuration under which the sparse engines
agree with the dense ones to the last bit).  Tasks may be appended after
construction (open-world serving); cached worker rows are lazily topped up
with the new columns the next time they are read.

Pruning effectiveness is observable: when built with a
:class:`~repro.obs.metrics.MetricsRegistry`, the index records the
``candidate_pairs_kept_total`` / ``candidate_pairs_pruned_total`` counters and
``candidate_row_nnz`` / ``candidate_task_nnz`` histograms (candidates per
worker row and per task column).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.spatial.bbox import BoundingBox
from repro.spatial.distance import DistanceModel, sparse_distance_csr
from repro.spatial.geometry import GeoPoint
from repro.spatial.grid_index import GridIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, annotations only
    from repro.data.models import Task, Worker
    from repro.obs.metrics import MetricsRegistry


@dataclass
class _WorkerRow:
    """Cached candidate row: ascending task columns, exact model distances."""

    cols: np.ndarray
    dists: np.ndarray
    synced_tasks: int


class CandidateIndex:
    """Per-worker CSR candidate rows over a growing task universe.

    Parameters
    ----------
    tasks:
        Initial task collection; the column order of the CSR structure is the
        iteration order given here and is append-only afterwards.
    distance_model:
        Supplies the exact normalised distances stored for candidate pairs.
    radius:
        Candidate radius in raw planar coordinate units; must be positive
        (``inf`` keeps every pair).
    cells_per_axis:
        Resolution of the backing :class:`GridIndex`.
    metrics:
        Optional :class:`MetricsRegistry` for pruning statistics.
    """

    def __init__(
        self,
        tasks: Sequence["Task"],
        distance_model: DistanceModel,
        radius: float,
        cells_per_axis: int = 64,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if math.isnan(radius) or radius <= 0:
            raise ValueError(f"candidate radius must be positive, got {radius}")
        self._distance_model = distance_model
        self._radius = float(radius)
        self._task_ids: list[str] = []
        self._task_col: dict[str, int] = {}
        self._task_locations: list[GeoPoint] = []
        locations = [task.location for task in tasks]
        bounds = (
            BoundingBox.from_points(locations)
            if locations
            else BoundingBox(0.0, 0.0, 1.0, 1.0)
        )
        # Later-added tasks may fall outside these bounds; the grid clamps
        # them to border cells, which stays exact because every bulk query
        # re-filters by true distance.
        self._grid = GridIndex(bounds, cells_per_axis=cells_per_axis)
        self._rows: dict[str, _WorkerRow] = {}
        self._metrics = metrics
        self.pairs_kept_total = 0
        self.pairs_pruned_total = 0
        for task in tasks:
            self.add_task(task)

    @property
    def radius(self) -> float:
        return self._radius

    @property
    def num_tasks(self) -> int:
        return len(self._task_ids)

    @property
    def task_ids(self) -> tuple[str, ...]:
        """Column order of the CSR structure."""
        return tuple(self._task_ids)

    def column_of(self, task_id: str) -> int:
        return self._task_col[task_id]

    def add_task(self, task: "Task") -> None:
        """Append a task as the next column; re-registration is a no-op."""
        if task.task_id in self._task_col:
            return
        column = len(self._task_ids)
        self._task_ids.append(task.task_id)
        self._task_col[task.task_id] = column
        self._task_locations.append(task.location)
        # Column == grid insertion position: the grid is append-only here, so
        # bulk-query positions can be used as columns directly.
        self._grid.insert(column, task.location)

    def _record_rows(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        kept = int(indptr[-1])
        pruned = (indptr.size - 1) * len(self._task_ids) - kept
        self.pairs_kept_total += kept
        self.pairs_pruned_total += pruned
        if self._metrics is None:
            return
        self._metrics.counter("candidate_pairs_kept_total").inc(kept)
        self._metrics.counter("candidate_pairs_pruned_total").inc(pruned)
        row_nnz = self._metrics.histogram("candidate_row_nnz")
        for count in np.diff(indptr).tolist():
            row_nnz.observe(float(count))
        if indices.size:
            task_nnz = self._metrics.histogram("candidate_task_nnz")
            for count in np.bincount(indices).tolist():
                task_nnz.observe(float(count))

    def _compute_rows(self, workers: Sequence["Worker"]) -> None:
        """Compute and cache candidate rows for workers not yet seen."""
        location_lists = [worker.locations for worker in workers]
        pairs = self._grid.candidate_pairs(location_lists, self._radius)
        dists = sparse_distance_csr(
            location_lists,
            self._task_locations,
            self._distance_model,
            pairs.indptr,
            pairs.indices,
        )
        for i, worker in enumerate(workers):
            lo, hi = int(pairs.indptr[i]), int(pairs.indptr[i + 1])
            self._rows[worker.worker_id] = _WorkerRow(
                cols=pairs.indices[lo:hi],
                dists=dists[lo:hi],
                synced_tasks=len(self._task_ids),
            )
        self._record_rows(pairs.indptr, pairs.indices)

    def _refresh_row(self, worker: "Worker", row: _WorkerRow) -> None:
        """Top up a cached row with columns appended after it was computed."""
        num_tasks = len(self._task_ids)
        if row.synced_tasks == num_tasks:
            return
        new_cols = np.arange(row.synced_tasks, num_tasks, dtype=np.intp)
        new_locations = self._task_locations[row.synced_tasks :]
        # Same pruning criterion as the grid (raw planar Euclidean, min over
        # the worker's declared locations) so refreshed rows match what a
        # from-scratch computation would produce.
        wx = np.array([loc.x for loc in worker.locations])
        wy = np.array([loc.y for loc in worker.locations])
        tx = np.array([loc.x for loc in new_locations])
        ty = np.array([loc.y for loc in new_locations])
        raw = np.hypot(wx[:, None] - tx[None, :], wy[:, None] - ty[None, :])
        keep = raw.min(axis=0) <= self._radius
        kept_cols = new_cols[keep]
        if kept_cols.size:
            kept_dists = self._distance_model.worker_task_distances(
                [worker.locations] * int(kept_cols.size),
                [new_locations[int(c) - row.synced_tasks] for c in kept_cols],
            )
            # Appended columns sort after every existing one.
            row.cols = np.concatenate([row.cols, kept_cols])
            row.dists = np.concatenate([row.dists, kept_dists])
        delta = num_tasks - row.synced_tasks
        row.synced_tasks = num_tasks
        self.pairs_kept_total += int(kept_cols.size)
        self.pairs_pruned_total += delta - int(kept_cols.size)
        if self._metrics is not None:
            self._metrics.counter("candidate_pairs_kept_total").inc(
                int(kept_cols.size)
            )
            self._metrics.counter("candidate_pairs_pruned_total").inc(
                delta - int(kept_cols.size)
            )

    def _ensure_rows(self, workers: Sequence["Worker"]) -> None:
        missing = [w for w in workers if w.worker_id not in self._rows]
        if missing:
            # Deduplicate while preserving order.
            seen: dict[str, "Worker"] = {}
            for worker in missing:
                seen.setdefault(worker.worker_id, worker)
            self._compute_rows(list(seen.values()))
        for worker in workers:
            self._refresh_row(worker, self._rows[worker.worker_id])

    def rows_for(
        self, workers: Sequence["Worker"]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR candidate structure over ``workers`` in the given row order.

        Returns ``(indptr, indices, data)``: per row, ascending task columns
        within the radius and their exact normalised model distances.
        """
        self._ensure_rows(workers)
        counts = np.fromiter(
            (self._rows[w.worker_id].cols.size for w in workers),
            dtype=np.intp,
            count=len(workers),
        )
        indptr = np.zeros(len(workers) + 1, dtype=np.intp)
        indptr[1:] = np.cumsum(counts)
        nnz = int(indptr[-1])
        indices = np.empty(nnz, dtype=np.intp)
        data = np.empty(nnz, dtype=float)
        for i, worker in enumerate(workers):
            row = self._rows[worker.worker_id]
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            indices[lo:hi] = row.cols
            data[lo:hi] = row.dists
        return indptr, indices, data

    def pair_distances(
        self,
        worker_ids: Sequence[str],
        task_ids: Sequence[str],
        workers_by_id: Mapping[str, "Worker"],
    ) -> np.ndarray:
        """Normalised distances for observed (worker, task) pairs.

        The EM tensor build calls this instead of computing dense or
        per-answer exact distances: pair ``i`` gets the cached candidate
        distance of ``(worker_ids[i], task_ids[i])`` when the pair is within
        the radius, and the far-field default ``1.0`` (maximally far) when
        the spatial index pruned it.  ``workers_by_id`` supplies worker
        objects so rows can be computed on first sight.
        """
        if len(worker_ids) != len(task_ids):
            raise ValueError(
                f"worker_ids and task_ids must pair up, got "
                f"{len(worker_ids)} vs {len(task_ids)}"
            )
        out = np.empty(len(worker_ids), dtype=float)
        if not worker_ids:
            return out
        cols = np.fromiter(
            (self._task_col[tid] for tid in task_ids),
            dtype=np.intp,
            count=len(task_ids),
        )
        groups: dict[str, list[int]] = {}
        for i, wid in enumerate(worker_ids):
            groups.setdefault(wid, []).append(i)
        self._ensure_rows([workers_by_id[wid] for wid in groups])
        for wid, pair_indices in groups.items():
            row = self._rows[wid]
            wanted = cols[pair_indices]
            if row.cols.size == 0:
                out[pair_indices] = 1.0
                continue
            pos = np.searchsorted(row.cols, wanted)
            clipped = np.minimum(pos, row.cols.size - 1)
            found = row.cols[clipped] == wanted
            out[pair_indices] = np.where(found, row.dists[clipped], 1.0)
        return out
