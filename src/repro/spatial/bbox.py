"""Axis-aligned bounding boxes for dataset generation and spatial indexing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.spatial.geometry import GeoPoint


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(
                "bounding box maxima must not be smaller than minima: "
                f"({self.min_x}, {self.min_y}, {self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> GeoPoint:
        return GeoPoint((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, point: GeoPoint) -> bool:
        """Whether ``point`` lies inside the box (boundary inclusive)."""
        return (
            self.min_x <= point.x <= self.max_x
            and self.min_y <= point.y <= self.max_y
        )

    def clamp(self, point: GeoPoint) -> GeoPoint:
        """Project ``point`` onto the box."""
        return GeoPoint(
            min(self.max_x, max(self.min_x, point.x)),
            min(self.max_y, max(self.min_y, point.y)),
        )

    def sample(self, rng: np.random.Generator, count: int = 1) -> list[GeoPoint]:
        """Draw ``count`` points uniformly at random from the box."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        xs = rng.uniform(self.min_x, self.max_x, size=count)
        ys = rng.uniform(self.min_y, self.max_y, size=count)
        return [GeoPoint(float(x), float(y)) for x, y in zip(xs, ys)]

    def expand(self, margin: float) -> "BoundingBox":
        """Return a box grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError(f"margin must be non-negative, got {margin}")
        return BoundingBox(
            self.min_x - margin, self.min_y - margin,
            self.max_x + margin, self.max_y + margin,
        )

    @classmethod
    def from_points(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """Tightest box covering a non-empty collection of points."""
        points = list(points)
        if not points:
            raise ValueError("cannot build a bounding box from zero points")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return cls(min(xs), min(ys), max(xs), max(ys))


#: Approximate geographic extent of urban Beijing (lon/lat degrees), used by the
#: synthetic Beijing dataset generator.
BEIJING_BBOX = BoundingBox(116.10, 39.70, 116.70, 40.20)

#: Approximate geographic extent of mainland China (lon/lat degrees), used by the
#: synthetic China scenic-spot dataset generator.
CHINA_BBOX = BoundingBox(98.0, 22.0, 125.0, 45.0)
