"""Configuration of the POI-Labelling Framework's alternating loop."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.inference import InferenceConfig


@dataclass
class FrameworkConfig:
    """Parameters of the alternating inference/assignment loop.

    Defaults follow the paper's deployment: ``h = 2`` tasks per HIT, a total
    budget of 1000 assignments, a batch of 5 workers arriving per round and a
    full EM refresh every 100 submitted answers with incremental EM updates in
    between.
    """

    budget: int = 1000
    tasks_per_worker: int = 2
    workers_per_round: int = 5
    full_refresh_interval: int = 100
    use_incremental_updates: bool = True
    inference: InferenceConfig = field(default_factory=InferenceConfig)
    evaluation_checkpoints: tuple[int, ...] = (600, 700, 800, 900, 1000)
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError(f"budget must be positive, got {self.budget}")
        if self.tasks_per_worker <= 0:
            raise ValueError(
                f"tasks_per_worker must be positive, got {self.tasks_per_worker}"
            )
        if self.workers_per_round <= 0:
            raise ValueError(
                f"workers_per_round must be positive, got {self.workers_per_round}"
            )
        if self.full_refresh_interval <= 0:
            raise ValueError(
                f"full_refresh_interval must be positive, got {self.full_refresh_interval}"
            )
        if any(checkpoint <= 0 for checkpoint in self.evaluation_checkpoints):
            raise ValueError("evaluation checkpoints must be positive")
        if any(checkpoint > self.budget for checkpoint in self.evaluation_checkpoints):
            raise ValueError(
                "evaluation checkpoints cannot exceed the budget: "
                f"{self.evaluation_checkpoints} vs {self.budget}"
            )
