"""The POI-Labelling Framework (Figure 1 of the paper) and experiment drivers.

* :mod:`repro.framework.config`    — configuration of the alternating loop.
* :mod:`repro.framework.metrics`   — the accuracy metric (Equation 1) and the
  worker-quality / assignment-distribution statistics of Table II.
* :mod:`repro.framework.framework` — the alternating inference/assignment loop.
* :mod:`repro.framework.experiment` — budget sweeps and scalability drivers used
  by the benchmark harness.
"""

from repro.framework.config import FrameworkConfig
from repro.framework.metrics import (
    answer_accuracy_against_truth,
    assignment_distribution,
    average_label_accuracy,
    labelling_accuracy,
    worker_average_accuracy,
)
from repro.framework.framework import FrameworkResult, PoiLabellingFramework
from repro.framework.experiment import (
    AssignmentComparisonResult,
    InferenceComparisonResult,
    compare_assigners,
    compare_inference_models,
    subsample_answers,
)

__all__ = [
    "FrameworkConfig",
    "labelling_accuracy",
    "answer_accuracy_against_truth",
    "worker_average_accuracy",
    "assignment_distribution",
    "average_label_accuracy",
    "FrameworkResult",
    "PoiLabellingFramework",
    "InferenceComparisonResult",
    "AssignmentComparisonResult",
    "compare_inference_models",
    "compare_assigners",
    "subsample_answers",
]
