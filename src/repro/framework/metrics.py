"""Evaluation metrics: the paper's accuracy measure and Table II statistics.

* :func:`labelling_accuracy` — Equation 1: the average, over tasks, of the
  fraction of labels whose inferred binary value matches the ground truth
  (both correct and incorrect labels count).
* :func:`answer_accuracy_against_truth` — per-answer accuracy used by the data
  analysis of Figures 6–8.
* :func:`worker_average_accuracy` — a worker's mean answer accuracy (Table II
  column "Worker Quality").
* :func:`assignment_distribution` — the percentage of tasks with <3, 3–7 and >7
  assigned workers (Table II middle column).
* :func:`average_label_accuracy` — the average ``Acc_{t,k}`` over all labels
  given the true label values (Table II last column).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.data.models import AnswerSet, Dataset, Task


def labelling_accuracy(
    predictions: Mapping[str, Sequence[int] | np.ndarray], tasks: Sequence[Task]
) -> float:
    """The paper's accuracy metric (Equation 1).

    ``predictions`` maps task ids to binary vectors (1 = label inferred
    correct).  Tasks missing from ``predictions`` count as all-labels-wrong for
    zero credit on the matching positions they would have earned — callers
    should predict every task.
    """
    if not tasks:
        raise ValueError("labelling_accuracy needs at least one task")
    total = 0.0
    for task in tasks:
        predicted = predictions.get(task.task_id)
        if predicted is None:
            continue
        predicted_arr = np.asarray(predicted, dtype=int)
        if predicted_arr.shape != (task.num_labels,):
            raise ValueError(
                f"prediction for task {task.task_id!r} has shape {predicted_arr.shape}, "
                f"expected ({task.num_labels},)"
            )
        truth = np.asarray(task.truth, dtype=int)
        total += float(np.mean(predicted_arr == truth))
    return total / len(tasks)


def answer_accuracy_against_truth(answers: AnswerSet, dataset: Dataset) -> dict[tuple[str, str], float]:
    """Per-answer accuracy: fraction of labels answered in agreement with the truth."""
    task_index = dataset.task_index
    accuracies: dict[tuple[str, str], float] = {}
    for answer in answers:
        task = task_index.get(answer.task_id)
        if task is None:
            raise KeyError(f"answer references unknown task {answer.task_id!r}")
        accuracies[(answer.worker_id, answer.task_id)] = answer.accuracy_against(task.truth)
    return accuracies


def worker_average_accuracy(answers: AnswerSet, dataset: Dataset) -> dict[str, float]:
    """Mean per-answer accuracy of every worker present in ``answers``."""
    per_answer = answer_accuracy_against_truth(answers, dataset)
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for (worker_id, _), accuracy in per_answer.items():
        sums[worker_id] = sums.get(worker_id, 0.0) + accuracy
        counts[worker_id] = counts.get(worker_id, 0) + 1
    return {worker_id: sums[worker_id] / counts[worker_id] for worker_id in sums}


def assignment_distribution(
    answers: AnswerSet,
    dataset: Dataset,
    boundaries: tuple[int, int] = (3, 7),
) -> tuple[float, float, float]:
    """Percentages of tasks with few / medium / many answering workers.

    The paper's Table II buckets tasks into "< 3 workers", "3–7 workers" and
    "> 7 workers"; ``boundaries`` keeps those cut points configurable.
    Returns percentages over all tasks of the dataset (tasks with zero answers
    fall into the first bucket).
    """
    low, high = boundaries
    if low <= 0 or high < low:
        raise ValueError(f"boundaries must satisfy 0 < low <= high, got {boundaries}")
    few = medium = many = 0
    for task in dataset.tasks:
        count = answers.answer_count_of_task(task.task_id)
        if count < low:
            few += 1
        elif count <= high:
            medium += 1
        else:
            many += 1
    total = len(dataset.tasks)
    return (100.0 * few / total, 100.0 * medium / total, 100.0 * many / total)


def average_label_accuracy(
    probabilities: Mapping[str, Sequence[float] | np.ndarray], tasks: Sequence[Task]
) -> float:
    """Average ``Acc_{t,k}`` (Equation 15) over all labels, using the ground truth.

    For a truly correct label the inference accuracy is ``P(z=1)``; for a truly
    incorrect one it is ``P(z=0)``.  This is the quantity the paper reports in
    the last column of Table II.
    """
    if not tasks:
        raise ValueError("average_label_accuracy needs at least one task")
    values: list[float] = []
    for task in tasks:
        probs = probabilities.get(task.task_id)
        if probs is None:
            values.extend([0.5] * task.num_labels)
            continue
        probs_arr = np.asarray(probs, dtype=float)
        if probs_arr.shape != (task.num_labels,):
            raise ValueError(
                f"probabilities for task {task.task_id!r} have shape {probs_arr.shape}, "
                f"expected ({task.num_labels},)"
            )
        for k, truth in enumerate(task.truth):
            values.append(float(probs_arr[k]) if truth == 1 else 1.0 - float(probs_arr[k]))
    return float(np.mean(values))
