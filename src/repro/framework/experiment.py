"""Experiment drivers used by the benchmark harness and the examples.

Two kinds of experiments reproduce the paper's evaluation:

* **Inference comparison** (Figure 9 / 10 / 12): collect a fixed answer corpus
  (five answers per task, as in Deployment 1), subsample it at several budget
  levels, run MV / Dawid–Skene EM / IM on each subsample and report accuracy
  and runtime.
* **Assignment comparison** (Figure 11 / Table II): run the full online
  framework once per assignment strategy over the same simulated crowd and
  report accuracy at the budget checkpoints plus the Table II statistics.

The helpers here build the shared scaffolding (worker pools, platforms,
distance models) so the benchmarks and examples stay short.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.assign.accopt import AccOptAssigner
from repro.assign.random_assigner import RandomAssigner
from repro.assign.spatial_first import SpatialFirstAssigner
from repro.baselines.base import LabelInferenceModel
from repro.baselines.dawid_skene import DawidSkeneInference
from repro.baselines.majority_vote import MajorityVoteInference
from repro.core.assignment import TaskAssigner
from repro.core.inference import InferenceConfig, LocationAwareInference
from repro.crowd.answer_model import AnswerSimulator
from repro.crowd.arrival import UniformRandomArrival
from repro.crowd.budget import Budget
from repro.crowd.platform import CrowdPlatform
from repro.crowd.worker_pool import WorkerPool, WorkerPoolSpec
from repro.data.models import Answer, AnswerSet, Dataset
from repro.framework.config import FrameworkConfig
from repro.framework.framework import FrameworkResult, PoiLabellingFramework
from repro.framework.metrics import (
    assignment_distribution,
    average_label_accuracy,
    labelling_accuracy,
    worker_average_accuracy,
)
from repro.spatial.bbox import BoundingBox
from repro.spatial.distance import DistanceModel
from repro.utils.rng import SeedLike, default_rng, derive_seed


# --------------------------------------------------------------------- builders
def build_distance_model(dataset: Dataset) -> DistanceModel:
    """Distance model normalised by the dataset's recorded POI diameter."""
    metric = "haversine" if dataset.metric == "haversine" else "euclidean"
    if dataset.max_distance:
        return DistanceModel(max_distance=dataset.max_distance, metric=metric)
    return DistanceModel.from_pois(dataset.poi_locations, metric=metric)


def build_worker_pool(
    dataset: Dataset,
    spec: WorkerPoolSpec | None = None,
    seed: SeedLike = None,
) -> WorkerPool:
    """Worker pool whose locations cover the dataset's geographic extent."""
    bounds = BoundingBox.from_points(dataset.poi_locations).expand(
        0.05 * max(
            BoundingBox.from_points(dataset.poi_locations).width,
            BoundingBox.from_points(dataset.poi_locations).height,
            1e-6,
        )
    )
    return WorkerPool.generate(bounds, spec=spec, seed=seed)


def build_platform(
    dataset: Dataset,
    budget: int,
    worker_pool: WorkerPool | None = None,
    workers_per_round: int = 5,
    answer_noise: float = 0.05,
    seed: SeedLike = None,
) -> CrowdPlatform:
    """Assemble a ready-to-run simulated platform for ``dataset``."""
    rng = default_rng(seed)
    pool = worker_pool or build_worker_pool(dataset, seed=derive_seed(_as_int(seed), 1) or rng)
    distance_model = build_distance_model(dataset)
    simulator = AnswerSimulator(distance_model, noise=answer_noise)
    arrival = UniformRandomArrival(
        pool,
        batch_size=min(workers_per_round, len(pool)),
        seed=derive_seed(_as_int(seed), 2) or rng,
    )
    return CrowdPlatform(
        dataset=dataset,
        worker_pool=pool,
        budget=Budget(total=budget),
        distance_model=distance_model,
        answer_simulator=simulator,
        arrival_process=arrival,
        seed=_as_int(seed),
    )


def _as_int(seed: SeedLike) -> int | None:
    return seed if isinstance(seed, int) else None


# --------------------------------------------------------- inference comparison
@dataclass
class InferenceComparisonResult:
    """Accuracy and runtime of each inference method at each budget level."""

    budgets: list[int]
    accuracy: dict[str, list[float]] = field(default_factory=dict)
    runtime_ms: dict[str, list[float]] = field(default_factory=dict)

    def accuracy_of(self, method: str, budget: int) -> float:
        return self.accuracy[method][self.budgets.index(budget)]


def subsample_answers(
    answers: AnswerSet, count: int, seed: SeedLike = None
) -> AnswerSet:
    """Uniformly subsample ``count`` (worker, task) answers from ``answers``.

    Reproduces "budget = N assignments" evaluations from a corpus collected at
    a larger budget.  ``count`` larger than the corpus returns a copy.
    """
    all_answers = list(answers)
    if count >= len(all_answers):
        return answers.copy()
    rng = default_rng(seed)
    chosen = rng.choice(len(all_answers), size=count, replace=False)
    return AnswerSet(all_answers[i] for i in sorted(chosen))


def default_inference_factories(
    dataset: Dataset,
    worker_pool: WorkerPool,
    distance_model: DistanceModel,
    inference_config: InferenceConfig | None = None,
) -> dict[str, Callable[[], LabelInferenceModel]]:
    """The paper's three inference methods, keyed by their evaluation names."""
    tasks = dataset.tasks
    workers = worker_pool.workers
    return {
        "MV": lambda: MajorityVoteInference(tasks),
        "EM": lambda: DawidSkeneInference(tasks),
        "IM": lambda: LocationAwareInference(
            tasks, workers, distance_model, config=inference_config
        ),
    }


# ------------------------------------------------------- multiprocessing sweeps
# Sweep context inherited by fork()ed pool workers.  The factories passed to
# the compare functions are typically closures/lambdas, which cannot cross a
# pickling process boundary — but a fork child inherits the parent's memory,
# so publishing the context in a module global right before creating the pool
# makes the (unpicklable) factories available to the module-level worker
# functions, while only small picklable tuples travel through the pool queues.
_SWEEP_CONTEXT: dict | None = None


def _parallel_map(worker: Callable, items: list, jobs: int, context: dict) -> list:
    """Map ``worker`` over ``items`` on a fork process pool, preserving order.

    Falls back to a serial map when ``jobs == 1``, when there is nothing to
    fan out, or when the platform cannot fork (the context trick above relies
    on fork inheritance; spawn would need every factory to be picklable).
    """
    global _SWEEP_CONTEXT
    use_pool = (
        jobs > 1
        and len(items) > 1
        and "fork" in multiprocessing.get_all_start_methods()
    )
    if not use_pool:
        _SWEEP_CONTEXT = context
        try:
            return [worker(item) for item in items]
        finally:
            _SWEEP_CONTEXT = None
    _SWEEP_CONTEXT = context
    try:
        with multiprocessing.get_context("fork").Pool(
            processes=min(jobs, len(items))
        ) as pool:
            return pool.map(worker, items)
    finally:
        _SWEEP_CONTEXT = None


def _inference_budget_worker(item: tuple[int, int]) -> dict[str, tuple[float, float]]:
    """Fit every method on one budget subsample (one sweep unit)."""
    index, budget = item
    context = _SWEEP_CONTEXT
    subsample = subsample_answers(
        context["answers"], budget, seed=derive_seed(context["seed"], index)
    )
    row: dict[str, tuple[float, float]] = {}
    for name, factory in context["factories"].items():
        model = factory()
        started = time.perf_counter()
        model.fit(subsample)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        predictions = model.predict_all()
        accuracy = labelling_accuracy(predictions, context["dataset"].tasks)
        row[name] = (accuracy, elapsed_ms)
    return row


def compare_inference_models(
    dataset: Dataset,
    answers: AnswerSet,
    budgets: Sequence[int],
    factories: dict[str, Callable[[], LabelInferenceModel]],
    seed: SeedLike = None,
    jobs: int = 1,
) -> InferenceComparisonResult:
    """Figure 9 / 12: accuracy and runtime of each method at each budget level.

    ``jobs > 1`` fans the independent budget levels out over a process pool
    (each level subsamples, fits and scores in its own process); ``jobs=1``
    keeps the original serial sweep.  Results are identical either way — every
    level derives its own seed.
    """
    budgets = list(budgets)
    result = InferenceComparisonResult(budgets=budgets)
    for name in factories:
        result.accuracy[name] = []
        result.runtime_ms[name] = []
    context = {
        "dataset": dataset,
        "answers": answers,
        "factories": factories,
        "seed": _as_int(seed),
    }
    rows = _parallel_map(
        _inference_budget_worker, list(enumerate(budgets)), jobs, context
    )
    for row in rows:
        for name, (accuracy, elapsed_ms) in row.items():
            result.accuracy[name].append(accuracy)
            result.runtime_ms[name].append(elapsed_ms)
    return result


# --------------------------------------------------------- assignment comparison
@dataclass
class AssignmentStats:
    """Table II statistics for one assignment strategy."""

    worker_quality: float
    assignment_distribution: tuple[float, float, float]
    average_acc: float


@dataclass
class AssignmentComparisonResult:
    """Accuracy series (Figure 11) and Table II statistics per strategy."""

    checkpoints: list[int]
    accuracy: dict[str, list[float]] = field(default_factory=dict)
    stats: dict[str, AssignmentStats] = field(default_factory=dict)
    framework_results: dict[str, FrameworkResult] = field(default_factory=dict)


def default_assigner_factories(
    dataset: Dataset,
    worker_pool: WorkerPool,
    distance_model: DistanceModel,
    seed: SeedLike = None,
    accopt_engine: str = "vectorized",
) -> dict[str, Callable[[], TaskAssigner]]:
    """The paper's three assignment strategies, keyed by their evaluation names.

    ``accopt_engine`` selects AccOpt's ΔAcc scoring path — the batched
    :mod:`repro.core.accuracy_kernel` engine by default, ``"reference"`` for
    the scalar oracle.
    """
    tasks = dataset.tasks
    workers = worker_pool.workers
    return {
        "Random": lambda: RandomAssigner(tasks, workers, seed=_as_int(seed)),
        "SF": lambda: SpatialFirstAssigner(tasks, workers, distance_model),
        "AccOpt": lambda: AccOptAssigner(
            tasks, workers, distance_model, engine=accopt_engine
        ),
    }


def _assigner_campaign_worker(
    name: str,
) -> tuple[str, FrameworkResult, AssignmentStats]:
    """Run one strategy's full campaign (one sweep unit)."""
    context = _SWEEP_CONTEXT
    dataset = context["dataset"]
    config = context["config"]
    pool = context["pool"]
    platform = build_platform(
        dataset,
        budget=config.budget,
        worker_pool=pool,
        workers_per_round=config.workers_per_round,
        seed=context["seed"],
    )
    inference = LocationAwareInference(
        dataset.tasks, pool.workers, platform.distance_model, config=config.inference
    )
    assigner = context["factories"][name]()
    framework = PoiLabellingFramework(platform, inference, assigner, config=config)
    run_result = framework.run()

    answers = platform.answers
    quality = worker_average_accuracy(answers, dataset)
    probabilities = {
        task.task_id: inference.label_probabilities(task.task_id)
        for task in dataset.tasks
    }
    stats = AssignmentStats(
        worker_quality=(sum(quality.values()) / len(quality)) if quality else 0.0,
        assignment_distribution=assignment_distribution(answers, dataset),
        average_acc=average_label_accuracy(probabilities, dataset.tasks),
    )
    return name, run_result, stats


def compare_assigners(
    dataset: Dataset,
    config: FrameworkConfig,
    assigner_factories: dict[str, Callable[[], TaskAssigner]] | None = None,
    worker_pool: WorkerPool | None = None,
    seed: SeedLike = 101,
    jobs: int = 1,
) -> AssignmentComparisonResult:
    """Figure 11 / Table II: run the framework once per assignment strategy.

    Every strategy sees the same dataset and the same worker-pool seed, so the
    only difference between runs is the assignment policy.  ``jobs > 1`` fans
    the independent campaigns out over a process pool; each strategy's run is
    seeded identically to the serial sweep, so the results match bit for bit.
    """
    base_seed = _as_int(seed) or 101
    pool = worker_pool or build_worker_pool(dataset, seed=derive_seed(base_seed, 11))
    distance_model = build_distance_model(dataset)
    factories = assigner_factories or default_assigner_factories(
        dataset, pool, distance_model, seed=base_seed
    )

    checkpoints = sorted(config.evaluation_checkpoints)
    result = AssignmentComparisonResult(checkpoints=list(checkpoints))
    context = {
        "dataset": dataset,
        "config": config,
        "pool": pool,
        "factories": factories,
        "seed": base_seed,
    }
    rows = _parallel_map(
        _assigner_campaign_worker, list(factories), jobs, context
    )
    for name, run_result, stats in rows:
        result.framework_results[name] = run_result
        result.accuracy[name] = [
            run_result.accuracy_at(checkpoint) for checkpoint in checkpoints
        ]
        result.stats[name] = stats
    return result
